/**
 * @file
 * Inline opcode handlers for the register-only instructions.
 *
 * These are the *same functions* the dispatch table points at — the
 * table in predecode.cc takes their addresses — but having the
 * definitions in a header lets the fast block engine expand the hot
 * ones directly inside its execution loop (see the dispatch switch in
 * uarch/core.cc) instead of paying an opaque indirect call per
 * instruction. Because the switch and the table share one definition
 * per opcode, the two dispatch mechanisms cannot drift semantically.
 *
 * The register-only handlers live here, and so do the plain memory
 * handlers: Memory::read/write and the monitor's observeStore have
 * inline fast paths of their own, so expanding Ldr/Str inside the
 * engine loop collapses a simulated load into a masked memcpy with no
 * calls at all. Only the exclusive and halt handlers stay private to
 * predecode.cc — they are rare and their cost is in the monitor.
 */

#ifndef GEMSTONE_ISA_HANDLERS_HH
#define GEMSTONE_ISA_HANDLERS_HH

#include <cmath>
#include <cstring>
#include <limits>

#include "isa/executor.hh"
#include "isa/inst.hh"
#include "isa/predecode.hh"

namespace gemstone::isa::handlers {

inline double
bitsToDouble(std::int64_t bits)
{
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

// The ISA specifies two's-complement wrap-around for integer
// arithmetic; compute in unsigned space, where wrapping is defined,
// instead of relying on signed overflow.
inline std::int64_t
wrapAdd(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b));
}

inline std::int64_t
wrapSub(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) - static_cast<std::uint64_t>(b));
}

inline std::int64_t
wrapMul(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b));
}

inline std::int64_t
doubleToInt64(double v)
{
    // NaN and out-of-range inputs convert to INT64_MIN (the x86
    // cvttsd2si result) instead of being undefined.
    if (!(v >= -0x1p63 && v < 0x1p63))
        return std::numeric_limits<std::int64_t>::min();
    return static_cast<std::int64_t>(v);
}

// ---------------------------------------------------------------------
// Integer ALU.
// ---------------------------------------------------------------------

inline void
execAdd(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.intRegs[d.rd] = wrapAdd(s.intRegs[d.rn], s.intRegs[d.rm]);
}

inline void
execSub(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.intRegs[d.rd] = wrapSub(s.intRegs[d.rn], s.intRegs[d.rm]);
}

inline void
execAnd(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.intRegs[d.rd] = s.intRegs[d.rn] & s.intRegs[d.rm];
}

inline void
execOrr(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.intRegs[d.rd] = s.intRegs[d.rn] | s.intRegs[d.rm];
}

inline void
execEor(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.intRegs[d.rd] = s.intRegs[d.rn] ^ s.intRegs[d.rm];
}

inline void
execLsl(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.intRegs[d.rd] = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(s.intRegs[d.rn]) << (d.imm & 63));
}

inline void
execLsr(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.intRegs[d.rd] = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(s.intRegs[d.rn]) >> (d.imm & 63));
}

inline void
execAsr(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.intRegs[d.rd] = s.intRegs[d.rn] >> (d.imm & 63);
}

inline void
execMov(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.intRegs[d.rd] = s.intRegs[d.rn];
}

inline void
execMovi(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.intRegs[d.rd] = d.imm;
}

inline void
execAddi(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.intRegs[d.rd] = wrapAdd(s.intRegs[d.rn], d.imm);
}

inline void
execSubi(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.intRegs[d.rd] = wrapSub(s.intRegs[d.rn], d.imm);
}

inline void
execCmplt(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.intRegs[d.rd] = s.intRegs[d.rn] < s.intRegs[d.rm] ? 1 : 0;
}

inline void
execCmpeq(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.intRegs[d.rd] = s.intRegs[d.rn] == s.intRegs[d.rm] ? 1 : 0;
}

// ---------------------------------------------------------------------
// Integer multiply / divide.
// ---------------------------------------------------------------------

inline void
execMul(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.intRegs[d.rd] = wrapMul(s.intRegs[d.rn], s.intRegs[d.rm]);
}

inline void
execDiv(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    // Division by zero yields zero (trapping would complicate the
    // workload kernels for no modelling benefit); INT64_MIN / -1
    // wraps back to INT64_MIN like every other overflow.
    s.intRegs[d.rd] = s.intRegs[d.rm] == 0 ? 0
        : s.intRegs[d.rm] == -1 ? wrapSub(0, s.intRegs[d.rn])
        : s.intRegs[d.rn] / s.intRegs[d.rm];
}

// ---------------------------------------------------------------------
// Scalar floating point.
// ---------------------------------------------------------------------

inline void
execFadd(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.fpRegs[d.rd] = s.fpRegs[d.rn] + s.fpRegs[d.rm];
}

inline void
execFsub(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.fpRegs[d.rd] = s.fpRegs[d.rn] - s.fpRegs[d.rm];
}

inline void
execFmul(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.fpRegs[d.rd] = s.fpRegs[d.rn] * s.fpRegs[d.rm];
}

inline void
execFdiv(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.fpRegs[d.rd] = s.fpRegs[d.rm] == 0.0
        ? 0.0 : s.fpRegs[d.rn] / s.fpRegs[d.rm];
}

inline void
execFsqrt(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.fpRegs[d.rd] =
        s.fpRegs[d.rn] <= 0.0 ? 0.0 : std::sqrt(s.fpRegs[d.rn]);
}

inline void
execFmov(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.fpRegs[d.rd] = s.fpRegs[d.rn];
}

inline void
execFmovi(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.fpRegs[d.rd] = bitsToDouble(d.imm);
}

inline void
execFcvt(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.fpRegs[d.rd] = static_cast<double>(s.intRegs[d.rn]);
}

inline void
execFicvt(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.intRegs[d.rd] = doubleToInt64(s.fpRegs[d.rn]);
}

// ---------------------------------------------------------------------
// SIMD: modelled as packed pairs of FP ops on adjacent registers.
// ---------------------------------------------------------------------

inline void
execVadd(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.fpRegs[d.rd] = s.fpRegs[d.rn] + s.fpRegs[d.rm];
    s.fpRegs[(d.rd + 1) % numFpRegs] =
        s.fpRegs[(d.rn + 1) % numFpRegs] +
        s.fpRegs[(d.rm + 1) % numFpRegs];
}

inline void
execVmul(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &)
{
    s.fpRegs[d.rd] = s.fpRegs[d.rn] * s.fpRegs[d.rm];
    s.fpRegs[(d.rd + 1) % numFpRegs] =
        s.fpRegs[(d.rn + 1) % numFpRegs] *
        s.fpRegs[(d.rm + 1) % numFpRegs];
}

// ---------------------------------------------------------------------
// Memory.
// ---------------------------------------------------------------------

inline std::uint64_t
effectiveAddress(std::int64_t base, std::int64_t offset)
{
    return static_cast<std::uint64_t>(base) +
           static_cast<std::uint64_t>(offset);
}

inline void
execLdr(const DecodedOp &d, CpuState &s, const ExecEnv &env,
        OpOutcome &out)
{
    std::uint64_t addr =
        env.mem->mask(effectiveAddress(s.intRegs[d.rn], d.imm));
    s.intRegs[d.rd] = static_cast<std::int64_t>(env.mem->read(addr, 8));
    out.memAddr = addr;
    out.unaligned = (addr & 7) != 0;
}

inline void
execStr(const DecodedOp &d, CpuState &s, const ExecEnv &env,
        OpOutcome &out)
{
    std::uint64_t addr =
        env.mem->mask(effectiveAddress(s.intRegs[d.rn], d.imm));
    env.mem->write(addr, static_cast<std::uint64_t>(s.intRegs[d.rd]), 8);
    env.monitor->observeStore(env.threadId, addr);
    out.memAddr = addr;
    out.unaligned = (addr & 7) != 0;
}

inline void
execLdrb(const DecodedOp &d, CpuState &s, const ExecEnv &env,
         OpOutcome &out)
{
    std::uint64_t addr =
        env.mem->mask(effectiveAddress(s.intRegs[d.rn], d.imm));
    s.intRegs[d.rd] = static_cast<std::int64_t>(env.mem->read(addr, 1));
    out.memAddr = addr;
}

inline void
execStrb(const DecodedOp &d, CpuState &s, const ExecEnv &env,
         OpOutcome &out)
{
    std::uint64_t addr =
        env.mem->mask(effectiveAddress(s.intRegs[d.rn], d.imm));
    env.mem->write(addr, static_cast<std::uint64_t>(s.intRegs[d.rd]), 1);
    env.monitor->observeStore(env.threadId, addr);
    out.memAddr = addr;
}

inline void
execFldr(const DecodedOp &d, CpuState &s, const ExecEnv &env,
         OpOutcome &out)
{
    std::uint64_t addr =
        env.mem->mask(effectiveAddress(s.intRegs[d.rn], d.imm));
    std::uint64_t bits = env.mem->read(addr, 8);
    std::memcpy(&s.fpRegs[d.rd], &bits, sizeof(double));
    out.memAddr = addr;
    out.unaligned = (addr & 7) != 0;
}

inline void
execFstr(const DecodedOp &d, CpuState &s, const ExecEnv &env,
         OpOutcome &out)
{
    std::uint64_t addr =
        env.mem->mask(effectiveAddress(s.intRegs[d.rn], d.imm));
    std::uint64_t bits;
    std::memcpy(&bits, &s.fpRegs[d.rd], sizeof(double));
    env.mem->write(addr, bits, 8);
    env.monitor->observeStore(env.threadId, addr);
    out.memAddr = addr;
    out.unaligned = (addr & 7) != 0;
}

// ---------------------------------------------------------------------
// Control flow. out.nextPc arrives pre-seeded with pc + 1.
// ---------------------------------------------------------------------

inline void
execB(const DecodedOp &d, CpuState &, const ExecEnv &, OpOutcome &out)
{
    out.taken = true;
    out.nextPc = d.target;
}

inline void
execBeq(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &out)
{
    if (s.intRegs[d.rn] == 0) {
        out.taken = true;
        out.nextPc = d.target;
    }
}

inline void
execBne(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &out)
{
    if (s.intRegs[d.rn] != 0) {
        out.taken = true;
        out.nextPc = d.target;
    }
}

inline void
execBlt(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &out)
{
    if (s.intRegs[d.rn] < 0) {
        out.taken = true;
        out.nextPc = d.target;
    }
}

inline void
execBge(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &out)
{
    if (s.intRegs[d.rn] >= 0) {
        out.taken = true;
        out.nextPc = d.target;
    }
}

inline void
execBl(const DecodedOp &d, CpuState &s, const ExecEnv &, OpOutcome &out)
{
    s.intRegs[linkReg] = static_cast<std::int64_t>(out.nextPc);
    out.taken = true;
    out.nextPc = d.target;
}

inline void
execRetBidx(const DecodedOp &d, CpuState &s, const ExecEnv &env,
            OpOutcome &out)
{
    out.taken = true;
    out.nextPc = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(s.intRegs[d.rn]) % env.progSize);
}

inline void
execNothing(const DecodedOp &, CpuState &, const ExecEnv &, OpOutcome &)
{
    // Dmb / Isb / Nop: classification bits carry all the meaning.
}

} // namespace gemstone::isa::handlers

#endif // GEMSTONE_ISA_HANDLERS_HH
