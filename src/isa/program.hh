/**
 * @file
 * Program container and the ProgramBuilder fluent assembler.
 */

#ifndef GEMSTONE_ISA_PROGRAM_HH
#define GEMSTONE_ISA_PROGRAM_HH

#include <map>
#include <string>
#include <vector>

#include "isa/inst.hh"

namespace gemstone::isa {

class PredecodedProgram;

/**
 * An assembled program: a linear instruction sequence with branch
 * targets already resolved to instruction indices.
 */
class Program
{
  public:
    /** Name used in reports and artefact files. */
    std::string name;

    /** Instruction storage; the entry point is index 0. */
    std::vector<Inst> code;

    std::size_t size() const { return code.size(); }

    const Inst &fetch(std::uint32_t pc) const { return code[pc]; }

    /** Static mix (fraction per OpClass) for characterisation. */
    std::map<OpClass, double> staticMix() const;

    /**
     * One-time predecode pass: flatten into micro-ops and split into
     * basic blocks (see isa/predecode.hh). The program must outlive
     * the returned object and not be modified afterwards.
     */
    PredecodedProgram predecode() const;
};

/**
 * Fluent assembler with named labels and forward references.
 *
 * @code
 * ProgramBuilder b("loop-demo");
 * b.movi(1, 100);
 * b.label("loop");
 * b.subi(1, 1, 1);
 * b.bne(1, "loop");
 * b.halt();
 * Program p = b.build();
 * @endcode
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string program_name);

    /** Bind a label to the next emitted instruction. */
    ProgramBuilder &label(const std::string &name);

    // Integer ALU.
    ProgramBuilder &add(unsigned rd, unsigned rn, unsigned rm);
    ProgramBuilder &sub(unsigned rd, unsigned rn, unsigned rm);
    ProgramBuilder &andr(unsigned rd, unsigned rn, unsigned rm);
    ProgramBuilder &orr(unsigned rd, unsigned rn, unsigned rm);
    ProgramBuilder &eor(unsigned rd, unsigned rn, unsigned rm);
    ProgramBuilder &lsl(unsigned rd, unsigned rn, unsigned shift);
    ProgramBuilder &lsr(unsigned rd, unsigned rn, unsigned shift);
    ProgramBuilder &asr(unsigned rd, unsigned rn, unsigned shift);
    ProgramBuilder &mov(unsigned rd, unsigned rn);
    ProgramBuilder &movi(unsigned rd, std::int64_t imm);
    ProgramBuilder &addi(unsigned rd, unsigned rn, std::int64_t imm);
    ProgramBuilder &subi(unsigned rd, unsigned rn, std::int64_t imm);
    ProgramBuilder &cmplt(unsigned rd, unsigned rn, unsigned rm);
    ProgramBuilder &cmpeq(unsigned rd, unsigned rn, unsigned rm);

    // Multiply / divide.
    ProgramBuilder &mul(unsigned rd, unsigned rn, unsigned rm);
    ProgramBuilder &divr(unsigned rd, unsigned rn, unsigned rm);

    // Floating point.
    ProgramBuilder &fadd(unsigned rd, unsigned rn, unsigned rm);
    ProgramBuilder &fsub(unsigned rd, unsigned rn, unsigned rm);
    ProgramBuilder &fmul(unsigned rd, unsigned rn, unsigned rm);
    ProgramBuilder &fdiv(unsigned rd, unsigned rn, unsigned rm);
    ProgramBuilder &fsqrt(unsigned rd, unsigned rn);
    ProgramBuilder &fmov(unsigned rd, unsigned rn);
    ProgramBuilder &fmovi(unsigned rd, double value);
    ProgramBuilder &fcvt(unsigned fd, unsigned rn);
    ProgramBuilder &ficvt(unsigned rd, unsigned fn);

    // SIMD.
    ProgramBuilder &vadd(unsigned rd, unsigned rn, unsigned rm);
    ProgramBuilder &vmul(unsigned rd, unsigned rn, unsigned rm);

    // Memory.
    ProgramBuilder &ldr(unsigned rd, unsigned rn, std::int64_t disp = 0);
    ProgramBuilder &str(unsigned rd, unsigned rn, std::int64_t disp = 0);
    ProgramBuilder &ldrb(unsigned rd, unsigned rn,
                         std::int64_t disp = 0);
    ProgramBuilder &strb(unsigned rd, unsigned rn,
                         std::int64_t disp = 0);
    ProgramBuilder &fldr(unsigned fd, unsigned rn,
                         std::int64_t disp = 0);
    ProgramBuilder &fstr(unsigned fd, unsigned rn,
                         std::int64_t disp = 0);

    // Control flow.
    ProgramBuilder &b(const std::string &target);
    ProgramBuilder &beq(unsigned rn, const std::string &target);
    ProgramBuilder &bne(unsigned rn, const std::string &target);
    ProgramBuilder &blt(unsigned rn, const std::string &target);
    ProgramBuilder &bge(unsigned rn, const std::string &target);
    ProgramBuilder &bl(const std::string &target);
    ProgramBuilder &ret();
    ProgramBuilder &bidx(unsigned rn);

    // Synchronisation.
    ProgramBuilder &ldrex(unsigned rd, unsigned rn);
    ProgramBuilder &strex(unsigned rd, unsigned rm, unsigned rn);
    ProgramBuilder &dmb();
    ProgramBuilder &isb();

    // Misc.
    ProgramBuilder &nop();
    ProgramBuilder &halt();

    /** Current instruction index (next emitted instruction). */
    std::uint32_t here() const;

    /** Resolve labels and return the finished program. */
    Program build();

  private:
    ProgramBuilder &emit(Inst inst);
    ProgramBuilder &emitBranch(Opcode op, unsigned rn,
                               const std::string &target);

    Program program;
    std::map<std::string, std::uint32_t> labels;
    /** (instruction index, label) pairs awaiting resolution. */
    std::vector<std::pair<std::uint32_t, std::string>> fixups;
    bool built = false;
};

} // namespace gemstone::isa

#endif // GEMSTONE_ISA_PROGRAM_HH
