/**
 * @file
 * Flat data memory and the exclusive-access monitor.
 */

#ifndef GEMSTONE_ISA_MEMORY_HH
#define GEMSTONE_ISA_MEMORY_HH

#include <cstdint>
#include <vector>

namespace gemstone::isa {

/**
 * Byte-addressable data memory shared by all threads of a workload.
 *
 * Addresses wrap modulo the (power-of-two) size, so workload kernels
 * can use unbounded strides without bounds bookkeeping — the wrap is
 * part of the workload semantics on both platforms.
 */
class Memory
{
  public:
    /** Allocate zeroed memory; size is rounded up to a power of two. */
    explicit Memory(std::uint64_t size_bytes);

    std::uint64_t size() const { return bytes.size(); }

    /** Mask an address into range. */
    std::uint64_t mask(std::uint64_t addr) const
    {
        return addr & addrMask;
    }

    /** Read an unsigned little-endian value of 1 or 8 bytes. */
    std::uint64_t read(std::uint64_t addr, unsigned size);

    /** Write a little-endian value of 1 or 8 bytes. */
    void write(std::uint64_t addr, std::uint64_t value, unsigned size);

    /** Convenience 64-bit accessors. */
    std::uint64_t read64(std::uint64_t addr) { return read(addr, 8); }
    void write64(std::uint64_t addr, std::uint64_t value)
    {
        write(addr, value, 8);
    }

    /** Zero the whole memory. */
    void clear();

  private:
    std::vector<std::uint8_t> bytes;
    std::uint64_t addrMask = 0;
};

/**
 * Global exclusive monitor for LDREX/STREX, one reservation per
 * hardware thread. A store by any thread to a reserved address clears
 * other threads' reservations, giving the usual lock-free CAS loop
 * semantics the multithreaded workloads rely on.
 */
class ExclusiveMonitor
{
  public:
    /** Reset all reservations (e.g. between benchmark runs). */
    void reset();

    /** Record a reservation for a thread. */
    void setReservation(unsigned thread_id, std::uint64_t addr);

    /**
     * Attempt the exclusive store.
     * @return true (and consume the reservation) if still valid.
     */
    bool tryStore(unsigned thread_id, std::uint64_t addr);

    /** Invalidate other threads' reservations on a plain store. */
    void observeStore(unsigned thread_id, std::uint64_t addr);

    /** True if the thread currently holds a valid reservation. */
    bool holds(unsigned thread_id) const;

  private:
    static constexpr unsigned maxThreads = 8;
    struct Reservation
    {
        bool valid = false;
        std::uint64_t addr = 0;
    };
    Reservation slots[maxThreads];
};

} // namespace gemstone::isa

#endif // GEMSTONE_ISA_MEMORY_HH
