/**
 * @file
 * Flat data memory and the exclusive-access monitor.
 */

#ifndef GEMSTONE_ISA_MEMORY_HH
#define GEMSTONE_ISA_MEMORY_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

namespace gemstone::isa {

/**
 * Byte-addressable data memory shared by all threads of a workload.
 *
 * Addresses wrap modulo the (power-of-two) size, so workload kernels
 * can use unbounded strides without bounds bookkeeping — the wrap is
 * part of the workload semantics on both platforms.
 */
class Memory
{
  public:
    /** Allocate zeroed memory; size is rounded up to a power of two. */
    explicit Memory(std::uint64_t size_bytes);

    std::uint64_t size() const { return bytes.size(); }

    /** Mask an address into range. */
    std::uint64_t mask(std::uint64_t addr) const
    {
        return addr & addrMask;
    }

    /**
     * Read an unsigned little-endian value of 1 or 8 bytes.
     *
     * Inline fast path: on a little-endian host a non-wrapping 8-byte
     * access is a single (unaligned) memcpy — byte-for-byte the same
     * value the generic per-byte loop assembles, which stays in
     * readSlow() for the wrap-around case and other hosts. Every
     * simulated load funnels through here, so the loop was one of the
     * hottest scalar paths in both execution engines.
     */
    std::uint64_t read(std::uint64_t addr, unsigned size)
    {
        if constexpr (std::endian::native == std::endian::little) {
            std::uint64_t a = mask(addr);
            if (size == 8 && a + 8 <= bytes.size()) [[likely]] {
                std::uint64_t value;
                std::memcpy(&value, bytes.data() + a, 8);
                return value;
            }
            if (size == 1)
                return bytes[a];
        }
        return readSlow(addr, size);
    }

    /** Write a little-endian value of 1 or 8 bytes. */
    void write(std::uint64_t addr, std::uint64_t value, unsigned size)
    {
        if constexpr (std::endian::native == std::endian::little) {
            std::uint64_t a = mask(addr);
            if (size == 8 && a + 8 <= bytes.size()) [[likely]] {
                std::memcpy(bytes.data() + a, &value, 8);
                return;
            }
            if (size == 1) {
                bytes[a] = static_cast<std::uint8_t>(value);
                return;
            }
        }
        writeSlow(addr, value, size);
    }

    /** Convenience 64-bit accessors. */
    std::uint64_t read64(std::uint64_t addr) { return read(addr, 8); }
    void write64(std::uint64_t addr, std::uint64_t value)
    {
        write(addr, value, 8);
    }

    /** Zero the whole memory. */
    void clear();

  private:
    /** Generic byte loop: wrap-around accesses, size checks. */
    std::uint64_t readSlow(std::uint64_t addr, unsigned size);
    void writeSlow(std::uint64_t addr, std::uint64_t value,
                   unsigned size);

    std::vector<std::uint8_t> bytes;
    std::uint64_t addrMask = 0;
};

/**
 * Global exclusive monitor for LDREX/STREX, one reservation per
 * hardware thread. A store by any thread to a reserved address clears
 * other threads' reservations, giving the usual lock-free CAS loop
 * semantics the multithreaded workloads rely on.
 */
class ExclusiveMonitor
{
  public:
    /** Reset all reservations (e.g. between benchmark runs). */
    void reset();

    /** Record a reservation for a thread. */
    void setReservation(unsigned thread_id, std::uint64_t addr);

    /**
     * Attempt the exclusive store.
     * @return true (and consume the reservation) if still valid.
     */
    bool tryStore(unsigned thread_id, std::uint64_t addr);

    /**
     * Invalidate other threads' reservations on a plain store.
     *
     * Inline early-out: with no live reservation (the common case —
     * every plain store of every thread calls this) the slot scan is
     * skipped entirely. validCount tracks the live reservations, so
     * skipping the scan when it is zero clears exactly the same
     * (empty) set of slots the scan would.
     */
    void observeStore(unsigned thread_id, std::uint64_t addr)
    {
        (void)thread_id;
        if (validCount == 0)
            return;
        observeStoreSlow(addr);
    }

    /** True if the thread currently holds a valid reservation. */
    bool holds(unsigned thread_id) const;

  private:
    static constexpr unsigned maxThreads = 8;
    struct Reservation
    {
        bool valid = false;
        std::uint64_t addr = 0;
    };

    void observeStoreSlow(std::uint64_t addr);

    Reservation slots[maxThreads];
    /** Number of slots with valid == true. */
    unsigned validCount = 0;
};

} // namespace gemstone::isa

#endif // GEMSTONE_ISA_MEMORY_HH
