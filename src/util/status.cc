/**
 * @file
 * Status taxonomy implementation.
 */

#include "util/status.hh"

namespace gemstone {

std::string
statusCodeTag(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:
        return "ok";
      case StatusCode::Cancelled:
        return "cancelled";
      case StatusCode::DeadlineExceeded:
        return "deadline_exceeded";
      case StatusCode::IoError:
        return "io_error";
      case StatusCode::CorruptData:
        return "corrupt_data";
      case StatusCode::FaultInjected:
        return "fault_injected";
      case StatusCode::Internal:
        return "internal";
    }
    return "?";
}

bool
parseStatusCode(const std::string &tag, StatusCode &code)
{
    for (StatusCode candidate :
         {StatusCode::Ok, StatusCode::Cancelled,
          StatusCode::DeadlineExceeded, StatusCode::IoError,
          StatusCode::CorruptData, StatusCode::FaultInjected,
          StatusCode::Internal}) {
        if (statusCodeTag(candidate) == tag) {
            code = candidate;
            return true;
        }
    }
    return false;
}

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    return statusCodeTag(statusCode) + ": " + text;
}

} // namespace gemstone
