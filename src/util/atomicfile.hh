/**
 * @file
 * Crash-safe file persistence.
 *
 * Every durable artefact (campaign checkpoints, collated CSVs, the
 * result store) goes through one write protocol: serialise to
 * `path.tmp`, flush and fsync it, then rename over `path`. A crash at
 * any byte offset of the write leaves either the previous complete
 * file or (at worst) a stray .tmp — never a half-written artefact
 * that a resume would then trust. Writers may additionally append a
 * trailing integrity marker line so readers can distinguish "written
 * to completion" from "appended to until the lights went out".
 *
 * For append-style files produced by older runs or torn by the
 * filesystem itself, recoverCsvTail() quarantines a partial final
 * record into a `.corrupt` sidecar and truncates the file back to
 * its last complete row, so resume continues from the last good row
 * instead of aborting (or worse, mis-parsing).
 */

#ifndef GEMSTONE_UTIL_ATOMICFILE_HH
#define GEMSTONE_UTIL_ATOMICFILE_HH

#include <cstddef>
#include <string>

#include "util/status.hh"

namespace gemstone {

/**
 * Write @p content to @p path atomically (write tmp, fsync, rename).
 * A non-empty @p marker_line is appended as the file's final line.
 * Returns Ok or an IoError naming the failing step.
 */
Status atomicWriteFile(const std::string &path,
                       const std::string &content,
                       const std::string &marker_line = std::string());

/**
 * fsync the directory containing @p path, making a completed rename,
 * create or truncate of that file durable across power loss — on
 * POSIX the rename itself only becomes persistent once the directory
 * entry is flushed. No-op Ok on platforms without fsync.
 */
Status fsyncDirectoryOf(const std::string &path);

/** Outcome of a tail-recovery pass over an append-style CSV. */
struct TailRecovery
{
    /** A partial final record was found and quarantined. */
    bool recovered = false;
    /** Bytes moved to the sidecar. */
    std::size_t quarantinedBytes = 0;
    /** Sidecar path (path + ".corrupt"), set when recovered. */
    std::string corruptPath;
};

/**
 * Scan @p path as RFC-4180 CSV and, if it ends mid-record (a crash
 * during an append, or a truncation at an arbitrary byte offset),
 * move the partial tail to `path + ".corrupt"` and truncate the file
 * back to its last complete row. A file with no complete row at all
 * is quarantined whole, leaving an empty file. A missing file is Ok
 * with nothing recovered. Records spanning quoted newlines are
 * handled; the scan never mis-counts a newline inside quotes as a
 * row boundary.
 */
Result<TailRecovery> recoverCsvTail(const std::string &path);

} // namespace gemstone

#endif // GEMSTONE_UTIL_ATOMICFILE_HH
