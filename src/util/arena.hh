/**
 * @file
 * Per-run arena allocation and heap-allocation accounting.
 *
 * Arena is a bump-pointer allocator with chunked growth: allocations
 * are pointer increments inside the current chunk, a full chunk
 * chains a new (geometrically larger) one, and reset() rewinds every
 * chunk cursor without returning memory to the heap — the
 * steady-state contract the simulation hot path is built on. One
 * model run allocates its cache/TLB/predictor tables out of its
 * arena exactly once; every later run reuses the same memory via the
 * components' in-place reset() methods, so repeated runs perform
 * zero heap allocations (beng-proxy's SlicePool/dpool and the OSv
 * allocator are the exemplars for this shape).
 *
 * Arenas hand out raw, trivially-destructible storage only: nothing
 * runs destructors for arena objects, so allocArray<T> requires a
 * trivially destructible T. Arenas are not thread-safe; each model
 * (or worker thread, see threadArena()) owns its own.
 *
 * MallocTally is the enforcement hook: the global operator new /
 * delete are replaced with counting versions (thread-local counters,
 * a few ns per allocation) so tests and benches can assert that a
 * warmed-up quantum loop allocates nothing. Sanitizer builds replace
 * operator new themselves, so the tally is compiled out there and
 * mallocTallyActive() reports false — callers skip the assertion
 * instead of fighting the interceptors.
 */

#ifndef GEMSTONE_UTIL_ARENA_HH
#define GEMSTONE_UTIL_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>

namespace gemstone {

/** Bump-pointer arena with chunked growth and reset-between-runs. */
class Arena
{
  public:
    /** @param first_chunk_bytes size of the first chunk allocated */
    explicit Arena(std::size_t first_chunk_bytes = 64 * 1024);
    ~Arena();

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Allocate @p bytes with the given power-of-two alignment.
     * Returns zero-initialised storage (chunks are zeroed when they
     * are carved from the heap and reset() re-zeroes the used
     * prefix, so recycled storage is indistinguishable from fresh).
     */
    void *allocate(std::size_t bytes, std::size_t align);

    /**
     * Allocate a zero-initialised array of @p count Ts. T must be
     * trivially destructible (the arena never runs destructors) and
     * trivially copyable (reset() re-zeroes raw storage).
     */
    template <typename T>
    T *
    allocArray(std::size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena storage never runs destructors");
        static_assert(std::is_trivially_copyable_v<T>,
                      "arena reset re-zeroes raw bytes");
        return static_cast<T *>(
            allocate(count * sizeof(T), alignof(T)));
    }

    /**
     * Rewind every chunk's cursor to empty and re-zero the used
     * bytes. All outstanding pointers become dangling; no memory is
     * returned to the heap, so the next fill pattern of the same
     * shape performs zero heap allocations.
     */
    void reset();

    /** Bytes handed out since construction / the last reset(). */
    std::size_t bytesAllocated() const { return allocatedBytes; }

    /** Bytes of chunk capacity currently held from the heap. */
    std::size_t bytesReserved() const { return reservedBytes; }

    /** Number of chunks held from the heap. */
    std::size_t chunkCount() const { return chunks; }

  private:
    struct Chunk;

    /** Grow: chain a chunk big enough for @p bytes and retry. */
    void *allocateSlow(std::size_t bytes, std::size_t align);

    Chunk *head = nullptr;       //!< chunk currently bumped into
    Chunk *firstChunk = nullptr; //!< chain start, for reset()
    std::size_t nextChunkBytes;  //!< size of the next chunk to carve
    std::size_t allocatedBytes = 0;
    std::size_t reservedBytes = 0;
    std::size_t chunks = 0;
};

/**
 * The calling thread's long-lived arena (one per thread, constructed
 * on first use, freed at thread exit). Worker threads — the exec
 * ThreadPool's, the serve daemon's request threads — back their
 * pooled simulation models with it so parallel campaign runs carve
 * their tables from thread-private chunks instead of contending on
 * the global heap. Never reset it while any object allocated from it
 * is alive; pooled models live exactly as long as the thread, which
 * is what makes this pairing safe.
 */
Arena &threadArena();

/**
 * Snapshot of the calling thread's heap-allocation counters.
 * Counts every operator new (scalar, array, nothrow, aligned) made
 * by this thread since it started; frees are counted separately so
 * a net-zero loop that still churns the heap is visible.
 */
struct MallocTallySnapshot
{
    std::uint64_t allocs = 0;
    std::uint64_t bytes = 0;
    std::uint64_t frees = 0;
};

/** Current counters for the calling thread. */
MallocTallySnapshot mallocTally();

/**
 * True when the counting operator new is linked in (false in
 * sanitizer builds, where ASan/TSan own the allocator). Implemented
 * as a live probe — allocate, check the counter moved — so it cannot
 * drift from the link-time truth.
 */
bool mallocTallyActive();

} // namespace gemstone

#endif // GEMSTONE_UTIL_ARENA_HH
