/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * Two error paths are provided, mirroring gem5's src/base/logging.hh:
 * panic() is for internal invariant violations (aborts), fatal() is
 * for user-caused conditions (clean exit with an error code). warn()
 * and inform() emit non-fatal diagnostics.
 */

#ifndef GEMSTONE_UTIL_LOGGING_HH
#define GEMSTONE_UTIL_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace gemstone {

/** Severity of a log record. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail {

/** Stream a pack of arguments into a single string. */
template <typename... Args>
std::string
concatToString(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/** Emit one formatted log record to stderr. */
void emitLog(LogLevel level, const std::string &message,
             const char *file, int line);

} // namespace detail

/**
 * Report an internal error that should never happen and abort.
 * Use for simulator bugs, not user mistakes.
 */
[[noreturn]] void panicImpl(const std::string &message, const char *file,
                            int line);

/**
 * Report a user-caused unrecoverable condition and exit(1).
 * Use for bad configuration or invalid arguments.
 */
[[noreturn]] void fatalImpl(const std::string &message, const char *file,
                            int line);

/** Count of warnings emitted so far (useful in tests). */
std::size_t warnCount();

/** Silence inform()/warn() output (records are still counted). */
void setQuiet(bool quiet);

#define panic(...)                                                        \
    ::gemstone::panicImpl(                                                \
        ::gemstone::detail::concatToString(__VA_ARGS__), __FILE__,        \
        __LINE__)

#define fatal(...)                                                        \
    ::gemstone::fatalImpl(                                                \
        ::gemstone::detail::concatToString(__VA_ARGS__), __FILE__,        \
        __LINE__)

#define warn(...)                                                         \
    ::gemstone::detail::emitLog(                                          \
        ::gemstone::LogLevel::Warn,                                       \
        ::gemstone::detail::concatToString(__VA_ARGS__), __FILE__,        \
        __LINE__)

#define inform(...)                                                       \
    ::gemstone::detail::emitLog(                                          \
        ::gemstone::LogLevel::Inform,                                     \
        ::gemstone::detail::concatToString(__VA_ARGS__), __FILE__,        \
        __LINE__)

/** panic() unless the given condition holds. */
#define panic_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            panic(__VA_ARGS__);                                           \
    } while (0)

/** fatal() unless the given condition holds. */
#define fatal_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            fatal(__VA_ARGS__);                                           \
    } while (0)

} // namespace gemstone

#endif // GEMSTONE_UTIL_LOGGING_HH
