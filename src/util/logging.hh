/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * Two error paths are provided, mirroring gem5's src/base/logging.hh:
 * panic() is for internal invariant violations (aborts), fatal() is
 * for user-caused conditions (clean exit with an error code). warn()
 * and inform() emit non-fatal diagnostics.
 */

#ifndef GEMSTONE_UTIL_LOGGING_HH
#define GEMSTONE_UTIL_LOGGING_HH

#include <atomic>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gemstone {

/** Severity of a log record. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail {

/** Stream a pack of arguments into a single string. */
template <typename... Args>
std::string
concatToString(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/** Emit one formatted log record to stderr. */
void emitLog(LogLevel level, const std::string &message,
             const char *file, int line);

/**
 * Emit a warning for @p key at most @p limit times per process; the
 * last permitted record announces the suppression. Suppressed calls
 * are still tallied per key (see limitedWarnCount()) so tests can
 * observe the true event rate.
 */
void emitLimitedWarn(const std::string &key, std::size_t limit,
                     const std::string &message, const char *file,
                     int line);

} // namespace detail

/**
 * Report an internal error that should never happen and abort.
 * Use for simulator bugs, not user mistakes.
 */
[[noreturn]] void panicImpl(const std::string &message, const char *file,
                            int line);

/**
 * Report a user-caused unrecoverable condition. By default this
 * exits(1); a process may install a fatal handler instead (see
 * setFatalHandler/setFatalThrows), in which case the handler is
 * expected to throw — if it returns, exit(1) still happens. panic()
 * is unaffected: invariant violations always abort.
 */
[[noreturn]] void fatalImpl(const std::string &message, const char *file,
                            int line);

/** Thrown in place of exit(1) when fatal() is configured to throw. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &message)
        : std::runtime_error(message)
    {}
};

/**
 * Route fatal() through @p handler instead of exit(1). The handler
 * should throw; a handler that returns falls back to exit(1). Pass
 * nullptr to restore the default exit behaviour. Not thread-safe
 * against concurrent fatal() — install handlers at startup or in
 * single-threaded test fixtures.
 */
void setFatalHandler(std::function<void(const std::string &)> handler);

/**
 * Convenience: make fatal() throw FatalError (true) or exit(1)
 * (false). Lets tests and long-running embedders exercise fatal
 * paths without losing the process.
 */
void setFatalThrows(bool throws);

/**
 * Scoped per-thread log prefix, e.g. "[conn 7 req 3]". Every record
 * a thread emits (inform/warn/fatal/panic) while a LogContext is
 * alive is prefixed with the active contexts, outermost first, so
 * interleaved daemon logs stay attributable to their connection and
 * request. Contexts nest and are strictly thread-local — two threads
 * never see each other's prefixes, which is what makes the mechanism
 * thread-safe without a lock.
 */
class LogContext
{
  public:
    explicit LogContext(std::string prefix);
    ~LogContext();

    LogContext(const LogContext &) = delete;
    LogContext &operator=(const LogContext &) = delete;
};

/**
 * The calling thread's active log prefix: the space-joined contexts
 * plus a trailing space, or "" when none are installed.
 */
std::string currentLogPrefix();

/** Count of warnings emitted so far (useful in tests). */
std::size_t warnCount();

/**
 * Times a rate-limited warning key has fired (0 for unseen keys);
 * counts events, not printed records.
 */
std::size_t limitedWarnCount(const std::string &key);

/** Forget all rate-limited warning keys (test isolation). */
void resetLimitedWarns();

/** Silence inform()/warn() output (records are still counted). */
void setQuiet(bool quiet);

#define panic(...)                                                        \
    ::gemstone::panicImpl(                                                \
        ::gemstone::detail::concatToString(__VA_ARGS__), __FILE__,        \
        __LINE__)

#define fatal(...)                                                        \
    ::gemstone::fatalImpl(                                                \
        ::gemstone::detail::concatToString(__VA_ARGS__), __FILE__,        \
        __LINE__)

#define warn(...)                                                         \
    ::gemstone::detail::emitLog(                                          \
        ::gemstone::LogLevel::Warn,                                       \
        ::gemstone::detail::concatToString(__VA_ARGS__), __FILE__,        \
        __LINE__)

#define inform(...)                                                       \
    ::gemstone::detail::emitLog(                                          \
        ::gemstone::LogLevel::Inform,                                     \
        ::gemstone::detail::concatToString(__VA_ARGS__), __FILE__,        \
        __LINE__)

/**
 * warn() that fires at most once per call site for the lifetime of
 * the process — for conditions that repeat identically thousands of
 * times in a fault-injected campaign.
 */
#define warnOnce(...)                                                     \
    do {                                                                  \
        static std::atomic<bool> gs_warned_once_{false};                  \
        if (!gs_warned_once_.exchange(true,                               \
                                      std::memory_order_relaxed))         \
            warn(__VA_ARGS__);                                            \
    } while (0)

/**
 * warn() that emits at most @p limit records for the given key; the
 * final permitted record announces that further ones are suppressed.
 * Unlike warnOnce, keys are runtime values, so one call site can
 * rate-limit per workload, per fault kind, etc.
 */
#define warnLimited(key, limit, ...)                                      \
    ::gemstone::detail::emitLimitedWarn(                                  \
        key, limit, ::gemstone::detail::concatToString(__VA_ARGS__),      \
        __FILE__, __LINE__)

/** panic() unless the given condition holds. */
#define panic_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            panic(__VA_ARGS__);                                           \
    } while (0)

/** fatal() unless the given condition holds. */
#define fatal_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            fatal(__VA_ARGS__);                                           \
    } while (0)

} // namespace gemstone

#endif // GEMSTONE_UTIL_LOGGING_HH
