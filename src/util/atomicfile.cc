/**
 * @file
 * Atomic write and CSV tail recovery implementation.
 */

#include "util/atomicfile.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define GEMSTONE_HAVE_FSYNC 1
#endif

namespace gemstone {

namespace {

/** fsync a path; best effort on platforms without it. */
bool
syncPath(const std::string &path)
{
#ifdef GEMSTONE_HAVE_FSYNC
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return false;
    bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
#else
    (void)path;
    return true;
#endif
}

} // namespace

Status
fsyncDirectoryOf(const std::string &path)
{
#ifdef GEMSTONE_HAVE_FSYNC
    std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    const std::string dir = parent.empty() ? "." : parent.string();
    if (!syncPath(dir)) {
        return Status::error(StatusCode::IoError,
                             "cannot fsync directory " + dir);
    }
#else
    (void)path;
#endif
    return Status::okStatus();
}

Status
atomicWriteFile(const std::string &path, const std::string &content,
                const std::string &marker_line)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            return Status::error(StatusCode::IoError,
                                 "cannot open " + tmp);
        }
        out << content;
        if (!marker_line.empty()) {
            out << marker_line;
            if (marker_line.back() != '\n')
                out << '\n';
        }
        out.flush();
        if (!out) {
            return Status::error(StatusCode::IoError,
                                 "short write to " + tmp);
        }
    }
    if (!syncPath(tmp)) {
        std::filesystem::remove(tmp);
        return Status::error(StatusCode::IoError,
                             "cannot fsync " + tmp);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp);
        return Status::error(StatusCode::IoError,
                             "cannot rename " + tmp + " over " + path +
                                 ": " + ec.message());
    }
    // Make the rename itself durable: until the directory entry is
    // flushed, power loss can roll the rename back — or worse, leave
    // the entry pointing at unflushed metadata. A failure here is a
    // hard error like every other step; callers relying on "either
    // the old file or the new one" need the rename to actually stick.
    return fsyncDirectoryOf(path);
}

Result<TailRecovery>
recoverCsvTail(const std::string &path)
{
    TailRecovery recovery;
    std::error_code ec;
    if (!std::filesystem::exists(path, ec) || ec)
        return recovery;

    std::string content;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            return Status::error(StatusCode::IoError,
                                 "cannot open " + path);
        }
        content.assign(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
    }

    // Last complete record boundary: the final newline at quote
    // depth zero. Everything after it is a torn append.
    bool quoted = false;
    std::size_t last_boundary = 0;  // bytes belonging to whole rows
    for (std::size_t i = 0; i < content.size(); ++i) {
        char c = content[i];
        if (c == '"')
            quoted = !quoted;
        else if (c == '\n' && !quoted)
            last_boundary = i + 1;
    }
    if (last_boundary == content.size())
        return recovery;  // file ends on a row boundary: intact

    const std::string tail = content.substr(last_boundary);
    recovery.recovered = true;
    recovery.quarantinedBytes = tail.size();
    recovery.corruptPath = path + ".corrupt";
    {
        std::ofstream sidecar(recovery.corruptPath,
                              std::ios::binary | std::ios::app);
        if (!sidecar) {
            return Status::error(StatusCode::IoError,
                                 "cannot open " + recovery.corruptPath);
        }
        sidecar << tail;
        if (tail.empty() || tail.back() != '\n')
            sidecar << '\n';
        sidecar.flush();
        if (!sidecar) {
            return Status::error(StatusCode::IoError,
                                 "short write to " +
                                     recovery.corruptPath);
        }
    }
    // The quarantine must be durable before the truncate destroys
    // the only other copy of the tail: fsync the sidecar's bytes and
    // its directory entry (the file may be freshly created).
    if (!syncPath(recovery.corruptPath)) {
        return Status::error(StatusCode::IoError,
                             "cannot fsync " + recovery.corruptPath);
    }
    Status dir_synced = fsyncDirectoryOf(recovery.corruptPath);
    if (!dir_synced.ok())
        return dir_synced;
    // Truncate back to the last good row only after the tail is
    // safely in the sidecar.
    std::filesystem::resize_file(path, last_boundary, ec);
    if (ec) {
        return Status::error(StatusCode::IoError,
                             "cannot truncate " + path + ": " +
                                 ec.message());
    }
    if (!syncPath(path)) {
        return Status::error(StatusCode::IoError,
                             "cannot fsync " + path);
    }
    return recovery;
}

} // namespace gemstone
