/**
 * @file
 * String helper implementations.
 */

#include "util/strutil.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace gemstone {

std::vector<std::string>
split(const std::string &text, char delim)
{
    std::vector<std::string> fields;
    std::string current;
    for (char c : text) {
        if (c == delim) {
            fields.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    fields.push_back(current);
    return fields;
}

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(
                              text[begin]))) {
        ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(
                              text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
        text.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
        text.compare(text.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

std::string
join(const std::vector<std::string> &items, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0)
            out += sep;
        out += items[i];
    }
    return out;
}

std::string
toLower(const std::string &text)
{
    std::string out = text;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return out;
}

std::string
formatDouble(double value, int decimals)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
    return buffer;
}

std::string
formatExactDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

std::string
formatRatio(double value)
{
    int decimals = 1;
    double magnitude = std::fabs(value);
    if (magnitude < 0.1)
        decimals = 3;
    else if (magnitude < 1.0)
        decimals = 2;
    return formatDouble(value, decimals) + "x";
}

std::string
formatPercent(double fraction, int decimals)
{
    return formatDouble(fraction * 100.0, decimals) + "%";
}

} // namespace gemstone
