/**
 * @file
 * Cooperative cancellation and deadlines for long campaigns.
 *
 * A CancellationToken is a shared flag: anything holding a copy can
 * request cancellation (including a signal handler — the flag is a
 * plain atomic store) and anything polling it stops at its next
 * checkpoint. A Deadline bounds one run in wall-clock time. Neither
 * preempts anything: the simulation loops poll a thread-local
 * cooperative scope (CoopScope) every few thousand simulated
 * instructions, so an in-flight campaign stops in bounded time and a
 * runaway run becomes a structured deadline_exceeded failure instead
 * of hanging its worker.
 *
 * Propagation is by value: tokens are cheap shared_ptr copies, so a
 * CampaignConfig, a RunnerConfig, a ThreadPool and a signal handler
 * can all hold the same flag. CoopScopes nest (a campaign scope
 * around a runner scope); a checkpoint poll walks the whole chain,
 * so an outer armed scope is never masked by an inner inert one.
 */

#ifndef GEMSTONE_UTIL_CANCELLATION_HH
#define GEMSTONE_UTIL_CANCELLATION_HH

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>

#include "util/status.hh"

namespace gemstone {

/** Thrown when a cancellation request interrupts cooperative work. */
class CancelledError : public StatusError
{
  public:
    explicit CancelledError(const std::string &message)
        : StatusError(StatusCode::Cancelled, message)
    {
    }
};

/** Thrown when a deadline expires inside cooperative work. */
class DeadlineError : public StatusError
{
  public:
    explicit DeadlineError(const std::string &message)
        : StatusError(StatusCode::DeadlineExceeded, message)
    {
    }
};

/**
 * Shared cancellation flag. Copies share state; a default-constructed
 * token owns a fresh (never-cancelled) flag, so embedding one in a
 * config struct costs nothing until someone keeps a copy and cancels
 * it. requestCancel() is an atomic store and therefore safe from a
 * signal handler that reaches the flag through rawFlag().
 */
class CancellationToken
{
  public:
    CancellationToken()
        : state(std::make_shared<std::atomic<bool>>(false))
    {
    }

    /** Ask all holders of this token to stop at their next poll. */
    void
    requestCancel()
    {
        state->store(true, std::memory_order_release);
    }

    bool
    cancelled() const
    {
        return state->load(std::memory_order_acquire);
    }

    /** Throw CancelledError when cancellation has been requested. */
    void
    throwIfCancelled(const char *what = "operation") const
    {
        if (cancelled())
            throw CancelledError(std::string(what) + " cancelled");
    }

    /**
     * The underlying flag, for async-signal-safe cancellation. The
     * caller must keep a token copy alive for as long as the pointer
     * is retained (see util/signals.hh).
     */
    std::atomic<bool> *rawFlag() const { return state.get(); }

  private:
    std::shared_ptr<std::atomic<bool>> state;
};

/**
 * A wall-clock bound on one run. Default-constructed deadlines are
 * unlimited; after(seconds) expires that far from now (0 or negative
 * expires immediately, which tests use for a deterministic trip).
 */
class Deadline
{
  public:
    /** No limit. */
    Deadline() = default;

    static Deadline
    after(double seconds)
    {
        Deadline d;
        d.hasLimit = true;
        d.expiry = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds));
        return d;
    }

    bool limited() const { return hasLimit; }

    bool
    expired() const
    {
        return hasLimit && std::chrono::steady_clock::now() >= expiry;
    }

    /** Throw DeadlineError when the deadline has passed. */
    void
    throwIfExpired(const char *what = "operation") const
    {
        if (expired())
            throw DeadlineError(std::string(what) +
                                " exceeded its deadline");
    }

  private:
    bool hasLimit = false;
    std::chrono::steady_clock::time_point expiry;
};

/**
 * Installs a (token, deadline) pair as the current thread's
 * cooperative context for its lifetime; scopes nest and restore the
 * previous context on destruction. The simulation loops call
 * coopCheckpoint(), which throws CancelledError / DeadlineError on
 * behalf of any scope in the chain.
 */
class CoopScope
{
  public:
    CoopScope(CancellationToken token, Deadline deadline,
              const char *what = "run");
    ~CoopScope();

    CoopScope(const CoopScope &) = delete;
    CoopScope &operator=(const CoopScope &) = delete;

  private:
    friend void coopCheckpoint();

    CancellationToken cancelToken;
    Deadline runDeadline;
    const char *label;
    CoopScope *previous;
};

/**
 * Cooperative checkpoint: with no scope installed this is a single
 * thread-local load, cheap enough for inner simulation loops.
 * Otherwise it polls every scope in the chain and throws
 * CancelledError or DeadlineError for the innermost violated one.
 */
void coopCheckpoint();

/** True when any cooperative scope is installed on this thread. */
bool coopScopeActive();

/**
 * Install a per-thread hook invoked from coopCheckpoint() at most
 * once per @p interval_seconds. The simulation loops already poll
 * coopCheckpoint() every few thousand instructions, so the hook
 * piggybacks on those poll sites — a procpool worker uses it to emit
 * heartbeats from inside a long run without needing a second thread
 * (which a forked child must avoid). The clock is only consulted
 * every few thousand checkpoints, so an installed hook costs the
 * inner loops a counter decrement. The hook must not throw; a hook
 * that re-enters coopCheckpoint() is not re-invoked recursively.
 */
void setCoopPollHook(std::function<void()> hook,
                     double interval_seconds);

/** Remove the current thread's poll hook. */
void clearCoopPollHook();

} // namespace gemstone

#endif // GEMSTONE_UTIL_CANCELLATION_HH
