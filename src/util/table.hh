/**
 * @file
 * ASCII table formatter used by the benches and GemStone reports.
 *
 * Every figure and table reproduced from the paper is rendered through
 * this class so the output has a consistent, diff-friendly shape.
 */

#ifndef GEMSTONE_UTIL_TABLE_HH
#define GEMSTONE_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace gemstone {

/**
 * Simple column-aligned text table.
 *
 * Usage:
 * @code
 * TextTable t({"workload", "MPE", "cluster"});
 * t.addRow({"mi-sha", "-12.3%", "4"});
 * t.print(std::cout);
 * @endcode
 */
class TextTable
{
  public:
    /** Construct with header labels. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal rule row. */
    void addRule();

    /** Render to a stream. */
    void print(std::ostream &os) const;

    /** Render to a string. */
    std::string toString() const;

    /** Number of data rows added so far (rules excluded). */
    std::size_t rowCount() const { return dataRows; }

  private:
    std::vector<std::string> headerCells;
    /** Rows; an empty vector marks a horizontal rule. */
    std::vector<std::vector<std::string>> rows;
    std::size_t dataRows = 0;
};

/** Print a section banner, e.g. "== Fig. 3 ... ==". */
void printBanner(std::ostream &os, const std::string &title);

} // namespace gemstone

#endif // GEMSTONE_UTIL_TABLE_HH
