/**
 * @file
 * Cooperative cancellation implementation.
 */

#include "util/cancellation.hh"

namespace gemstone {

namespace {

thread_local CoopScope *currentScope = nullptr;

/** Rate-limited poll hook state (see setCoopPollHook). */
struct PollHook
{
    std::function<void()> callback;
    std::chrono::steady_clock::duration interval{};
    std::chrono::steady_clock::time_point lastFire{};
    /** Checkpoints to skip before consulting the clock again. */
    int budget = 0;
    bool firing = false;
};

thread_local PollHook *currentHook = nullptr;

/** Clock checks are amortised over this many checkpoints. */
constexpr int kHookCheckStride = 2048;

void
pollHookTick()
{
    PollHook &hook = *currentHook;
    if (hook.firing || --hook.budget > 0)
        return;
    hook.budget = kHookCheckStride;
    auto now = std::chrono::steady_clock::now();
    if (now - hook.lastFire < hook.interval)
        return;
    hook.lastFire = now;
    hook.firing = true;
    hook.callback();
    hook.firing = false;
}

} // namespace

CoopScope::CoopScope(CancellationToken token, Deadline deadline,
                     const char *what)
    : cancelToken(std::move(token)), runDeadline(deadline),
      label(what), previous(currentScope)
{
    currentScope = this;
}

CoopScope::~CoopScope()
{
    currentScope = previous;
}

void
coopCheckpoint()
{
    if (currentHook != nullptr)
        pollHookTick();
    for (CoopScope *scope = currentScope; scope != nullptr;
         scope = scope->previous) {
        scope->cancelToken.throwIfCancelled(scope->label);
        scope->runDeadline.throwIfExpired(scope->label);
    }
}

bool
coopScopeActive()
{
    return currentScope != nullptr;
}

void
setCoopPollHook(std::function<void()> hook, double interval_seconds)
{
    clearCoopPollHook();
    auto *state = new PollHook();
    state->callback = std::move(hook);
    state->interval = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(interval_seconds));
    // Fire on the first checkpoint so a worker announces progress as
    // soon as it enters the run, not one interval in.
    state->lastFire = std::chrono::steady_clock::now() -
        state->interval;
    state->budget = 1;
    currentHook = state;
}

void
clearCoopPollHook()
{
    delete currentHook;
    currentHook = nullptr;
}

} // namespace gemstone
