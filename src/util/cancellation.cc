/**
 * @file
 * Cooperative cancellation implementation.
 */

#include "util/cancellation.hh"

namespace gemstone {

namespace {

thread_local CoopScope *currentScope = nullptr;

} // namespace

CoopScope::CoopScope(CancellationToken token, Deadline deadline,
                     const char *what)
    : cancelToken(std::move(token)), runDeadline(deadline),
      label(what), previous(currentScope)
{
    currentScope = this;
}

CoopScope::~CoopScope()
{
    currentScope = previous;
}

void
coopCheckpoint()
{
    for (CoopScope *scope = currentScope; scope != nullptr;
         scope = scope->previous) {
        scope->cancelToken.throwIfCancelled(scope->label);
        scope->runDeadline.throwIfExpired(scope->label);
    }
}

bool
coopScopeActive()
{
    return currentScope != nullptr;
}

} // namespace gemstone
