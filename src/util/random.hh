/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * A small, fast xoshiro256** generator is used everywhere instead of
 * std::mt19937 so that simulation results are bit-identical across
 * standard-library implementations. All stochastic behaviour in the
 * simulators (sensor noise, run-to-run jitter, workload data) flows
 * through this class, keyed by explicit seeds, so every experiment is
 * reproducible.
 */

#ifndef GEMSTONE_UTIL_RANDOM_HH
#define GEMSTONE_UTIL_RANDOM_HH

#include <cstdint>
#include <cmath>
#include <string>

namespace gemstone {

/**
 * xoshiro256** pseudo-random generator with convenience draws.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Construct from a string seed (hashed; stable across runs). */
    explicit Rng(const std::string &seed_string);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, bound) — bound must be non-zero. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Standard normal draw (Box-Muller, cached pair). */
    double gaussian();

    /** Normal draw with the given mean and standard deviation. */
    double gaussian(double mean, double sigma);

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /**
     * Fork a stream-independent child generator.
     * @param stream_tag distinguishes sibling children.
     */
    Rng fork(std::uint64_t stream_tag) const;

  private:
    std::uint64_t state[4];
    double cachedGaussian = 0.0;
    bool hasCachedGaussian = false;
};

/** splitmix64 step, exposed for seed derivation. */
std::uint64_t splitmix64(std::uint64_t &state);

/** FNV-1a hash of a string, for string-keyed seeds. */
std::uint64_t hashString(const std::string &text);

} // namespace gemstone

#endif // GEMSTONE_UTIL_RANDOM_HH
