/**
 * @file
 * Arena allocator, the per-thread arena, and the counting global
 * operator new / delete behind MallocTally.
 */

#include "util/arena.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace gemstone {

/**
 * Chunk header, carved from the front of each heap block. The
 * bumpable region is [data(), data() + capacity).
 */
struct Arena::Chunk
{
    Chunk *next = nullptr;
    std::size_t capacity = 0;
    std::size_t used = 0;

    std::byte *data() { return reinterpret_cast<std::byte *>(this + 1); }
};

Arena::Arena(std::size_t first_chunk_bytes)
    : nextChunkBytes(first_chunk_bytes < 1024 ? 1024
                                              : first_chunk_bytes)
{
}

Arena::~Arena()
{
    Chunk *chunk = firstChunk;
    while (chunk) {
        Chunk *next = chunk->next;
        std::free(chunk);
        chunk = next;
    }
}

void *
Arena::allocate(std::size_t bytes, std::size_t align)
{
    panic_if(align == 0 || (align & (align - 1)) != 0,
             "arena alignment must be a power of two, got ", align);
    if (head) {
        // Align the *absolute* address, not the chunk-relative
        // cursor: the data region starts right after the header,
        // whose size is no multiple of the larger alignments.
        std::uintptr_t base =
            reinterpret_cast<std::uintptr_t>(head->data());
        std::size_t cursor =
            ((base + head->used + align - 1) & ~(align - 1)) - base;
        if (cursor + bytes <= head->capacity) {
            void *out = head->data() + cursor;
            head->used = cursor + bytes;
            allocatedBytes += bytes;
            return out;
        }
    }
    return allocateSlow(bytes, align);
}

void *
Arena::allocateSlow(std::size_t bytes, std::size_t align)
{
    // Chain a fresh chunk sized for the request (geometric growth
    // keeps the chunk count logarithmic in the total footprint).
    // Padding by one alignment unit always leaves room to align the
    // absolute start address inside the chunk.
    std::size_t need = bytes + align;
    std::size_t capacity = nextChunkBytes;
    while (capacity < need)
        capacity *= 2;
    nextChunkBytes = capacity * 2;

    void *raw = std::calloc(1, sizeof(Chunk) + capacity);
    panic_if(!raw, "arena chunk allocation of ", capacity,
             " bytes failed");
    Chunk *chunk = new (raw) Chunk();
    chunk->capacity = capacity;

    // Chain order is oldest-first so reset() can walk it; the head
    // (bump target) is always the newest chunk. Older, now-full
    // chunks keep their contents — pointers into them stay valid.
    if (!firstChunk) {
        firstChunk = chunk;
    } else {
        Chunk *tail = firstChunk;
        while (tail->next)
            tail = tail->next;
        tail->next = chunk;
    }
    head = chunk;
    reservedBytes += capacity;
    ++chunks;

    std::uintptr_t base =
        reinterpret_cast<std::uintptr_t>(chunk->data());
    std::size_t cursor = ((base + align - 1) & ~(align - 1)) - base;
    void *out = chunk->data() + cursor;
    chunk->used = cursor + bytes;
    allocatedBytes += bytes;
    return out;
}

void
Arena::reset()
{
    for (Chunk *chunk = firstChunk; chunk; chunk = chunk->next) {
        std::memset(chunk->data(), 0, chunk->used);
        chunk->used = 0;
    }
    head = firstChunk;
    allocatedBytes = 0;
}

Arena &
threadArena()
{
    thread_local Arena arena(256 * 1024);
    return arena;
}

// ---------------------------------------------------------------------
// MallocTally: counting global operator new / delete.
//
// Sanitizer builds (GEMSTONE_SANITIZE_BUILD, set by the build system
// for every -fsanitize flavour) must not replace the operators —
// ASan/TSan interpose their own — so the whole replacement compiles
// out and mallocTallyActive()'s live probe reports false.
// ---------------------------------------------------------------------

namespace detail {

struct TallyCounters
{
    std::uint64_t allocs = 0;
    std::uint64_t bytes = 0;
    std::uint64_t frees = 0;
};

/**
 * Plain thread_local (not function-local static) so the hot path is
 * a TLS load + add with no guard-variable check.
 */
thread_local TallyCounters tallyCounters;

} // namespace detail

MallocTallySnapshot
mallocTally()
{
    const detail::TallyCounters &c = detail::tallyCounters;
    return {c.allocs, c.bytes, c.frees};
}

bool
mallocTallyActive()
{
    std::uint64_t before = detail::tallyCounters.allocs;
    delete[] new char[8];
    return detail::tallyCounters.allocs != before;
}

} // namespace gemstone

#ifndef GEMSTONE_SANITIZE_BUILD

namespace {

inline void *
tallyAlloc(std::size_t size)
{
    gemstone::detail::TallyCounters &c =
        gemstone::detail::tallyCounters;
    ++c.allocs;
    c.bytes += size;
    return std::malloc(size ? size : 1);
}

inline void *
tallyAllocAligned(std::size_t size, std::size_t align)
{
    gemstone::detail::TallyCounters &c =
        gemstone::detail::tallyCounters;
    ++c.allocs;
    c.bytes += size;
    // aligned_alloc requires the size to be a multiple of the
    // alignment; round up (callers never see the slack).
    std::size_t rounded = (size + align - 1) & ~(align - 1);
    return std::aligned_alloc(align, rounded ? rounded : align);
}

inline void
tallyFree(void *p)
{
    if (p) {
        ++gemstone::detail::tallyCounters.frees;
        std::free(p);
    }
}

} // namespace

void *
operator new(std::size_t size)
{
    void *p = tallyAlloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return tallyAlloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return tallyAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    void *p = tallyAllocAligned(size,
                                static_cast<std::size_t>(align));
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return operator new(size, align);
}

void operator delete(void *p) noexcept { tallyFree(p); }
void operator delete[](void *p) noexcept { tallyFree(p); }
void operator delete(void *p, std::size_t) noexcept { tallyFree(p); }
void operator delete[](void *p, std::size_t) noexcept { tallyFree(p); }
void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    tallyFree(p);
}
void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    tallyFree(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    tallyFree(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    tallyFree(p);
}
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    tallyFree(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    tallyFree(p);
}

#endif // !GEMSTONE_SANITIZE_BUILD
