/**
 * @file
 * Small string helpers shared across the project.
 */

#ifndef GEMSTONE_UTIL_STRUTIL_HH
#define GEMSTONE_UTIL_STRUTIL_HH

#include <string>
#include <vector>

namespace gemstone {

/** Split text on a delimiter character; empty fields are kept. */
std::vector<std::string> split(const std::string &text, char delim);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(const std::string &text);

/** True if text starts with the given prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

/** True if text ends with the given suffix. */
bool endsWith(const std::string &text, const std::string &suffix);

/** Join items with a separator. */
std::string join(const std::vector<std::string> &items,
                 const std::string &sep);

/** Lower-case an ASCII string. */
std::string toLower(const std::string &text);

/** printf-style number formatting with fixed decimals. */
std::string formatDouble(double value, int decimals);

/**
 * Round-trip-exact decimal form (17 significant digits), so a value
 * written to a checkpoint parses back bit-identical. Used everywhere
 * a persisted double must survive a save/load cycle unchanged.
 */
std::string formatExactDouble(double value);

/**
 * Human-readable multiplier such as "9.9x" or "0.06x"; small values
 * keep more significant digits so ratios like 0.06x stay readable.
 */
std::string formatRatio(double value);

/** Format a fraction as a percentage string, e.g. "-51.0%". */
std::string formatPercent(double fraction, int decimals = 1);

} // namespace gemstone

#endif // GEMSTONE_UTIL_STRUTIL_HH
