/**
 * @file
 * Signal-driven cancellation implementation.
 */

#include "util/signals.hh"

#include <atomic>
#include <csignal>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define GEMSTONE_HAVE_SIGACTION 1
#endif

namespace gemstone {

namespace {

/** Keeps the token's flag alive for the handler. */
CancellationToken installedToken;
std::atomic<std::atomic<bool> *> cancelFlag{nullptr};
std::atomic<int> signalCount{0};
std::atomic<int> forceExitCode{kExitCancelled};

extern "C" void
cancellationSignalHandler(int)
{
    int seen = signalCount.fetch_add(1, std::memory_order_relaxed);
    std::atomic<bool> *flag =
        cancelFlag.load(std::memory_order_acquire);
    if (seen == 0 && flag != nullptr) {
        flag->store(true, std::memory_order_release);
        return;
    }
    // Second signal: the operator wants out *now*. _exit is
    // async-signal-safe; no unwinding, no flushing.
#ifdef GEMSTONE_HAVE_SIGACTION
    _exit(forceExitCode.load(std::memory_order_relaxed));
#else
    std::_Exit(forceExitCode.load(std::memory_order_relaxed));
#endif
}

} // namespace

void
installSignalCancellation(CancellationToken token, int force_exit_code)
{
    installedToken = token;
    forceExitCode.store(force_exit_code, std::memory_order_relaxed);
    signalCount.store(0, std::memory_order_relaxed);
    cancelFlag.store(installedToken.rawFlag(),
                     std::memory_order_release);
#ifdef GEMSTONE_HAVE_SIGACTION
    struct sigaction action = {};
    action.sa_handler = cancellationSignalHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART: interrupt blocking waits
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
#else
    std::signal(SIGINT, cancellationSignalHandler);
    std::signal(SIGTERM, cancellationSignalHandler);
#endif
}

int
cancellationSignalCount()
{
    return signalCount.load(std::memory_order_relaxed);
}

} // namespace gemstone
