/**
 * @file
 * xoshiro256** implementation.
 */

#include "util/random.hh"

#include "util/logging.hh"

namespace gemstone {

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
hashString(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state)
        word = splitmix64(sm);
}

Rng::Rng(const std::string &seed_string) : Rng(hashString(seed_string)) {}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

double
Rng::uniform()
{
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    panic_if(bound == 0, "uniformInt bound must be non-zero");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t draw = next();
        if (draw >= threshold)
            return draw % bound;
    }
}

double
Rng::gaussian()
{
    if (hasCachedGaussian) {
        hasCachedGaussian = false;
        return cachedGaussian;
    }
    // Box-Muller transform; avoid log(0) by clamping u1.
    double u1 = uniform();
    if (u1 < 1e-300)
        u1 = 1e-300;
    double u2 = uniform();
    double radius = std::sqrt(-2.0 * std::log(u1));
    double angle = 2.0 * M_PI * u2;
    cachedGaussian = radius * std::sin(angle);
    hasCachedGaussian = true;
    return radius * std::cos(angle);
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::fork(std::uint64_t stream_tag) const
{
    // Derive the child seed from our full state plus the tag so sibling
    // forks are independent of each other and of the parent stream.
    std::uint64_t sm = state[0] ^ rotl(state[1], 13) ^ rotl(state[2], 29)
        ^ rotl(state[3], 47) ^ (stream_tag * 0xd1342543de82ef95ULL);
    return Rng(splitmix64(sm));
}

} // namespace gemstone
