/**
 * @file
 * Signal-driven cancellation for the command-line flows.
 *
 * installSignalCancellation() routes SIGINT/SIGTERM into a
 * CancellationToken: the first signal requests cooperative
 * cancellation (the campaign drains, checkpoints and returns a
 * partial result), a second signal force-exits immediately for the
 * operator who has given up waiting. The handler itself only touches
 * an atomic flag and a counter, so it is async-signal-safe.
 */

#ifndef GEMSTONE_UTIL_SIGNALS_HH
#define GEMSTONE_UTIL_SIGNALS_HH

#include "util/cancellation.hh"

namespace gemstone {

/** Conventional exit code for an interrupted run (128 + SIGINT). */
constexpr int kExitCancelled = 130;

/** Conventional exit code for a deadline-exceeded run (timeout). */
constexpr int kExitDeadline = 124;

/**
 * Install SIGINT/SIGTERM handlers that cancel @p token. The token is
 * copied into static storage (the handler needs its flag to outlive
 * every caller frame); installing again replaces the previous token.
 * The second signal calls _exit(@p force_exit_code) without
 * unwinding — state already checkpointed is safe, everything else is
 * abandoned.
 */
void installSignalCancellation(CancellationToken token,
                               int force_exit_code = kExitCancelled);

/** Signals observed since the last install (tests/diagnostics). */
int cancellationSignalCount();

} // namespace gemstone

#endif // GEMSTONE_UTIL_SIGNALS_HH
