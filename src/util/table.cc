/**
 * @file
 * TextTable implementation.
 */

#include "util/table.hh"

#include <sstream>

#include "util/logging.hh"

namespace gemstone {

TextTable::TextTable(std::vector<std::string> headers)
    : headerCells(std::move(headers))
{
    panic_if(headerCells.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    panic_if(cells.size() != headerCells.size(),
             "row width ", cells.size(), " != header width ",
             headerCells.size());
    rows.push_back(std::move(cells));
    ++dataRows;
}

void
TextTable::addRule()
{
    rows.emplace_back();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headerCells.size());
    for (std::size_t c = 0; c < headerCells.size(); ++c)
        widths[c] = headerCells[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "| " : " | ");
            os << cells[c];
            os << std::string(widths[c] - cells[c].size(), ' ');
        }
        os << " |\n";
    };

    auto print_rule = [&]() {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << (c == 0 ? "|-" : "-|-");
            os << std::string(widths[c], '-');
        }
        os << "-|\n";
    };

    print_rule();
    print_row(headerCells);
    print_rule();
    for (const auto &row : rows) {
        if (row.empty())
            print_rule();
        else
            print_row(row);
    }
    print_rule();
}

std::string
TextTable::toString() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << "\n== " << title << " ==\n\n";
}

} // namespace gemstone
