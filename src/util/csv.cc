/**
 * @file
 * CsvWriter implementation.
 */

#include "util/csv.hh"

#include <fstream>

#include "util/logging.hh"
#include "util/strutil.hh"

namespace gemstone {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : headerCells(std::move(header))
{
}

void
CsvWriter::addRow(const std::vector<std::string> &cells)
{
    panic_if(cells.size() != headerCells.size(),
             "csv row width mismatch: ", cells.size(), " vs ",
             headerCells.size());
    rows.push_back(cells);
}

void
CsvWriter::addNumericRow(const std::string &key,
                         const std::vector<double> &values)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(key);
    for (double v : values)
        cells.push_back(formatDouble(v, 9));
    addRow(cells);
}

std::string
CsvWriter::quote(const std::string &field)
{
    bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out += "\"";
    return out;
}

void
CsvWriter::write(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i > 0)
                os << ',';
            os << quote(cells[i]);
        }
        os << '\n';
    };
    emit(headerCells);
    for (const auto &row : rows)
        emit(row);
}

bool
CsvWriter::writeFile(const std::string &path) const
{
    std::ofstream file(path);
    if (!file)
        return false;
    write(file);
    return static_cast<bool>(file);
}

} // namespace gemstone
