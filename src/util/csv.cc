/**
 * @file
 * CsvWriter and CsvReader implementations.
 */

#include "util/csv.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/atomicfile.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace gemstone {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : headerCells(std::move(header))
{
}

void
CsvWriter::addRow(const std::vector<std::string> &cells)
{
    panic_if(cells.size() != headerCells.size(),
             "csv row width mismatch: ", cells.size(), " vs ",
             headerCells.size());
    rows.push_back(cells);
}

void
CsvWriter::addNumericRow(const std::string &key,
                         const std::vector<double> &values)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(key);
    for (double v : values)
        cells.push_back(formatDouble(v, 9));
    addRow(cells);
}

std::string
CsvWriter::quote(const std::string &field)
{
    bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out += "\"";
    return out;
}

void
CsvWriter::write(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i > 0)
                os << ',';
            os << quote(cells[i]);
        }
        os << '\n';
    };
    emit(headerCells);
    for (const auto &row : rows)
        emit(row);
}

bool
CsvWriter::writeFile(const std::string &path) const
{
    std::ofstream file(path);
    if (!file)
        return false;
    write(file);
    return static_cast<bool>(file);
}

Status
CsvWriter::writeFileAtomic(const std::string &path,
                           bool with_marker) const
{
    std::ostringstream buffer;
    write(buffer);
    return atomicWriteFile(path, buffer.str(),
                           with_marker ? kCsvIntegrityMarker
                                       : std::string());
}

namespace {

/**
 * Scan one RFC-4180 record starting at the current stream position.
 * Returns false at end of input. Quoted fields may span lines, so the
 * record may consume several physical lines; @p line is advanced
 * accordingly. @p at_eof is set when the record ended at end of input
 * rather than at a newline — i.e. this is the document's final,
 * possibly torn, record.
 */
bool
scanRecord(std::istream &is, std::size_t &line,
           std::vector<std::string> &cells,
           std::vector<CsvError> &errors, bool &at_eof)
{
    cells.clear();
    at_eof = false;
    if (is.peek() == std::char_traits<char>::eof())
        return false;

    std::size_t start_line = line;
    std::string field;
    bool quoted = false;       // inside a quoted field
    bool was_quoted = false;   // field began with a quote
    bool clean = true;

    auto fail = [&](const std::string &message) {
        if (clean)
            errors.push_back({start_line, message});
        clean = false;
    };

    int ch;
    while ((ch = is.get()) != std::char_traits<char>::eof()) {
        char c = static_cast<char>(ch);
        if (quoted) {
            if (c == '"') {
                if (is.peek() == '"') {
                    field.push_back('"');
                    is.get();
                } else {
                    quoted = false;
                }
            } else {
                if (c == '\n')
                    ++line;
                field.push_back(c);
            }
            continue;
        }
        if (c == '"') {
            if (field.empty() && !was_quoted) {
                quoted = true;
                was_quoted = true;
            } else {
                fail(was_quoted
                         ? "text after closing quote"
                         : "stray quote inside unquoted field");
                field.push_back(c);
            }
        } else if (c == ',') {
            cells.push_back(std::move(field));
            field.clear();
            was_quoted = false;
        } else if (c == '\r' && is.peek() == '\n') {
            // CRLF: fold into the LF case on the next iteration.
        } else if (c == '\n') {
            ++line;
            cells.push_back(std::move(field));
            return clean;
        } else {
            if (was_quoted)
                fail("text after closing quote");
            field.push_back(c);
        }
    }
    if (quoted)
        fail("unterminated quoted field");
    // Final record without a trailing newline.
    at_eof = true;
    cells.push_back(std::move(field));
    ++line;
    return clean;
}

} // namespace

CsvReader
CsvReader::parse(std::istream &is)
{
    CsvReader reader;
    std::size_t line = 1;
    std::vector<std::string> cells;
    bool at_eof = false;

    if (!scanRecord(is, line, cells, reader.parseErrors, at_eof) &&
        cells.empty()) {
        reader.parseErrors.push_back({1, "empty document: no header"});
        return reader;
    }
    reader.headerCells = cells;

    while (true) {
        std::size_t record_line = line;
        std::size_t errors_before = reader.parseErrors.size();
        if (!scanRecord(is, line, cells, reader.parseErrors, at_eof) &&
            cells.empty()) {
            break;
        }
        if (cells.size() == 1 && cells[0].empty())
            continue;  // blank line (e.g. trailing newline)
        if (!cells[0].empty() && cells[0][0] == '#') {
            // Comment record; an exact integrity marker proves the
            // file was written to completion.
            if (cells.size() == 1 &&
                trim(cells[0]) == kCsvIntegrityMarker) {
                reader.sawMarker = true;
            }
            continue;
        }
        bool structural = reader.parseErrors.size() != errors_before;
        // A truncated row can only lose fields, never gain them.
        bool short_row = cells.size() < reader.headerCells.size();
        if (!structural && cells.size() != reader.headerCells.size()) {
            reader.parseErrors.push_back(
                {record_line,
                 detail::concatToString(
                     "row has ", cells.size(), " fields, header has ",
                     reader.headerCells.size())});
        }
        if (structural || cells.size() != reader.headerCells.size()) {
            if (at_eof && (structural || short_row)) {
                // Final record cut off mid-row — the signature of a
                // torn append. Tolerate it: reclassify its
                // diagnostics as the truncated tail so earlier good
                // rows survive.
                reader.tailErrors.assign(
                    reader.parseErrors.begin() + errors_before,
                    reader.parseErrors.end());
                reader.parseErrors.resize(errors_before);
            }
            continue;
        }
        reader.rows.push_back(cells);
        reader.rowLines.push_back(record_line);
    }
    return reader;
}

CsvReader
CsvReader::parseFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file) {
        CsvReader reader;
        reader.parseErrors.push_back({0, "cannot open " + path});
        return reader;
    }
    return parse(file);
}

std::vector<std::string>
CsvReader::errorStrings() const
{
    std::vector<std::string> out;
    out.reserve(parseErrors.size());
    for (const CsvError &e : parseErrors)
        out.push_back(detail::concatToString("line ", e.line, ": ",
                                             e.message));
    return out;
}

const std::vector<std::string> &
CsvReader::row(std::size_t index) const
{
    panic_if(index >= rows.size(), "csv row ", index,
             " out of range (", rows.size(), " rows)");
    return rows[index];
}

std::size_t
CsvReader::columnIndex(const std::string &column) const
{
    for (std::size_t i = 0; i < headerCells.size(); ++i) {
        if (headerCells[i] == column)
            return i;
    }
    return npos;
}

const std::string &
CsvReader::cell(std::size_t row_index, const std::string &column) const
{
    std::size_t col = columnIndex(column);
    panic_if(col == npos, "csv column '", column, "' not present");
    return row(row_index)[col];
}

bool
CsvReader::requireColumns(const std::vector<std::string> &columns)
{
    bool all_present = true;
    for (const std::string &column : columns) {
        if (columnIndex(column) == npos) {
            parseErrors.push_back(
                {1, "missing required column '" + column + "'"});
            all_present = false;
        }
    }
    return all_present;
}

double
CsvReader::numericCell(std::size_t row_index,
                       const std::string &column, double fallback)
{
    const std::string &text = cell(row_index, column);
    const std::string trimmed = trim(text);
    if (!trimmed.empty()) {
        std::size_t consumed = 0;
        double value = fallback;
        try {
            value = std::stod(trimmed, &consumed);
        } catch (const std::exception &) {
            consumed = 0;
        }
        if (consumed == trimmed.size() && std::isfinite(value))
            return value;
    }
    parseErrors.push_back(
        {rowLines[row_index],
         detail::concatToString("column '", column,
                                "': not a finite number: '", text,
                                "'")});
    return fallback;
}

} // namespace gemstone
