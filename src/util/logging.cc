/**
 * @file
 * Implementation of the logging helpers.
 */

#include "util/logging.hh"

#include <atomic>
#include <map>
#include <mutex>
#include <vector>

namespace gemstone {

namespace {

std::atomic<std::size_t> warnCounter{0};
std::atomic<bool> quietMode{false};

/**
 * The calling thread's stack of active log-context prefixes. A
 * function-local thread_local keeps construction lazy and destruction
 * ordered per thread; no lock is ever needed because no other thread
 * can reach it.
 */
std::vector<std::string> &
logContextStack()
{
    thread_local std::vector<std::string> stack;
    return stack;
}

std::function<void(const std::string &)> &
fatalHandler()
{
    static std::function<void(const std::string &)> handler;
    return handler;
}

std::mutex limitedWarnMutex;
std::map<std::string, std::size_t> &
limitedWarnCounts()
{
    static std::map<std::string, std::size_t> counts;
    return counts;
}

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Fatal:
        return "fatal";
      case LogLevel::Panic:
        return "panic";
    }
    return "?";
}

} // namespace

namespace detail {

void
emitLog(LogLevel level, const std::string &message, const char *file,
        int line)
{
    if (level == LogLevel::Warn)
        warnCounter.fetch_add(1, std::memory_order_relaxed);

    bool is_error = level == LogLevel::Fatal || level == LogLevel::Panic;
    if (quietMode.load(std::memory_order_relaxed) && !is_error)
        return;

    std::cerr << levelName(level) << ": " << currentLogPrefix()
              << message;
    if (is_error)
        std::cerr << " @ " << file << ":" << line;
    std::cerr << "\n";
}

void
emitLimitedWarn(const std::string &key, std::size_t limit,
                const std::string &message, const char *file, int line)
{
    std::size_t seen;
    {
        std::lock_guard<std::mutex> lock(limitedWarnMutex);
        seen = ++limitedWarnCounts()[key];
    }
    if (seen > limit)
        return;
    if (seen == limit && limit > 0) {
        emitLog(LogLevel::Warn,
                message + " (suppressing further '" + key +
                    "' warnings)",
                file, line);
    } else {
        emitLog(LogLevel::Warn, message, file, line);
    }
}

} // namespace detail

LogContext::LogContext(std::string prefix)
{
    logContextStack().push_back(std::move(prefix));
}

LogContext::~LogContext()
{
    logContextStack().pop_back();
}

std::string
currentLogPrefix()
{
    const std::vector<std::string> &stack = logContextStack();
    if (stack.empty())
        return "";
    std::string prefix;
    for (const std::string &item : stack) {
        prefix += item;
        prefix += ' ';
    }
    return prefix;
}

void
panicImpl(const std::string &message, const char *file, int line)
{
    detail::emitLog(LogLevel::Panic, message, file, line);
    std::abort();
}

void
fatalImpl(const std::string &message, const char *file, int line)
{
    detail::emitLog(LogLevel::Fatal, message, file, line);
    if (fatalHandler())
        fatalHandler()(message);
    // Default, or the handler declined to throw.
    std::exit(1);
}

void
setFatalHandler(std::function<void(const std::string &)> handler)
{
    fatalHandler() = std::move(handler);
}

void
setFatalThrows(bool throws)
{
    if (throws) {
        setFatalHandler([](const std::string &message) {
            throw FatalError(message);
        });
    } else {
        setFatalHandler(nullptr);
    }
}

std::size_t
warnCount()
{
    return warnCounter.load(std::memory_order_relaxed);
}

std::size_t
limitedWarnCount(const std::string &key)
{
    std::lock_guard<std::mutex> lock(limitedWarnMutex);
    auto it = limitedWarnCounts().find(key);
    return it == limitedWarnCounts().end() ? 0 : it->second;
}

void
resetLimitedWarns()
{
    std::lock_guard<std::mutex> lock(limitedWarnMutex);
    limitedWarnCounts().clear();
}

void
setQuiet(bool quiet)
{
    quietMode.store(quiet, std::memory_order_relaxed);
}

} // namespace gemstone
