/**
 * @file
 * Unified error taxonomy for the execution stack.
 *
 * The exec, campaign and report layers historically mixed three
 * failure styles: bool returns (CsvWriter::writeFile), exceptions
 * (hwsim::RunError, TaskGraph rethrow) and warn-and-continue. Status
 * names every failure with one of a small set of codes so a campaign
 * summary can attribute each excluded point, a tool can map failures
 * to exit codes, and a checkpoint can record *why* a point degraded.
 *
 * Status is for expected, reportable failures at module boundaries;
 * internal invariant violations stay on panic(). Code that must
 * unwind through many frames (cancellation, deadlines inside the
 * simulation loops) throws StatusError subclasses carrying the same
 * codes — see util/cancellation.hh — so both styles agree on the
 * taxonomy.
 */

#ifndef GEMSTONE_UTIL_STATUS_HH
#define GEMSTONE_UTIL_STATUS_HH

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/logging.hh"

namespace gemstone {

/** Why an operation did not produce a clean result. */
enum class StatusCode
{
    Ok,                //!< no failure
    Cancelled,         //!< stopped by a cancellation request
    DeadlineExceeded,  //!< ran past its deadline
    IoError,           //!< filesystem read/write/rename failure
    CorruptData,       //!< parse/validation failure of persisted data
    FaultInjected,     //!< an injected (or real) run fault
    Internal,          //!< unexpected library failure
};

/** Stable machine-readable tag, e.g. "deadline_exceeded". */
std::string statusCodeTag(StatusCode code);

/** Tag -> code; false when the tag is unknown. */
bool parseStatusCode(const std::string &tag, StatusCode &code);

/** A StatusCode with a human-readable explanation. */
class Status
{
  public:
    /** Default: success. */
    Status() = default;

    Status(StatusCode code, std::string message)
        : statusCode(code), text(std::move(message))
    {
    }

    static Status okStatus() { return Status(); }

    static Status
    error(StatusCode code, std::string message)
    {
        panic_if(code == StatusCode::Ok,
                 "Status::error() needs a non-Ok code");
        return Status(code, std::move(message));
    }

    bool ok() const { return statusCode == StatusCode::Ok; }
    StatusCode code() const { return statusCode; }
    const std::string &message() const { return text; }

    /** "io_error: cannot rename ..." (or "ok"). */
    std::string toString() const;

  private:
    StatusCode statusCode = StatusCode::Ok;
    std::string text;
};

/**
 * Either a value or a non-Ok Status. The throwing layers use
 * StatusError instead; Result is for boundaries that must not throw
 * (persistence, recovery) yet still attribute their failures.
 */
template <typename T>
class Result
{
  public:
    Result(T value) : resultValue(std::move(value)) {}

    Result(Status error_status) : resultStatus(std::move(error_status))
    {
        panic_if(resultStatus.ok(),
                 "Result error constructor needs a non-Ok status");
    }

    bool ok() const { return resultStatus.ok(); }
    const Status &status() const { return resultStatus; }

    const T &
    value() const
    {
        panic_if(!ok(), "Result::value() on error: ",
                 resultStatus.toString());
        return *resultValue;
    }

    T &&
    takeValue()
    {
        panic_if(!ok(), "Result::takeValue() on error: ",
                 resultStatus.toString());
        return std::move(*resultValue);
    }

  private:
    Status resultStatus;
    std::optional<T> resultValue;
};

/** Exception carrying a StatusCode through unwinding layers. */
class StatusError : public std::runtime_error
{
  public:
    StatusError(StatusCode code, const std::string &message)
        : std::runtime_error(statusCodeTag(code) + ": " + message),
          statusCode(code)
    {
    }

    StatusCode code() const { return statusCode; }

  private:
    StatusCode statusCode;
};

} // namespace gemstone

#endif // GEMSTONE_UTIL_STATUS_HH
