/**
 * @file
 * CSV emission for experiment artefacts.
 *
 * GemStone writes every collated dataset to CSV so results can be
 * inspected or post-processed outside the tool, mirroring the
 * artefact layout of the original release.
 */

#ifndef GEMSTONE_UTIL_CSV_HH
#define GEMSTONE_UTIL_CSV_HH

#include <ostream>
#include <string>
#include <vector>

namespace gemstone {

/**
 * Row-oriented CSV writer with RFC-4180 quoting.
 */
class CsvWriter
{
  public:
    /** Construct with a header row. */
    explicit CsvWriter(std::vector<std::string> header);

    /** Append a row of string cells. */
    void addRow(const std::vector<std::string> &cells);

    /** Append a row of numeric cells. */
    void addNumericRow(const std::string &key,
                       const std::vector<double> &values);

    /** Serialise the whole document. */
    void write(std::ostream &os) const;

    /** Write to a file path; returns false on I/O failure. */
    bool writeFile(const std::string &path) const;

    /** Quote a single CSV field if needed. */
    static std::string quote(const std::string &field);

  private:
    std::vector<std::string> headerCells;
    std::vector<std::vector<std::string>> rows;
};

} // namespace gemstone

#endif // GEMSTONE_UTIL_CSV_HH
