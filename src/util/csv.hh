/**
 * @file
 * CSV emission and validated ingestion for experiment artefacts.
 *
 * GemStone writes every collated dataset to CSV so results can be
 * inspected or post-processed outside the tool, mirroring the
 * artefact layout of the original release. CsvReader is the ingest
 * side: campaign checkpoints and externally produced datasets are
 * read back with strict RFC-4180 parsing, arity checking and
 * row-level error reporting, so a truncated or hand-edited file is
 * diagnosed instead of silently corrupting a resumed campaign.
 */

#ifndef GEMSTONE_UTIL_CSV_HH
#define GEMSTONE_UTIL_CSV_HH

#include <cstddef>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/status.hh"

namespace gemstone {

/**
 * Trailing comment line appended by atomic writers to mark a file as
 * written to completion. Readers that see it know the file was not
 * torn mid-write; comment lines (leading '#') are never parsed as
 * data rows.
 */
inline constexpr const char *kCsvIntegrityMarker =
    "#gemstone:complete";

/**
 * Row-oriented CSV writer with RFC-4180 quoting.
 */
class CsvWriter
{
  public:
    /** Construct with a header row. */
    explicit CsvWriter(std::vector<std::string> header);

    /** Append a row of string cells. */
    void addRow(const std::vector<std::string> &cells);

    /** Append a row of numeric cells. */
    void addNumericRow(const std::string &key,
                       const std::vector<double> &values);

    /** Serialise the whole document. */
    void write(std::ostream &os) const;

    /** Write to a file path; returns false on I/O failure. */
    bool writeFile(const std::string &path) const;

    /**
     * Crash-safe write: serialise to a temp file, fsync, rename over
     * @p path, appending the integrity marker as the final line when
     * @p with_marker is set. Either the previous file or the complete
     * new one survives a crash — never a torn mixture.
     */
    Status writeFileAtomic(const std::string &path,
                           bool with_marker = true) const;

    /** Quote a single CSV field if needed. */
    static std::string quote(const std::string &field);

  private:
    std::vector<std::string> headerCells;
    std::vector<std::vector<std::string>> rows;
};

/** One parse or validation problem, anchored to a 1-based line. */
struct CsvError
{
    std::size_t line = 0;
    std::string message;
};

/**
 * Strict RFC-4180 CSV reader.
 *
 * Quoted fields (with "" escapes and embedded separators/newlines)
 * and CRLF line endings are handled; structural violations — a stray
 * quote inside an unquoted field, text after a closing quote, an
 * unterminated quoted field, or a row whose arity differs from the
 * header — are recorded as CsvError entries and the offending row is
 * dropped. The surviving rows are always rectangular.
 */
class CsvReader
{
  public:
    /** Parse a whole document; the first record is the header. */
    static CsvReader parse(std::istream &is);

    /** Parse a file; a missing/unreadable file is a document error. */
    static CsvReader parseFile(const std::string &path);

    /**
     * True when the document parsed without any error. A truncated
     * final record is tolerated — reported via hasTruncatedTail(),
     * not counted here — so one torn append does not condemn every
     * good row before it.
     */
    bool ok() const { return parseErrors.empty(); }

    /** All accumulated parse and validation errors. */
    const std::vector<CsvError> &errors() const { return parseErrors; }

    /**
     * The document's final record was cut off mid-row (no trailing
     * newline and structurally broken or under header arity) — the
     * signature of a crash during an append or a truncation at an
     * arbitrary byte offset. The partial record is dropped; rows
     * before it are kept.
     */
    bool hasTruncatedTail() const { return !tailErrors.empty(); }

    /** Diagnostics for the dropped tail record, when present. */
    const std::vector<CsvError> &truncatedTail() const
    {
        return tailErrors;
    }

    /**
     * The document ended with the integrity marker comment — it was
     * written to completion by an atomic writer, not torn mid-write.
     */
    bool sawIntegrityMarker() const { return sawMarker; }

    /** One "line N: message" string per error (for diagnostics). */
    std::vector<std::string> errorStrings() const;

    const std::vector<std::string> &header() const
    {
        return headerCells;
    }

    std::size_t rowCount() const { return rows.size(); }

    /** Cells of one surviving row. */
    const std::vector<std::string> &row(std::size_t index) const;

    /** Cell by row index and column name; panics on bad indices. */
    const std::string &cell(std::size_t row_index,
                            const std::string &column) const;

    /** Header position of a column; npos when absent. */
    std::size_t columnIndex(const std::string &column) const;

    /**
     * Require the given columns to be present (in any order); missing
     * ones are recorded as errors. Returns true when all are present.
     */
    bool requireColumns(const std::vector<std::string> &columns);

    /**
     * Parse a cell as a finite double. A malformed or non-finite
     * value records a row-level error and returns @p fallback.
     */
    double numericCell(std::size_t row_index, const std::string &column,
                       double fallback = 0.0);

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  private:
    std::vector<std::string> headerCells;
    std::vector<std::vector<std::string>> rows;
    /** Source line each surviving row started on (for errors). */
    std::vector<std::size_t> rowLines;
    std::vector<CsvError> parseErrors;
    /** Diagnostics for a tolerated truncated final record. */
    std::vector<CsvError> tailErrors;
    bool sawMarker = false;
};

} // namespace gemstone

#endif // GEMSTONE_UTIL_CSV_HH
