/**
 * @file
 * Minimal dense linear algebra for the statistics toolkit.
 *
 * Only the pieces needed by ordinary least squares and the clustering
 * code are implemented: a row-major dense matrix, matrix products,
 * Cholesky factorisation of SPD matrices, SPD inversion, and a
 * Householder QR least-squares solver.
 */

#ifndef GEMSTONE_LINALG_MATRIX_HH
#define GEMSTONE_LINALG_MATRIX_HH

#include <cstddef>
#include <vector>

namespace gemstone::linalg {

/**
 * Row-major dense matrix of doubles.
 */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** Zero-initialised rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Build from nested initialiser data (rows of equal width). */
    static Matrix fromRows(
        const std::vector<std::vector<double>> &rows);

    /** Identity matrix of the given order. */
    static Matrix identity(std::size_t order);

    std::size_t rows() const { return numRows; }
    std::size_t cols() const { return numCols; }

    /** Element access. */
    double &at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    double &operator()(std::size_t r, std::size_t c) { return at(r, c); }
    double operator()(std::size_t r, std::size_t c) const
    {
        return at(r, c);
    }

    /** Transposed copy. */
    Matrix transposed() const;

    /** Matrix product this * other. */
    Matrix multiply(const Matrix &other) const;

    /** Matrix-vector product. */
    std::vector<double> multiply(const std::vector<double> &vec) const;

    /** this^T * this (Gram matrix), computed without forming T. */
    Matrix gram() const;

    /** this^T * vec. */
    std::vector<double> transposeMultiply(
        const std::vector<double> &vec) const;

    /** Extract one column as a vector. */
    std::vector<double> column(std::size_t c) const;

    /** Overwrite one column from a vector. */
    void setColumn(std::size_t c, const std::vector<double> &values);

  private:
    std::size_t numRows = 0;
    std::size_t numCols = 0;
    std::vector<double> data;
};

/**
 * Cholesky factor L of an SPD matrix (A = L L^T).
 * @return false if the matrix is not positive definite.
 */
bool choleskyFactor(const Matrix &a, Matrix &l);

/** Solve A x = b via a precomputed Cholesky factor L. */
std::vector<double> choleskySolve(const Matrix &l,
                                  const std::vector<double> &b);

/**
 * Invert an SPD matrix via Cholesky.
 * @return false if not positive definite.
 */
bool invertSpd(const Matrix &a, Matrix &inverse);

/**
 * Least-squares solve min ||X beta - y|| via Householder QR.
 *
 * @param x design matrix (n x p, n >= p)
 * @param y response (length n)
 * @param beta output coefficients (length p)
 * @return false if X is numerically rank deficient.
 */
bool leastSquaresQr(const Matrix &x, const std::vector<double> &y,
                    std::vector<double> &beta);

/** Dot product. */
double dot(const std::vector<double> &a, const std::vector<double> &b);

} // namespace gemstone::linalg

#endif // GEMSTONE_LINALG_MATRIX_HH
