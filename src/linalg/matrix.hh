/**
 * @file
 * Minimal dense linear algebra for the statistics toolkit.
 *
 * Only the pieces needed by ordinary least squares and the clustering
 * code are implemented: a row-major dense matrix, matrix products,
 * Cholesky factorisation of SPD matrices, SPD inversion, and a
 * Householder QR least-squares solver.
 *
 * Access discipline: at() is always bounds-checked (it panics on a
 * bad index in every build type); data()/row() are the unchecked
 * accessors the blocked kernels run on, assert-checked in Debug
 * builds only (they compile to plain pointer arithmetic under
 * NDEBUG). The hot kernels (multiply, gram, QR, Cholesky) are
 * cache-tiled over row()/data() but preserve the exact floating-
 * point accumulation order of the historical element-wise loops, so
 * their results are bit-identical to the reference oracles
 * (multiplyReference / gramReference) kept for cross-validation.
 */

#ifndef GEMSTONE_LINALG_MATRIX_HH
#define GEMSTONE_LINALG_MATRIX_HH

#include <cassert>
#include <cstddef>
#include <vector>

namespace gemstone::linalg {

/**
 * Row-major dense matrix of doubles.
 */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** Zero-initialised rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Build from nested initialiser data (rows of equal width). */
    static Matrix fromRows(
        const std::vector<std::vector<double>> &rows);

    /** Identity matrix of the given order. */
    static Matrix identity(std::size_t order);

    std::size_t rows() const { return numRows; }
    std::size_t cols() const { return numCols; }

    /** Element access, bounds-checked in every build type. */
    double &at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    double &operator()(std::size_t r, std::size_t c) { return at(r, c); }
    double operator()(std::size_t r, std::size_t c) const
    {
        return at(r, c);
    }

    /**
     * Unchecked contiguous storage (row-major, rows() * cols()
     * doubles). Debug builds assert on use of an empty matrix;
     * Release builds do no checking at all.
     */
    double *data()
    {
        return elems.data();
    }
    const double *data() const
    {
        return elems.data();
    }

    /** Unchecked pointer to the start of one row (Debug asserts). */
    double *row(std::size_t r)
    {
        assert(r < numRows && "matrix row out of range");
        return elems.data() + r * numCols;
    }
    const double *row(std::size_t r) const
    {
        assert(r < numRows && "matrix row out of range");
        return elems.data() + r * numCols;
    }

    /** Transposed copy. */
    Matrix transposed() const;

    /** Matrix product this * other (cache-tiled). */
    Matrix multiply(const Matrix &other) const;

    /** Matrix-vector product. */
    std::vector<double> multiply(const std::vector<double> &vec) const;

    /**
     * this^T * this (Gram matrix / SYRK), computed without forming
     * the transpose, cache-tiled over the upper triangle.
     */
    Matrix gram() const;

    /** this^T * vec. */
    std::vector<double> transposeMultiply(
        const std::vector<double> &vec) const;

    /** Extract one column as a vector. */
    std::vector<double> column(std::size_t c) const;

    /** Overwrite one column from a vector. */
    void setColumn(std::size_t c, const std::vector<double> &values);

  private:
    std::size_t numRows = 0;
    std::size_t numCols = 0;
    std::vector<double> elems;
};

/**
 * Reference (pre-tiling) matrix product: the historical bounds-
 * checked triple loop, kept as the oracle for cross-validating and
 * benchmarking the tiled kernel. Bit-identical to Matrix::multiply.
 */
Matrix multiplyReference(const Matrix &a, const Matrix &b);

/** Reference (pre-tiling) Gram matrix, bit-identical to gram(). */
Matrix gramReference(const Matrix &a);

/**
 * Cholesky factor L of an SPD matrix (A = L L^T).
 * @return false if the matrix is not positive definite.
 */
bool choleskyFactor(const Matrix &a, Matrix &l);

/** Solve A x = b via a precomputed Cholesky factor L. */
std::vector<double> choleskySolve(const Matrix &l,
                                  const std::vector<double> &b);

/**
 * Invert an SPD matrix via Cholesky.
 * @return false if not positive definite.
 */
bool invertSpd(const Matrix &a, Matrix &inverse);

/**
 * Least-squares solve min ||X beta - y|| via Householder QR.
 *
 * @param x design matrix (n x p, n >= p)
 * @param y response (length n)
 * @param beta output coefficients (length p)
 * @return false if X is numerically rank deficient.
 */
bool leastSquaresQr(const Matrix &x, const std::vector<double> &y,
                    std::vector<double> &beta);

/** Dot product. */
double dot(const std::vector<double> &a, const std::vector<double> &b);

} // namespace gemstone::linalg

#endif // GEMSTONE_LINALG_MATRIX_HH
