/**
 * @file
 * Dense matrix implementation.
 */

#include "linalg/matrix.hh"

#include <cmath>

#include "util/logging.hh"

namespace gemstone::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : numRows(rows), numCols(cols), data(rows * cols, 0.0)
{
}

Matrix
Matrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    panic_if(rows.empty(), "fromRows needs at least one row");
    Matrix m(rows.size(), rows.front().size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        panic_if(rows[r].size() != m.numCols,
                 "ragged row in Matrix::fromRows");
        for (std::size_t c = 0; c < m.numCols; ++c)
            m.at(r, c) = rows[r][c];
    }
    return m;
}

Matrix
Matrix::identity(std::size_t order)
{
    Matrix m(order, order);
    for (std::size_t i = 0; i < order; ++i)
        m.at(i, i) = 1.0;
    return m;
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    panic_if(r >= numRows || c >= numCols, "matrix index out of range");
    return data[r * numCols + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    panic_if(r >= numRows || c >= numCols, "matrix index out of range");
    return data[r * numCols + c];
}

Matrix
Matrix::transposed() const
{
    Matrix t(numCols, numRows);
    for (std::size_t r = 0; r < numRows; ++r)
        for (std::size_t c = 0; c < numCols; ++c)
            t.at(c, r) = at(r, c);
    return t;
}

Matrix
Matrix::multiply(const Matrix &other) const
{
    panic_if(numCols != other.numRows, "matrix product shape mismatch");
    Matrix out(numRows, other.numCols);
    for (std::size_t r = 0; r < numRows; ++r) {
        for (std::size_t k = 0; k < numCols; ++k) {
            double lhs = at(r, k);
            if (lhs == 0.0)
                continue;
            for (std::size_t c = 0; c < other.numCols; ++c)
                out.at(r, c) += lhs * other.at(k, c);
        }
    }
    return out;
}

std::vector<double>
Matrix::multiply(const std::vector<double> &vec) const
{
    panic_if(vec.size() != numCols, "matrix-vector shape mismatch");
    std::vector<double> out(numRows, 0.0);
    for (std::size_t r = 0; r < numRows; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < numCols; ++c)
            sum += at(r, c) * vec[c];
        out[r] = sum;
    }
    return out;
}

Matrix
Matrix::gram() const
{
    Matrix out(numCols, numCols);
    for (std::size_t r = 0; r < numRows; ++r) {
        for (std::size_t i = 0; i < numCols; ++i) {
            double lhs = at(r, i);
            if (lhs == 0.0)
                continue;
            for (std::size_t j = i; j < numCols; ++j)
                out.at(i, j) += lhs * at(r, j);
        }
    }
    for (std::size_t i = 0; i < numCols; ++i)
        for (std::size_t j = 0; j < i; ++j)
            out.at(i, j) = out.at(j, i);
    return out;
}

std::vector<double>
Matrix::transposeMultiply(const std::vector<double> &vec) const
{
    panic_if(vec.size() != numRows, "transposeMultiply shape mismatch");
    std::vector<double> out(numCols, 0.0);
    for (std::size_t r = 0; r < numRows; ++r) {
        double scale = vec[r];
        if (scale == 0.0)
            continue;
        for (std::size_t c = 0; c < numCols; ++c)
            out[c] += at(r, c) * scale;
    }
    return out;
}

std::vector<double>
Matrix::column(std::size_t c) const
{
    panic_if(c >= numCols, "column index out of range");
    std::vector<double> out(numRows);
    for (std::size_t r = 0; r < numRows; ++r)
        out[r] = at(r, c);
    return out;
}

void
Matrix::setColumn(std::size_t c, const std::vector<double> &values)
{
    panic_if(c >= numCols || values.size() != numRows,
             "setColumn shape mismatch");
    for (std::size_t r = 0; r < numRows; ++r)
        at(r, c) = values[r];
}

bool
choleskyFactor(const Matrix &a, Matrix &l)
{
    panic_if(a.rows() != a.cols(), "cholesky requires a square matrix");
    const std::size_t n = a.rows();
    l = Matrix(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double sum = a.at(i, j);
            for (std::size_t k = 0; k < j; ++k)
                sum -= l.at(i, k) * l.at(j, k);
            if (i == j) {
                if (sum <= 0.0 || !std::isfinite(sum))
                    return false;
                l.at(i, i) = std::sqrt(sum);
            } else {
                l.at(i, j) = sum / l.at(j, j);
            }
        }
    }
    return true;
}

std::vector<double>
choleskySolve(const Matrix &l, const std::vector<double> &b)
{
    const std::size_t n = l.rows();
    panic_if(b.size() != n, "choleskySolve shape mismatch");

    // Forward substitution: L y = b.
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double sum = b[i];
        for (std::size_t k = 0; k < i; ++k)
            sum -= l.at(i, k) * y[k];
        y[i] = sum / l.at(i, i);
    }

    // Back substitution: L^T x = y.
    std::vector<double> x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double sum = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            sum -= l.at(k, ii) * x[k];
        x[ii] = sum / l.at(ii, ii);
    }
    return x;
}

bool
invertSpd(const Matrix &a, Matrix &inverse)
{
    Matrix l;
    if (!choleskyFactor(a, l))
        return false;
    const std::size_t n = a.rows();
    inverse = Matrix(n, n);
    std::vector<double> unit(n, 0.0);
    for (std::size_t c = 0; c < n; ++c) {
        unit[c] = 1.0;
        std::vector<double> col = choleskySolve(l, unit);
        inverse.setColumn(c, col);
        unit[c] = 0.0;
    }
    return true;
}

bool
leastSquaresQr(const Matrix &x, const std::vector<double> &y,
               std::vector<double> &beta)
{
    const std::size_t n = x.rows();
    const std::size_t p = x.cols();
    panic_if(y.size() != n, "leastSquaresQr shape mismatch");
    if (n < p)
        return false;

    // Working copies; r is reduced in place by Householder reflectors
    // which are applied to rhs as they are generated.
    Matrix r = x;
    std::vector<double> rhs = y;

    for (std::size_t k = 0; k < p; ++k) {
        // Compute the norm of the k-th column below the diagonal.
        double norm = 0.0;
        for (std::size_t i = k; i < n; ++i)
            norm += r.at(i, k) * r.at(i, k);
        norm = std::sqrt(norm);
        if (norm < 1e-12)
            return false;

        double alpha = r.at(k, k) > 0 ? -norm : norm;
        // Householder vector v (stored temporarily).
        std::vector<double> v(n - k, 0.0);
        v[0] = r.at(k, k) - alpha;
        for (std::size_t i = k + 1; i < n; ++i)
            v[i - k] = r.at(i, k);
        double vnorm2 = 0.0;
        for (double value : v)
            vnorm2 += value * value;
        if (vnorm2 < 1e-24)
            return false;

        // Apply reflector to the remaining columns of r.
        for (std::size_t c = k; c < p; ++c) {
            double proj = 0.0;
            for (std::size_t i = k; i < n; ++i)
                proj += v[i - k] * r.at(i, c);
            proj = 2.0 * proj / vnorm2;
            for (std::size_t i = k; i < n; ++i)
                r.at(i, c) -= proj * v[i - k];
        }
        // Apply reflector to the right-hand side.
        double proj = 0.0;
        for (std::size_t i = k; i < n; ++i)
            proj += v[i - k] * rhs[i];
        proj = 2.0 * proj / vnorm2;
        for (std::size_t i = k; i < n; ++i)
            rhs[i] -= proj * v[i - k];
    }

    // Back substitution on the upper-triangular system R beta = rhs.
    beta.assign(p, 0.0);
    for (std::size_t ii = p; ii-- > 0;) {
        double sum = rhs[ii];
        for (std::size_t c = ii + 1; c < p; ++c)
            sum -= r.at(ii, c) * beta[c];
        double diag = r.at(ii, ii);
        if (std::fabs(diag) < 1e-12)
            return false;
        beta[ii] = sum / diag;
    }
    return true;
}

double
dot(const std::vector<double> &a, const std::vector<double> &b)
{
    panic_if(a.size() != b.size(), "dot shape mismatch");
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        sum += a[i] * b[i];
    return sum;
}

} // namespace gemstone::linalg
