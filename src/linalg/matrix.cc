/**
 * @file
 * Dense matrix implementation.
 *
 * The hot kernels (multiply, gram) are cache-tiled and run on the
 * unchecked accessors, but accumulate contributions for each output
 * element in exactly the same k-order as the historical element-wise
 * loops — IEEE addition is performed in the same sequence, so the
 * tiled kernels are bit-identical to multiplyReference /
 * gramReference (asserted by tests and by bench/perf_analysis before
 * it times anything).
 */

#include "linalg/matrix.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace gemstone::linalg {

namespace {

/**
 * Tile edges for the blocked kernels. The row/k tiles keep the
 * working set of one (r-tile x k-tile) panel of the left operand and
 * one (k-tile x c-tile) panel of the right operand inside L1/L2 for
 * the matrix shapes the analyses produce (hundreds of observations x
 * up to a few hundred series).
 */
constexpr std::size_t kTileRows = 64;
constexpr std::size_t kTileK = 64;
constexpr std::size_t kTileCols = 256;

} // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : numRows(rows), numCols(cols), elems(rows * cols, 0.0)
{
}

Matrix
Matrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    panic_if(rows.empty(), "fromRows needs at least one row");
    Matrix m(rows.size(), rows.front().size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        panic_if(rows[r].size() != m.numCols,
                 "ragged row in Matrix::fromRows");
        for (std::size_t c = 0; c < m.numCols; ++c)
            m.at(r, c) = rows[r][c];
    }
    return m;
}

Matrix
Matrix::identity(std::size_t order)
{
    Matrix m(order, order);
    for (std::size_t i = 0; i < order; ++i)
        m.at(i, i) = 1.0;
    return m;
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    panic_if(r >= numRows || c >= numCols, "matrix index out of range");
    return elems[r * numCols + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    panic_if(r >= numRows || c >= numCols, "matrix index out of range");
    return elems[r * numCols + c];
}

Matrix
Matrix::transposed() const
{
    Matrix t(numCols, numRows);
    const double *src = elems.data();
    double *dst = t.elems.data();
    for (std::size_t r = 0; r < numRows; ++r)
        for (std::size_t c = 0; c < numCols; ++c)
            dst[c * numRows + r] = src[r * numCols + c];
    return t;
}

Matrix
Matrix::multiply(const Matrix &other) const
{
    panic_if(numCols != other.numRows, "matrix product shape mismatch");
    Matrix out(numRows, other.numCols);
    const std::size_t m = numRows;
    const std::size_t kk = numCols;
    const std::size_t nn = other.numCols;

    // Tiled i-k-j product. For a fixed output element (r, c) the
    // contributions still arrive in strictly increasing k (the c-tile
    // an element belongs to is unique, and k tiles are visited in
    // order), so the accumulation order — and therefore the IEEE
    // result — matches the reference loop exactly. The lhs == 0 skip
    // is kept from the reference: design matrices are full of
    // structural zeros and skipping them is both faster and part of
    // the historical NaN/Inf semantics (0 * Inf never enters).
    for (std::size_t r0 = 0; r0 < m; r0 += kTileRows) {
        const std::size_t r1 = std::min(m, r0 + kTileRows);
        for (std::size_t k0 = 0; k0 < kk; k0 += kTileK) {
            const std::size_t k1 = std::min(kk, k0 + kTileK);
            for (std::size_t c0 = 0; c0 < nn; c0 += kTileCols) {
                const std::size_t c1 = std::min(nn, c0 + kTileCols);
                for (std::size_t r = r0; r < r1; ++r) {
                    const double *arow = row(r);
                    double *orow = out.row(r);
                    for (std::size_t k = k0; k < k1; ++k) {
                        const double lhs = arow[k];
                        if (lhs == 0.0)
                            continue;
                        const double *brow = other.row(k);
                        for (std::size_t c = c0; c < c1; ++c)
                            orow[c] += lhs * brow[c];
                    }
                }
            }
        }
    }
    return out;
}

std::vector<double>
Matrix::multiply(const std::vector<double> &vec) const
{
    panic_if(vec.size() != numCols, "matrix-vector shape mismatch");
    std::vector<double> out(numRows, 0.0);
    const double *v = vec.data();
    for (std::size_t r = 0; r < numRows; ++r) {
        const double *arow = row(r);
        double sum = 0.0;
        for (std::size_t c = 0; c < numCols; ++c)
            sum += arow[c] * v[c];
        out[r] = sum;
    }
    return out;
}

Matrix
Matrix::gram() const
{
    Matrix out(numCols, numCols);
    const std::size_t n = numRows;
    const std::size_t p = numCols;

    // Tiled SYRK over the upper triangle: rows are streamed in
    // order, so each out(i, j) accumulates its rank-1 contributions
    // in increasing row order — the same sequence as the reference
    // loop, hence bit-identical results.
    for (std::size_t r0 = 0; r0 < n; r0 += kTileRows) {
        const std::size_t r1 = std::min(n, r0 + kTileRows);
        for (std::size_t i0 = 0; i0 < p; i0 += kTileK) {
            const std::size_t i1 = std::min(p, i0 + kTileK);
            for (std::size_t j0 = i0; j0 < p; j0 += kTileCols) {
                const std::size_t j1 = std::min(p, j0 + kTileCols);
                for (std::size_t r = r0; r < r1; ++r) {
                    const double *xrow = row(r);
                    for (std::size_t i = i0; i < i1; ++i) {
                        const double lhs = xrow[i];
                        if (lhs == 0.0)
                            continue;
                        double *orow = out.row(i);
                        for (std::size_t j = std::max(j0, i); j < j1;
                             ++j) {
                            orow[j] += lhs * xrow[j];
                        }
                    }
                }
            }
        }
    }
    for (std::size_t i = 0; i < p; ++i)
        for (std::size_t j = 0; j < i; ++j)
            out.row(i)[j] = out.row(j)[i];
    return out;
}

std::vector<double>
Matrix::transposeMultiply(const std::vector<double> &vec) const
{
    panic_if(vec.size() != numRows, "transposeMultiply shape mismatch");
    std::vector<double> out(numCols, 0.0);
    for (std::size_t r = 0; r < numRows; ++r) {
        const double scale = vec[r];
        if (scale == 0.0)
            continue;
        const double *arow = row(r);
        for (std::size_t c = 0; c < numCols; ++c)
            out[c] += arow[c] * scale;
    }
    return out;
}

std::vector<double>
Matrix::column(std::size_t c) const
{
    panic_if(c >= numCols, "column index out of range");
    std::vector<double> out(numRows);
    for (std::size_t r = 0; r < numRows; ++r)
        out[r] = elems[r * numCols + c];
    return out;
}

void
Matrix::setColumn(std::size_t c, const std::vector<double> &values)
{
    panic_if(c >= numCols || values.size() != numRows,
             "setColumn shape mismatch");
    for (std::size_t r = 0; r < numRows; ++r)
        elems[r * numCols + c] = values[r];
}

Matrix
multiplyReference(const Matrix &a, const Matrix &b)
{
    panic_if(a.cols() != b.rows(), "matrix product shape mismatch");
    Matrix out(a.rows(), b.cols());
    for (std::size_t r = 0; r < a.rows(); ++r) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
            double lhs = a.at(r, k);
            if (lhs == 0.0)
                continue;
            for (std::size_t c = 0; c < b.cols(); ++c)
                out.at(r, c) += lhs * b.at(k, c);
        }
    }
    return out;
}

Matrix
gramReference(const Matrix &a)
{
    Matrix out(a.cols(), a.cols());
    for (std::size_t r = 0; r < a.rows(); ++r) {
        for (std::size_t i = 0; i < a.cols(); ++i) {
            double lhs = a.at(r, i);
            if (lhs == 0.0)
                continue;
            for (std::size_t j = i; j < a.cols(); ++j)
                out.at(i, j) += lhs * a.at(r, j);
        }
    }
    for (std::size_t i = 0; i < a.cols(); ++i)
        for (std::size_t j = 0; j < i; ++j)
            out.at(i, j) = out.at(j, i);
    return out;
}

bool
choleskyFactor(const Matrix &a, Matrix &l)
{
    panic_if(a.rows() != a.cols(), "cholesky requires a square matrix");
    const std::size_t n = a.rows();
    l = Matrix(n, n);
    double *ld = l.data();
    for (std::size_t i = 0; i < n; ++i) {
        const double *arow = a.row(i);
        double *lrow = ld + i * n;
        for (std::size_t j = 0; j <= i; ++j) {
            const double *ljrow = ld + j * n;
            double sum = arow[j];
            for (std::size_t k = 0; k < j; ++k)
                sum -= lrow[k] * ljrow[k];
            if (i == j) {
                if (sum <= 0.0 || !std::isfinite(sum))
                    return false;
                lrow[i] = std::sqrt(sum);
            } else {
                lrow[j] = sum / ljrow[j];
            }
        }
    }
    return true;
}

std::vector<double>
choleskySolve(const Matrix &l, const std::vector<double> &b)
{
    const std::size_t n = l.rows();
    panic_if(b.size() != n, "choleskySolve shape mismatch");
    const double *ld = l.data();

    // Forward substitution: L y = b.
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double *lrow = ld + i * n;
        double sum = b[i];
        for (std::size_t k = 0; k < i; ++k)
            sum -= lrow[k] * y[k];
        y[i] = sum / lrow[i];
    }

    // Back substitution: L^T x = y.
    std::vector<double> x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double sum = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            sum -= ld[k * n + ii] * x[k];
        x[ii] = sum / ld[ii * n + ii];
    }
    return x;
}

bool
invertSpd(const Matrix &a, Matrix &inverse)
{
    Matrix l;
    if (!choleskyFactor(a, l))
        return false;
    const std::size_t n = a.rows();
    inverse = Matrix(n, n);
    std::vector<double> unit(n, 0.0);
    for (std::size_t c = 0; c < n; ++c) {
        unit[c] = 1.0;
        std::vector<double> col = choleskySolve(l, unit);
        inverse.setColumn(c, col);
        unit[c] = 0.0;
    }
    return true;
}

bool
leastSquaresQr(const Matrix &x, const std::vector<double> &y,
               std::vector<double> &beta)
{
    const std::size_t n = x.rows();
    const std::size_t p = x.cols();
    panic_if(y.size() != n, "leastSquaresQr shape mismatch");
    if (n < p)
        return false;

    // Working copies; r is reduced in place by Householder reflectors
    // which are applied to rhs as they are generated. The loops run
    // on unchecked storage but perform the same operations in the
    // same order as the historical at()-based version.
    Matrix r = x;
    std::vector<double> rhs = y;
    double *rd = r.data();

    for (std::size_t k = 0; k < p; ++k) {
        // Compute the norm of the k-th column below the diagonal.
        double norm = 0.0;
        for (std::size_t i = k; i < n; ++i) {
            const double value = rd[i * p + k];
            norm += value * value;
        }
        norm = std::sqrt(norm);
        if (norm < 1e-12)
            return false;

        double alpha = rd[k * p + k] > 0 ? -norm : norm;
        // Householder vector v (stored temporarily).
        std::vector<double> v(n - k, 0.0);
        v[0] = rd[k * p + k] - alpha;
        for (std::size_t i = k + 1; i < n; ++i)
            v[i - k] = rd[i * p + k];
        double vnorm2 = 0.0;
        for (double value : v)
            vnorm2 += value * value;
        if (vnorm2 < 1e-24)
            return false;

        // Apply reflector to the remaining columns of r.
        for (std::size_t c = k; c < p; ++c) {
            double proj = 0.0;
            for (std::size_t i = k; i < n; ++i)
                proj += v[i - k] * rd[i * p + c];
            proj = 2.0 * proj / vnorm2;
            for (std::size_t i = k; i < n; ++i)
                rd[i * p + c] -= proj * v[i - k];
        }
        // Apply reflector to the right-hand side.
        double proj = 0.0;
        for (std::size_t i = k; i < n; ++i)
            proj += v[i - k] * rhs[i];
        proj = 2.0 * proj / vnorm2;
        for (std::size_t i = k; i < n; ++i)
            rhs[i] -= proj * v[i - k];
    }

    // Back substitution on the upper-triangular system R beta = rhs.
    beta.assign(p, 0.0);
    for (std::size_t ii = p; ii-- > 0;) {
        double sum = rhs[ii];
        for (std::size_t c = ii + 1; c < p; ++c)
            sum -= rd[ii * p + c] * beta[c];
        double diag = rd[ii * p + ii];
        if (std::fabs(diag) < 1e-12)
            return false;
        beta[ii] = sum / diag;
    }
    return true;
}

double
dot(const std::vector<double> &a, const std::vector<double> &b)
{
    panic_if(a.size() != b.size(), "dot shape mismatch");
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        sum += a[i] * b[i];
    return sum;
}

} // namespace gemstone::linalg
