/**
 * @file
 * Ground-truth power, sensor and thermal model implementations.
 */

#include "hwsim/power.hh"

#include <cmath>

#include "util/logging.hh"

namespace gemstone::hwsim {

PowerCoefficients
bigCoefficients()
{
    return PowerCoefficients{};  // defaults are A15-class
}

PowerCoefficients
littleCoefficients()
{
    PowerCoefficients c;
    c.staticBase = 0.025;
    c.staticPerDegree = 0.0012;
    c.clockTreePerGhz = 0.030;
    c.energyCycle = 0.028;
    c.energyInst = 0.018;
    c.energyIntMul = 0.025;
    c.energyIntDiv = 0.10;
    c.energyFp = 0.055;
    c.energySimd = 0.07;
    c.energyL1dAccess = 0.027;
    c.energyL1dMiss = 0.14;
    c.energyL1iAccess = 0.016;
    c.energyL2Access = 0.18;
    c.energyDram = 3.50;  // DRAM energy is shared, not core-scaled
    c.energyMispredict = 0.10;
    c.energyTlbWalk = 0.16;
    c.energyExclusive = 0.04;
    c.energyBarrier = 0.05;
    c.energySnoop = 0.15;
    c.energyUnaligned = 0.02;
    return c;
}

GroundTruthPower::GroundTruthPower(
    const PowerCoefficients &coefficients)
    : coeffs(coefficients)
{
}

double
GroundTruthPower::meanPower(const uarch::EventCounts &events,
                            double seconds, double voltage,
                            double freq_ghz,
                            double temperature) const
{
    panic_if(seconds <= 0.0, "meanPower needs a positive duration");

    // Static leakage: quadratic in V, linear-ish in temperature.
    double static_w = coeffs.staticBase * voltage * voltage *
        (1.0 + coeffs.staticPerDegree * (temperature - 25.0));

    // Idle clock tree: proportional to f V^2 regardless of activity.
    double clock_w =
        coeffs.clockTreePerGhz * freq_ghz * voltage * voltage;

    // Dynamic energy: sum of per-event energies, scaled by V^2.
    const uarch::EventCounts &e = events;
    double nj = 0.0;
    nj += coeffs.energyCycle * e.cycles;
    nj += coeffs.energyInst * double(e.instSpec);
    nj += coeffs.energyIntMul * double(e.intMulOps);
    nj += coeffs.energyIntDiv * double(e.intDivOps);
    nj += coeffs.energyFp * double(e.fpOps);
    nj += coeffs.energySimd * double(e.simdOps);
    nj += coeffs.energyL1dAccess * double(e.l1dAccesses);
    nj += coeffs.energyL1dMiss * double(e.l1dMisses);
    nj += coeffs.energyL1iAccess * double(e.l1iAccesses);
    nj += coeffs.energyL2Access * double(e.l2Accesses);
    nj += coeffs.energyDram * double(e.dramReads + e.dramWrites);
    nj += coeffs.energyMispredict * double(e.branchMispredicts);
    nj += coeffs.energyTlbWalk * double(e.itlbWalks + e.dtlbWalks);
    nj += coeffs.energyExclusive * double(e.ldrexOps + e.strexOps);
    nj += coeffs.energyBarrier * double(e.barriers + e.isbs);
    nj += coeffs.energySnoop * double(e.snoops);
    nj += coeffs.energyUnaligned * double(e.unalignedAccesses);

    double dynamic_w = nj * 1e-9 / seconds * voltage * voltage;
    return static_w + clock_w + dynamic_w;
}

PowerSensor::PowerSensor(double sample_hz, double reading_sigma)
    : sampleHz(sample_hz), readingSigma(reading_sigma)
{
    fatal_if(sample_hz <= 0.0, "sensor rate must be positive");
}

double
PowerSensor::measure(double true_power, double duration_seconds,
                     Rng &rng) const
{
    // The sensor internally averages; what we observe is the mean of
    // n noisy samples taken over the run.
    double n = std::max(1.0, duration_seconds * sampleHz);
    double sigma = readingSigma / std::sqrt(n);
    double reading = true_power * (1.0 + rng.gaussian(0.0, sigma));
    return reading > 0.0 ? reading : 0.0;
}

double
PowerSensor::measureDegraded(double true_power,
                             double duration_seconds,
                             double dropped_fraction, Rng &rng) const
{
    fatal_if(dropped_fraction < 0.0 || dropped_fraction >= 1.0,
             "dropped fraction must be in [0, 1)");
    return measure(true_power,
                   duration_seconds * (1.0 - dropped_fraction), rng);
}

double
PowerSensor::stuckReading(double stale_power, Rng &rng) const
{
    // One sample's worth of noise, regardless of how long the stuck
    // interface is polled.
    return measure(stale_power, 1.0 / sampleHz, rng);
}

ThermalModel::ThermalModel(double ambient_c, double c_per_watt,
                           double trip_c)
    : ambientC(ambient_c), cPerWatt(c_per_watt), tripC(trip_c)
{
}

double
ThermalModel::steadyTemperature(double power_watts) const
{
    return ambientC + cPerWatt * power_watts;
}

bool
ThermalModel::throttles(double temperature_c) const
{
    return temperature_c > tripC;
}

} // namespace gemstone::hwsim
