/**
 * @file
 * ARMv7-style Performance Monitoring Unit model.
 *
 * The PMU exposes the event-number space of the Cortex-A7/A15 PMUs
 * (architectural events 0x00-0x1D, implementation-defined events
 * 0x40-0x7E plus a few chip-specific extras). Like the real hardware,
 * only a handful of counters can be programmed at once (6 on the
 * A15, plus the fixed cycle counter), so capturing the full event set
 * requires multiple instrumented runs — GemStone's Experiment 1
 * repeats workloads across counter groups exactly as the paper did
 * to capture 68 events.
 */

#ifndef GEMSTONE_HWSIM_PMU_HH
#define GEMSTONE_HWSIM_PMU_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "uarch/events.hh"
#include "util/random.hh"

namespace gemstone::hwsim {

/** One PMU event definition. */
struct PmcEvent
{
    int id;                 //!< ARM event number (e.g. 0x11)
    std::string name;       //!< mnemonic (e.g. "CPU_CYCLES")
    std::string desc;       //!< human-readable description
    /** Derive the true count from a run's event record. */
    std::function<double(const uarch::EventCounts &)> extract;
};

/** Hex-formatted id, e.g. "0x11". */
std::string pmcIdString(int id);

/**
 * The PMU event table.
 */
class PmuEventTable
{
  public:
    /** The full event list (order is stable). */
    static const std::vector<PmcEvent> &events();

    /** Find by event number; nullptr when not implemented. */
    static const PmcEvent *find(int id);

    /** Find by mnemonic; nullptr when unknown. */
    static const PmcEvent *findByName(const std::string &name);

    /** All event ids. */
    static std::vector<int> allIds();
};

/**
 * Counter-multiplexed PMU sampling.
 *
 * Emulates programming the PMU in groups of `counterSlots` events per
 * instrumented run. Each run perturbs its counts with small
 * multiplicative run-to-run noise, as consecutive runs of the same
 * binary on real silicon never produce bit-identical PMC values.
 */
class PmuSampler
{
  public:
    /**
     * @param counter_slots programmable counters per run (6 on A15)
     * @param noise_sigma relative run-to-run noise (e.g. 0.004)
     */
    PmuSampler(unsigned counter_slots, double noise_sigma);

    /**
     * Capture the given events from a run record.
     * @param events ids to capture
     * @param truth the run's true event record
     * @param rng noise stream (advanced per emulated run)
     * @return id -> measured count
     */
    std::map<int, double> capture(const std::vector<int> &events,
                                  const uarch::EventCounts &truth,
                                  Rng &rng) const;

    /** PMC corruption selected by the fault injector. */
    struct CaptureFaults
    {
        /** Drop one whole multiplex group of events. */
        bool loseGroup = false;
        /** Which group (clamped to the groups actually used). */
        unsigned lostGroup = 0;
        /** Wrap counts at the 32-bit counter width. */
        bool overflow = false;
    };

    /**
     * capture() through an injected fault: a lost multiplex group
     * never reaches the output map (the harness sees those events as
     * simply missing), and an overflow episode wraps every count at
     * 2^32 exactly as the real 32-bit PMCs do when a multiplexing
     * window runs long. With a default-constructed @p faults this is
     * capture() bit for bit.
     */
    std::map<int, double> captureFaulty(
        const std::vector<int> &events,
        const uarch::EventCounts &truth, Rng &rng,
        const CaptureFaults &faults) const;

    /** Number of instrumented runs needed for n events. */
    unsigned runsNeeded(std::size_t event_count) const;

  private:
    unsigned counterSlots;
    double noiseSigma;
};

} // namespace gemstone::hwsim

#endif // GEMSTONE_HWSIM_PMU_HH
