/**
 * @file
 * The reference hardware platform: an ODROID-XU3-class big.LITTLE
 * board model.
 *
 * This is the "HW" side of the paper's methodology. It executes
 * workloads on micro-architecture models configured with the *true*
 * Cortex-A7 / Cortex-A15 parameters, exposes a multiplexed ARMv7 PMU,
 * per-cluster power sensors with realistic noise, DVFS operating
 * points with a voltage table, run-to-run timing variation (the paper
 * takes the median of five runs), and thermal throttling at the top
 * A15 frequency.
 *
 * Workloads execute on the predecoded fast engine (DESIGN.md §12).
 * Every observable measured here — execution times, PMU readings
 * through the multiplex schedule, ground-truth event records — is
 * bit-identical to the reference interpreter (run with
 * GEMSTONE_REFERENCE_EXEC=1 to cross-check a whole campaign), which
 * tests/exec_fastpath_test.cc enforces kernel by kernel.
 */

#ifndef GEMSTONE_HWSIM_PLATFORM_HH
#define GEMSTONE_HWSIM_PLATFORM_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "hwsim/faults.hh"
#include "hwsim/pmu.hh"
#include "hwsim/power.hh"
#include "uarch/batch.hh"
#include "uarch/system.hh"
#include "workload/workload.hh"

namespace gemstone::hwsim {

/** Which CPU cluster of the big.LITTLE SoC. */
enum class CpuCluster { LittleA7, BigA15 };

/** Short tag ("a7" / "a15"). */
std::string clusterTag(CpuCluster cluster);

/** One DVFS operating point. */
struct OppPoint
{
    double freqMhz;
    double voltage;
};

/** The true micro-architecture of the Cortex-A15 cluster. */
uarch::ClusterConfig trueBigConfig();

/** The true micro-architecture of the Cortex-A7 cluster. */
uarch::ClusterConfig trueLittleConfig();

/**
 * Thread-local pool of warm batched models, the multi-config
 * counterpart of the internal single-config model pool: one
 * BatchedSystemModel per distinct batch shape (point list) per
 * thread, reused through reset() + memory().clear() with
 * bit-identical fresh-model results and zero steady-state heap
 * allocations. Tables are carved from the thread's arena. Note the
 * batched engine has no Reference variant — its results are
 * parity-gated against the standalone fast engine (which is itself
 * gated against the reference interpreter), so the engine override
 * does not apply.
 */
uarch::BatchedSystemModel &pooledBatchedModel(
    const std::vector<uarch::BatchPoint> &points);

/** One measured observation of a workload on the platform. */
struct HwMeasurement
{
    std::string workload;
    CpuCluster cluster = CpuCluster::BigA15;
    double freqMhz = 0.0;
    double voltage = 0.0;

    /** Median execution time of the repeats (seconds). */
    double execSeconds = 0.0;
    /** The individual timing observations. */
    std::vector<double> repeatSeconds;
    /** PMC counts captured across multiplexed runs (id -> count). */
    std::map<int, double> pmc;
    /** Measured (noisy) mean power in watts. */
    double powerWatts = 0.0;
    /** Die temperature during the run (C). */
    double temperatureC = 0.0;
    /** True if the thermal limit forced a lower frequency. */
    bool throttled = false;

    /**
     * Ground-truth event record — available because the platform is
     * simulated; used only by tests, never by the GemStone analyses.
     */
    uarch::EventCounts groundTruth;

    /** PMC count by id; 0 when not captured. */
    double pmcValue(int id) const;

    /** PMC rate per second. */
    double pmcRate(int id) const;
};

/**
 * The board. One instance owns a deterministic noise stream and a
 * run cache (runs are frequency-retimed rather than re-simulated, as
 * all architectural event counts are DVFS-invariant).
 *
 * Thread safety: measureAttempt() is safe to call concurrently from
 * any number of threads on one platform, and its result depends only
 * on its arguments and the construction seed — never on call order
 * or thread interleaving. The run cache is populated under a
 * once-flag per (workload, cluster) so concurrent first measurements
 * simulate exactly once; the noise stream is forked per point (the
 * master Rng is never advanced after construction); the fault
 * injector and PMU/power/thermal models are const during
 * measurement. measure()/measureEvents() additionally bump a shared
 * per-point attempt counter and are therefore serial-only, as are
 * the mutators (injectFaults, resetFaultAttempts, clearCache).
 */
class OdroidXu3Platform
{
  public:
    /**
     * @param seed master seed for every stochastic observation
     * @param board_variation relative board-to-board spread of the
     *        hidden power coefficients (silicon, sensors, regulators
     *        and ambient conditions differ between physical boards —
     *        the reason the paper saw 5.6% with published
     *        coefficients but 2.8% after re-tuning). 0 = the
     *        reference board.
     */
    explicit OdroidXu3Platform(std::uint64_t seed = 0x0d401dULL,
                               double board_variation = 0.0);

    /** Operating points of a cluster (the paper's tested set). */
    static const std::vector<OppPoint> &oppTable(CpuCluster cluster);

    /** Voltage for a frequency; fatal() for an unknown OPP. */
    static double voltageFor(CpuCluster cluster, double freq_mhz);

    /**
     * Run a workload and measure it: @p repeats timing observations
     * (median reported), all PMU events via multiplexed capture, and
     * a power-sensor reading over an >= 30 s effective window.
     */
    HwMeasurement measure(const workload::Workload &work,
                          CpuCluster cluster, double freq_mhz,
                          unsigned repeats = 5);

    /**
     * Measure only the events requested (fewer instrumented runs).
     */
    HwMeasurement measureEvents(const workload::Workload &work,
                                CpuCluster cluster, double freq_mhz,
                                const std::vector<int> &event_ids,
                                unsigned repeats = 5);

    /**
     * measure() with the retry attempt made explicit instead of
     * drawn from the platform's shared per-point counter. Attempt 0
     * of a point is bit-identical to a first measure() of it. This
     * is the entry point for concurrent campaigns: a pure function
     * of (arguments, construction seed), safe from any thread.
     */
    HwMeasurement measureAttempt(const workload::Workload &work,
                                 CpuCluster cluster, double freq_mhz,
                                 unsigned attempt,
                                 unsigned repeats = 5);

    /** The sensor and thermal models (exposed for tests). */
    const PowerSensor &sensor() const { return powerSensor; }
    const ThermalModel &thermal() const { return thermalModel; }

    /**
     * Arm fault injection. Disabled by default; with an inactive
     * config every measurement stays bit-identical to a platform
     * that never heard of faults. Repeated measure() calls on the
     * same (workload, cluster, freq) point count as successive
     * attempts, and attempt n of a point sees the same faults no
     * matter when in the campaign it happens — the property that
     * makes checkpoint/resume replayable.
     */
    void injectFaults(const FaultConfig &config);

    /** The armed injector (inactive by default). */
    const FaultInjector &faults() const { return faultInjector; }

    /** Forget per-point attempt history (fresh campaign). */
    void resetFaultAttempts();

    /** Ground-truth power function (tests only). */
    const GroundTruthPower &groundTruthPower(CpuCluster cluster) const;

    /** Clear the run cache (frees workload memory). */
    void clearCache();

    /**
     * Install an externally computed base-frequency run for
     * (workload, cluster) — the batched-sweep fill path: a
     * BatchedSystemModel computes the 1.0 GHz base run together with
     * other configs' runs, then hands it to the cache here. The slot
     * is filled under the same once-flag as the lazy path, so a
     * concurrent lazy computation and an install agree on a single
     * run; installing into an already computed slot is a no-op. The
     * supplied run must be bit-identical to what baseRun() would
     * compute (the batched engine's contract).
     */
    void installBaseRun(const workload::Workload &work,
                        CpuCluster cluster,
                        const uarch::RunResult &run);

  private:
    /**
     * One run-cache slot: the once-flag guarantees a single
     * simulation per (workload, cluster) under concurrent first
     * measurements, and the shared_ptr keeps the result alive for
     * readers even across clearCache().
     */
    struct BaseRunSlot
    {
        std::once_flag once;
        uarch::RunResult run;
    };

    /** Cached base-frequency run for (workload, cluster). */
    std::shared_ptr<BaseRunSlot> baseRun(
        const workload::Workload &work, CpuCluster cluster);

    /** The measurement core; @p attempt selects the fault plan. */
    HwMeasurement measureImpl(const workload::Workload &work,
                              CpuCluster cluster, double freq_mhz,
                              const std::vector<int> &event_ids,
                              unsigned repeats, unsigned attempt);

    Rng masterRng;
    PmuSampler pmuSampler;
    PowerSensor powerSensor;
    ThermalModel thermalModel;
    GroundTruthPower bigPower;
    GroundTruthPower littlePower;
    std::mutex cacheMutex;   //!< guards runCache (not the slots)
    std::map<std::string, std::shared_ptr<BaseRunSlot>> runCache;
    FaultInjector faultInjector;
    std::mutex attemptMutex; //!< guards faultAttempts
    /** Attempts made per (workload, cluster, freq) point. */
    std::map<std::string, unsigned> faultAttempts;
};

} // namespace gemstone::hwsim

#endif // GEMSTONE_HWSIM_PLATFORM_HH
