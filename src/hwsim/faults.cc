/**
 * @file
 * Fault injector implementation.
 */

#include "hwsim/faults.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/random.hh"
#include "util/strutil.hh"

namespace gemstone::hwsim {

RunError::RunError(std::string kind, const std::string &what)
    : std::runtime_error(what), faultKind(std::move(kind))
{
}

bool
FaultConfig::active() const
{
    return enabled &&
        (runFailureProb > 0.0 || sensorDropoutProb > 0.0 ||
         sensorStuckProb > 0.0 || pmcGroupLossProb > 0.0 ||
         pmcOverflowProb > 0.0 || thermalEpisodeProb > 0.0);
}

std::string
FaultConfig::signature() const
{
    if (!active())
        return "off";
    std::string sig = "seed=" + std::to_string(seed);
    auto prob = [&sig](const char *name, double value) {
        if (value > 0.0)
            sig += ";" + std::string(name) + "=" +
                formatDouble(value, 6);
    };
    prob("runfail", runFailureProb);
    prob("sensordrop", sensorDropoutProb);
    prob("dropfrac", sensorDropoutFraction);
    prob("sensorstuck", sensorStuckProb);
    prob("pmcloss", pmcGroupLossProb);
    prob("pmcwrap", pmcOverflowProb);
    prob("thermal", thermalEpisodeProb);
    prob("slowdown", thermalSlowdown);
    return sig;
}

FaultConfig
FaultConfig::labMix(std::uint64_t seed)
{
    FaultConfig config;
    config.enabled = true;
    config.seed = seed;
    // A bad day in the lab: roughly one attempt in eight loses its
    // run, one in seven hits a thermal episode, and the sensor/PMU
    // paths each degrade a few percent of the attempts.
    config.runFailureProb = 0.12;
    config.thermalEpisodeProb = 0.15;
    config.thermalSlowdown = 0.35;
    config.sensorDropoutProb = 0.10;
    config.sensorDropoutFraction = 0.6;
    config.sensorStuckProb = 0.06;
    config.pmcGroupLossProb = 0.08;
    config.pmcOverflowProb = 0.04;
    return config;
}

FaultInjector::FaultInjector(const FaultConfig &config)
    : faultConfig(config)
{
    fatal_if(config.sensorDropoutFraction < 0.0 ||
                 config.sensorDropoutFraction >= 1.0,
             "sensor dropout fraction must be in [0, 1)");
    fatal_if(config.thermalSlowdown < 0.0,
             "thermal slowdown must be non-negative");
}

FaultInjector::Tally &
FaultInjector::Tally::operator=(const Tally &other)
{
    plans = other.plans.load();
    runFailures = other.runFailures.load();
    thermalEpisodes = other.thermalEpisodes.load();
    sensorDropouts = other.sensorDropouts.load();
    sensorStuck = other.sensorStuck.load();
    pmcGroupLosses = other.pmcGroupLosses.load();
    pmcOverflows = other.pmcOverflows.load();
    workerCrashes = other.workerCrashes.load();
    return *this;
}

void
FaultInjector::resetTally()
{
    faultTally.plans = 0;
    faultTally.runFailures = 0;
    faultTally.thermalEpisodes = 0;
    faultTally.sensorDropouts = 0;
    faultTally.sensorStuck = 0;
    faultTally.pmcGroupLosses = 0;
    faultTally.pmcOverflows = 0;
    faultTally.workerCrashes = 0;
}

bool
FaultInjector::Plan::anyFault() const
{
    return runFails || thermalEpisode || sensorDropout ||
        sensorStuck || pmcGroupLoss || pmcOverflow;
}

FaultInjector::Plan
FaultInjector::plan(const std::string &workload,
                    const std::string &cluster_tag, double freq_mhz,
                    unsigned attempt) const
{
    Plan plan;
    plan.noiseStreamTag = attempt;
    if (!active())
        return plan;

    // One private stream per (point, attempt): decisions are a pure
    // function of the identity, never of campaign order.
    std::string key = workload + ":" + cluster_tag + ":" +
        formatDouble(freq_mhz, 3);
    Rng base(faultConfig.seed ^ hashString(key));
    Rng rng = base.fork(attempt);

    ++faultTally.plans;

    // Draw order is part of the fault model's contract: changing it
    // changes every seeded campaign.
    if (rng.chance(faultConfig.runFailureProb)) {
        plan.runFails = true;
        plan.failureKind =
            rng.chance(0.5) ? "hung-run" : "crashed-run";
        ++faultTally.runFailures;
        return plan;  // a dead run produces nothing else
    }
    if (rng.chance(faultConfig.thermalEpisodeProb)) {
        plan.thermalEpisode = true;
        ++faultTally.thermalEpisodes;
    }
    if (rng.chance(faultConfig.sensorDropoutProb)) {
        plan.sensorDropout = true;
        // Episodes differ in severity around the configured level.
        plan.sensorDropFraction = std::clamp(
            faultConfig.sensorDropoutFraction *
                rng.uniform(0.6, 1.3),
            0.0, 0.95);
        ++faultTally.sensorDropouts;
    }
    if (rng.chance(faultConfig.sensorStuckProb)) {
        plan.sensorStuck = true;
        // The latched sample dates from an idle stretch of the run.
        plan.sensorStuckScale = rng.uniform(0.15, 0.45);
        ++faultTally.sensorStuck;
    }
    if (rng.chance(faultConfig.pmcGroupLossProb)) {
        plan.pmcGroupLoss = true;
        // Up to 12 multiplex groups cover the full event table; the
        // sampler clamps the index to the group count in use.
        plan.lostGroup =
            static_cast<unsigned>(rng.uniformInt(12));
        ++faultTally.pmcGroupLosses;
    }
    if (rng.chance(faultConfig.pmcOverflowProb)) {
        plan.pmcOverflow = true;
        ++faultTally.pmcOverflows;
    }
    return plan;
}

bool
FaultInjector::workerCrashPlanned(const std::string &workload,
                                  const std::string &cluster_tag,
                                  double freq_mhz) const
{
    if (!faultConfig.enabled || faultConfig.workerCrashProb <= 0.0)
        return false;
    // A private stream, tagged so it shares nothing with plan()'s
    // per-attempt streams: enabling worker crashes must not shift any
    // measurement fault decision.
    std::string key = "workercrash:" + workload + ":" + cluster_tag +
        ":" + formatDouble(freq_mhz, 3);
    Rng rng(faultConfig.seed ^ hashString(key));
    if (!rng.chance(faultConfig.workerCrashProb))
        return false;
    ++faultTally.workerCrashes;
    return true;
}

} // namespace gemstone::hwsim
