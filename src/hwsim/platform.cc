/**
 * @file
 * ODROID-XU3 platform model implementation.
 */

#include "hwsim/platform.hh"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "mlstat/descriptive.hh"
#include "util/arena.hh"
#include "util/cancellation.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace gemstone::hwsim {

std::string
clusterTag(CpuCluster cluster)
{
    return cluster == CpuCluster::LittleA7 ? "a7" : "a15";
}

double
HwMeasurement::pmcValue(int id) const
{
    auto it = pmc.find(id);
    return it == pmc.end() ? 0.0 : it->second;
}

double
HwMeasurement::pmcRate(int id) const
{
    return execSeconds > 0.0 ? pmcValue(id) / execSeconds : 0.0;
}

uarch::ClusterConfig
trueBigConfig()
{
    uarch::ClusterConfig cluster;
    cluster.name = "cortex-a15";
    cluster.numCores = 4;
    cluster.quantum = 128;

    uarch::CoreConfig &core = cluster.core;
    core.name = "a15";
    core.issueWidth = 3.0;
    core.frontendDepth = 15.0;
    core.depStallFactor = 0.15;   // deep OoO window hides latency
    core.memStallFactor = 0.35;   // MLP + run-ahead
    core.latIntMul = 4.0;
    core.latIntDiv = 12.0;
    core.latFpAlu = 4.0;
    core.latFpDiv = 18.0;
    core.latSimd = 4.0;
    core.latLoadToUse = 2.0;

    core.bpKind = uarch::BpKind::Tournament;
    core.tournamentConfig = uarch::TournamentBpConfig{};
    core.wrongPathFetchLines = 3;
    core.wrongPathLoads = 1;

    core.l1i.name = "a15.l1i";
    core.l1i.sizeBytes = 32 * 1024;
    core.l1i.assoc = 2;
    core.l1i.lineBytes = 64;
    core.l1i.hitLatency = 1.0;
    core.fetchGroupInsts = 4;  // fetch-group lookup

    core.l1d.name = "a15.l1d";
    core.l1d.sizeBytes = 32 * 1024;
    core.l1d.assoc = 2;
    core.l1d.lineBytes = 64;
    core.l1d.hitLatency = 2.0;
    core.l1d.writeStreaming = true;   // real A15 write-streams
    core.l1d.streamingThreshold = 1;
    core.l1d.prefetchDegree = 1;

    // True TLB hierarchy (Cortex-A15 TRM): 32-entry L1 ITLB, 32-entry
    // L1 DTLB, shared 512-entry 4-way L2 TLB with a short latency.
    core.itlb.name = "a15.itlb";
    core.itlb.entries = 32;
    core.itlb.assoc = 0;  // fully associative
    core.dtlb.name = "a15.dtlb";
    core.dtlb.entries = 32;
    core.dtlb.assoc = 0;
    core.unifiedL2Tlb = true;
    core.l2TlbUnified.name = "a15.l2tlb";
    core.l2TlbUnified.entries = 512;
    core.l2TlbUnified.assoc = 4;
    core.l2TlbUnified.latency = 2.0;
    core.pageWalkLatency = 30.0;

    core.osItlbFlushPeriod = 20000;  // timer-tick TLB interference
    core.barrierCost = 25.0;
    core.isbCost = 14.0;
    core.exclusiveCost = 7.0;
    core.strexFailCost = 12.0;
    core.snoopCost = 30.0;

    cluster.l2.name = "a15.l2";
    cluster.l2.sizeBytes = 2 * 1024 * 1024;
    cluster.l2.assoc = 16;
    cluster.l2.lineBytes = 64;
    cluster.l2.hitLatency = 12.0;
    cluster.l2.prefetchDegree = 1;

    cluster.dram.rowHitNs = 35.0;
    cluster.dram.rowMissNs = 80.0;
    return cluster;
}

uarch::ClusterConfig
trueLittleConfig()
{
    uarch::ClusterConfig cluster;
    cluster.name = "cortex-a7";
    cluster.numCores = 4;
    cluster.quantum = 128;

    uarch::CoreConfig &core = cluster.core;
    core.name = "a7";
    core.issueWidth = 1.5;        // partial dual issue
    core.frontendDepth = 8.0;
    core.depStallFactor = 0.70;   // in-order: latency mostly exposed
    core.memStallFactor = 1.00;
    core.latIntMul = 3.0;
    core.latIntDiv = 18.0;
    core.latFpAlu = 5.0;
    core.latFpDiv = 25.0;
    core.latSimd = 5.0;
    core.latLoadToUse = 2.0;

    core.bpKind = uarch::BpKind::Tournament;
    core.tournamentConfig.localEntries = 512;
    core.tournamentConfig.globalEntries = 2048;
    core.tournamentConfig.chooserEntries = 2048;
    core.tournamentConfig.historyBits = 8;
    core.tournamentConfig.btbEntries = 512;
    core.tournamentConfig.rasEntries = 8;
    core.tournamentConfig.indirectEntries = 128;
    core.wrongPathFetchLines = 2;
    core.wrongPathLoads = 0;

    core.l1i.name = "a7.l1i";
    core.l1i.sizeBytes = 32 * 1024;
    core.l1i.assoc = 2;
    core.l1i.lineBytes = 32;
    core.l1i.hitLatency = 1.0;
    core.fetchGroupInsts = 2;

    core.l1d.name = "a7.l1d";
    core.l1d.sizeBytes = 32 * 1024;
    core.l1d.assoc = 4;
    core.l1d.lineBytes = 64;
    core.l1d.hitLatency = 2.0;
    core.l1d.writeStreaming = true;
    core.l1d.streamingThreshold = 1;

    core.itlb.name = "a7.itlb";
    core.itlb.entries = 10;   // micro-TLB
    core.itlb.assoc = 0;
    core.dtlb.name = "a7.dtlb";
    core.dtlb.entries = 10;
    core.dtlb.assoc = 0;
    core.unifiedL2Tlb = true;
    core.l2TlbUnified.name = "a7.l2tlb";
    core.l2TlbUnified.entries = 256;
    core.l2TlbUnified.assoc = 2;
    core.l2TlbUnified.latency = 2.0;
    core.pageWalkLatency = 40.0;

    core.osItlbFlushPeriod = 20000;
    core.barrierCost = 18.0;
    core.isbCost = 10.0;
    core.exclusiveCost = 5.0;
    core.strexFailCost = 9.0;
    core.snoopCost = 22.0;

    cluster.l2.name = "a7.l2";
    cluster.l2.sizeBytes = 512 * 1024;
    cluster.l2.assoc = 8;
    cluster.l2.lineBytes = 64;
    cluster.l2.hitLatency = 8.0;   // the g5 model has this too high
    cluster.l2.prefetchDegree = 0;

    cluster.dram.rowHitNs = 40.0;
    cluster.dram.rowMissNs = 90.0;
    return cluster;
}

const std::vector<OppPoint> &
OdroidXu3Platform::oppTable(CpuCluster cluster)
{
    static const std::vector<OppPoint> little = {
        {200.0, 0.90}, {600.0, 0.95}, {1000.0, 1.05}, {1400.0, 1.25}};
    static const std::vector<OppPoint> big = {
        {600.0, 0.90},
        {1000.0, 1.00},
        {1400.0, 1.10},
        {1800.0, 1.25},
        {2000.0, 1.3625}};
    return cluster == CpuCluster::LittleA7 ? little : big;
}

double
OdroidXu3Platform::voltageFor(CpuCluster cluster, double freq_mhz)
{
    for (const OppPoint &opp : oppTable(cluster)) {
        if (opp.freqMhz == freq_mhz)
            return opp.voltage;
    }
    fatal("no operating point at ", freq_mhz, " MHz on ",
          clusterTag(cluster));
}

namespace {

/** Apply multiplicative board-to-board spread to every coefficient. */
PowerCoefficients
perturbCoefficients(PowerCoefficients c, Rng &rng, double variation)
{
    if (variation <= 0.0)
        return c;
    auto jitter = [&rng, variation](double &field) {
        field *= 1.0 + rng.gaussian(0.0, variation);
        if (field < 0.0)
            field = 0.0;
    };
    jitter(c.staticBase);
    jitter(c.staticPerDegree);
    jitter(c.clockTreePerGhz);
    jitter(c.energyCycle);
    jitter(c.energyInst);
    jitter(c.energyIntMul);
    jitter(c.energyIntDiv);
    jitter(c.energyFp);
    jitter(c.energySimd);
    jitter(c.energyL1dAccess);
    jitter(c.energyL1dMiss);
    jitter(c.energyL1iAccess);
    jitter(c.energyL2Access);
    jitter(c.energyDram);
    jitter(c.energyMispredict);
    jitter(c.energyTlbWalk);
    jitter(c.energyExclusive);
    jitter(c.energyBarrier);
    jitter(c.energySnoop);
    jitter(c.energyUnaligned);
    return c;
}

PowerCoefficients
boardCoefficients(PowerCoefficients base, std::uint64_t seed,
                  std::uint64_t stream, double variation)
{
    Rng rng(seed ^ stream);
    return perturbCoefficients(base, rng, variation);
}

/**
 * Thread-local pool of warm cluster models, keyed by cluster shape
 * and workload memory size. Each model carves its tables from the
 * thread's arena (threadArena()), so a campaign thread builds a
 * given (cluster, memBytes) model exactly once; every later base run
 * reuses it through reset() + memory().clear(), which restores
 * bit-identical fresh-model state without touching the heap
 * (enforced by tests/exec_fastpath_test.cc). The engine selection is
 * re-applied on reuse because a freshly constructed model reads the
 * process-wide default at construction time.
 */
uarch::ClusterModel &
pooledModel(CpuCluster cluster, std::uint64_t mem_bytes)
{
    struct PoolEntry
    {
        CpuCluster cluster;
        std::uint64_t memBytes;
        std::unique_ptr<uarch::ClusterModel> model;
    };
    thread_local std::vector<PoolEntry> pool;
    for (PoolEntry &entry : pool) {
        if (entry.cluster == cluster && entry.memBytes == mem_bytes) {
            entry.model->reset();
            entry.model->memory().clear();
            entry.model->setExecEngine(uarch::defaultExecEngine());
            return *entry.model;
        }
    }
    uarch::ClusterConfig config = cluster == CpuCluster::LittleA7
        ? trueLittleConfig()
        : trueBigConfig();
    config.memBytes = mem_bytes;
    pool.push_back({cluster, mem_bytes,
                    std::make_unique<uarch::ClusterModel>(
                        config, &threadArena())});
    return *pool.back().model;
}

} // namespace

uarch::BatchedSystemModel &
pooledBatchedModel(const std::vector<uarch::BatchPoint> &points)
{
    struct PoolEntry
    {
        std::string key;
        std::unique_ptr<uarch::BatchedSystemModel> model;
    };
    thread_local std::vector<PoolEntry> pool;
    // The batch shape IS the key: per-point exhaustive config
    // signature plus the frequency slot, in point order.
    std::string key;
    for (const uarch::BatchPoint &p : points) {
        key += uarch::clusterConfigSignature(p.config);
        char buf[48];
        std::snprintf(buf, sizeof(buf), "@%a;", p.freqGhz);
        key += buf;
    }
    for (PoolEntry &entry : pool) {
        if (entry.key == key) {
            entry.model->reset();
            entry.model->memory().clear();
            return *entry.model;
        }
    }
    pool.push_back({std::move(key),
                    std::make_unique<uarch::BatchedSystemModel>(
                        points, &threadArena())});
    return *pool.back().model;
}

OdroidXu3Platform::OdroidXu3Platform(std::uint64_t seed,
                                     double board_variation)
    : masterRng(seed),
      pmuSampler(6, 0.004),
      powerSensor(3.8, 0.015),
      thermalModel(24.0, 9.0, 85.0),
      bigPower(boardCoefficients(bigCoefficients(), seed,
                                 0xb16b00b5ULL, board_variation)),
      littlePower(boardCoefficients(littleCoefficients(), seed,
                                    0x11771e77ULL, board_variation))
{
}

const GroundTruthPower &
OdroidXu3Platform::groundTruthPower(CpuCluster cluster) const
{
    return cluster == CpuCluster::LittleA7 ? littlePower : bigPower;
}

void
OdroidXu3Platform::clearCache()
{
    std::lock_guard<std::mutex> lock(cacheMutex);
    runCache.clear();
}

void
OdroidXu3Platform::injectFaults(const FaultConfig &config)
{
    std::lock_guard<std::mutex> lock(attemptMutex);
    faultInjector = FaultInjector(config);
    faultAttempts.clear();
}

void
OdroidXu3Platform::resetFaultAttempts()
{
    std::lock_guard<std::mutex> lock(attemptMutex);
    faultAttempts.clear();
}

std::shared_ptr<OdroidXu3Platform::BaseRunSlot>
OdroidXu3Platform::baseRun(const workload::Workload &work,
                           CpuCluster cluster)
{
    std::string key = clusterTag(cluster) + ":" + work.name;
    std::shared_ptr<BaseRunSlot> slot;
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        std::shared_ptr<BaseRunSlot> &entry = runCache[key];
        if (!entry)
            entry = std::make_shared<BaseRunSlot>();
        slot = entry;
    }
    // The simulation runs outside the cache lock (it can take
    // seconds); the once-flag makes concurrent first callers agree
    // on a single run.
    std::call_once(slot->once, [&] {
        std::uint64_t mem_bytes =
            std::max<std::uint64_t>(work.memBytes, 64 * 1024);
        uarch::ClusterModel &model = pooledModel(cluster, mem_bytes);
        work.prepareMemory(model.memory());
        model.runInto(work.program, work.numThreads, 1.0, slot->run);
    });
    return slot;
}

void
OdroidXu3Platform::installBaseRun(const workload::Workload &work,
                                  CpuCluster cluster,
                                  const uarch::RunResult &run)
{
    std::string key = clusterTag(cluster) + ":" + work.name;
    std::shared_ptr<BaseRunSlot> slot;
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        std::shared_ptr<BaseRunSlot> &entry = runCache[key];
        if (!entry)
            entry = std::make_shared<BaseRunSlot>();
        slot = entry;
    }
    std::call_once(slot->once, [&] { slot->run = run; });
}

HwMeasurement
OdroidXu3Platform::measure(const workload::Workload &work,
                           CpuCluster cluster, double freq_mhz,
                           unsigned repeats)
{
    return measureEvents(work, cluster, freq_mhz,
                         PmuEventTable::allIds(), repeats);
}

HwMeasurement
OdroidXu3Platform::measureAttempt(const workload::Workload &work,
                                  CpuCluster cluster, double freq_mhz,
                                  unsigned attempt, unsigned repeats)
{
    return measureImpl(work, cluster, freq_mhz,
                       PmuEventTable::allIds(), repeats, attempt);
}

HwMeasurement
OdroidXu3Platform::measureEvents(const workload::Workload &work,
                                 CpuCluster cluster, double freq_mhz,
                                 const std::vector<int> &event_ids,
                                 unsigned repeats)
{
    // Legacy attempt accounting: successive calls on the same point
    // are successive attempts, tracked in the shared per-point map.
    unsigned attempt = 0;
    if (faultInjector.active()) {
        std::string point_key = work.name + ":" +
            clusterTag(cluster) + ":" + formatDouble(freq_mhz, 3);
        std::lock_guard<std::mutex> lock(attemptMutex);
        attempt = faultAttempts[point_key]++;
    }
    return measureImpl(work, cluster, freq_mhz, event_ids, repeats,
                       attempt);
}

HwMeasurement
OdroidXu3Platform::measureImpl(const workload::Workload &work,
                               CpuCluster cluster, double freq_mhz,
                               const std::vector<int> &event_ids,
                               unsigned repeats, unsigned attempt)
{
    fatal_if(repeats == 0, "need at least one timing repeat");
    // Between-measurement poll: a cancel or expired deadline aborts
    // before this attempt spends a base run on dead work.
    coopCheckpoint();

    HwMeasurement m;
    m.workload = work.name;
    m.cluster = cluster;
    m.freqMhz = freq_mhz;
    m.voltage = voltageFor(cluster, freq_mhz);

    // Fault plan for this attempt. With the injector inactive the
    // plan is benign and every path below is bit-identical to the
    // fault-free build; a failed run dies before touching anything.
    FaultInjector::Plan plan;
    if (faultInjector.active()) {
        plan = faultInjector.plan(work.name, clusterTag(cluster),
                                  freq_mhz, attempt);
        if (plan.runFails) {
            throw RunError(
                plan.failureKind,
                detail::concatToString(
                    plan.failureKind, ": ", work.name, " on ",
                    clusterTag(cluster), " @ ", freq_mhz,
                    " MHz (attempt ", attempt, ")"));
        }
    }

    std::shared_ptr<BaseRunSlot> slot = baseRun(work, cluster);
    const uarch::RunResult &base = slot->run;
    uarch::RunResult run = uarch::retimeRun(base, freq_mhz / 1000.0);
    m.groundTruth = run.aggregate;

    // Deterministic per-measurement noise stream. Retry attempts mix
    // in the attempt tag (0 on the first attempt, so the clean
    // stream is unchanged) to observe fresh noise.
    Rng rng = masterRng.fork(
        hashString(work.name + clusterTag(cluster)) ^
        static_cast<std::uint64_t>(freq_mhz) ^
        (plan.noiseStreamTag * 0x9e3779b97f4a7c15ULL));

    // Thermal behaviour: power heats the die; at the top A15 OPP the
    // trip point is exceeded and the governor drops a step (this is
    // why the paper capped its experiments at 1.8 GHz).
    const GroundTruthPower &gtp = groundTruthPower(cluster);
    double temp = thermalModel.ambient();
    double power = 0.0;
    for (int iterate = 0; iterate < 4; ++iterate) {
        power = gtp.meanPower(run.aggregate, run.seconds, m.voltage,
                              run.frequencyGhz, temp);
        temp = thermalModel.steadyTemperature(power);
    }
    if (cluster == CpuCluster::BigA15 &&
        thermalModel.throttles(temp)) {
        m.throttled = true;
        // Re-time at the next OPP down.
        const auto &opps = oppTable(cluster);
        double fallback = opps.front().freqMhz;
        for (const OppPoint &opp : opps) {
            if (opp.freqMhz < freq_mhz)
                fallback = std::max(fallback, opp.freqMhz);
        }
        warn("thermal throttle at ", freq_mhz, " MHz; running at ",
             fallback, " MHz");
        run = uarch::retimeRun(base, fallback / 1000.0);
        m.groundTruth = run.aggregate;
        temp = thermalModel.tripPoint();
        power = gtp.meanPower(run.aggregate, run.seconds, m.voltage,
                              run.frequencyGhz, temp);
    }
    // Injected thermal episode: the governor bounces below the
    // requested OPP mid-run, inflating the wall time while the die
    // sits at the trip point. The event record is unchanged — the
    // work done is the same, it just takes longer.
    double fault_time_scale = 1.0;
    if (plan.thermalEpisode) {
        fault_time_scale =
            1.0 + faultInjector.config().thermalSlowdown;
        m.throttled = true;
        temp = std::max(temp, thermalModel.tripPoint());
        warnLimited("fault-thermal-episode", 3,
                    "injected thermal episode on ", work.name, " @ ",
                    freq_mhz, " MHz");
    }
    m.temperatureC = temp;

    // Timing repeats: the true time plus run-to-run jitter (OS noise,
    // DVFS transitions, cache warmth); the median is reported.
    for (unsigned r = 0; r < repeats; ++r) {
        double jitter = 1.0 + std::fabs(rng.gaussian(0.0, 0.006));
        m.repeatSeconds.push_back(run.seconds * fault_time_scale *
                                  jitter);
    }
    m.execSeconds = mlstat::median(m.repeatSeconds);

    // PMC capture across multiplexed instrumented runs (faults may
    // drop a multiplex group or wrap 32-bit counts).
    PmuSampler::CaptureFaults pmu_faults;
    pmu_faults.loseGroup = plan.pmcGroupLoss;
    pmu_faults.lostGroup = plan.lostGroup;
    pmu_faults.overflow = plan.pmcOverflow;
    m.pmc = pmuSampler.captureFaulty(event_ids, run.aggregate, rng,
                                     pmu_faults);
    if (plan.pmcGroupLoss)
        warnLimited("fault-pmc-loss", 3,
                    "lost a PMC multiplex group on ", work.name);

    // Power measurement: the workload is repeated so the cluster is
    // exercised for at least 30 s of sensor time. A stuck sensor
    // replays a stale idle-period sample; a dropout loses part of
    // the averaging window.
    double window = std::max(30.0, run.seconds);
    if (plan.sensorStuck) {
        m.powerWatts = powerSensor.stuckReading(
            power * plan.sensorStuckScale, rng);
        warnLimited("fault-sensor-stuck", 3,
                    "stuck power sensor on ", work.name);
    } else if (plan.sensorDropout) {
        m.powerWatts = powerSensor.measureDegraded(
            power, window, plan.sensorDropFraction, rng);
    } else {
        m.powerWatts = powerSensor.measure(power, window, rng);
    }

    return m;
}

} // namespace gemstone::hwsim
