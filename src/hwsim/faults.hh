/**
 * @file
 * Fault injection for the reference platform.
 *
 * Real measurement campaigns on the ODROID-XU3 fail in recurring
 * ways: the 3.8 Hz INA231 power sensors drop or latch samples, the
 * A15 cluster hits its thermal trip mid-run and smears the timing,
 * PMC multiplexing loses whole counter groups (and 32-bit counters
 * wrap), and individual runs hang or crash outright. The
 * FaultInjector reproduces those failure modes deterministically so
 * the resilient campaign engine (src/gemstone/campaign.hh) can be
 * validated against them.
 *
 * Every fault decision is a pure function of (seed, workload,
 * cluster, frequency, attempt) — independent of campaign order — so
 * an interrupted and resumed campaign replays exactly the faults the
 * uninterrupted campaign would have seen. With FaultConfig disabled
 * (the default) the platform's behaviour is bit-identical to a build
 * without this header.
 */

#ifndef GEMSTONE_HWSIM_FAULTS_HH
#define GEMSTONE_HWSIM_FAULTS_HH

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace gemstone::hwsim {

/**
 * A measurement attempt that produced no usable result: the run hung
 * past its watchdog or the process crashed. Callers retry or give up;
 * the naive flow simply dies.
 */
class RunError : public std::runtime_error
{
  public:
    RunError(std::string kind, const std::string &what);

    /** Fault taxonomy tag, e.g. "hung-run" or "crashed-run". */
    const std::string &kind() const { return faultKind; }

  private:
    std::string faultKind;
};

/**
 * Probabilities of each fault mode, per measurement attempt. All
 * default to zero and nothing is consulted unless @c enabled, so
 * existing results are unchanged by construction.
 */
struct FaultConfig
{
    /** Master switch; false keeps the platform bit-identical. */
    bool enabled = false;

    /** Seed of the fault decision stream (independent of the
     *  platform's observation-noise seed). */
    std::uint64_t seed = 0xfa171ab5ULL;

    /** A run hangs or crashes and yields no measurement. */
    double runFailureProb = 0.0;

    /** A sensor dropout episode loses part of the power samples. */
    double sensorDropoutProb = 0.0;
    /** Fraction of the sensor window lost in a dropout episode. */
    double sensorDropoutFraction = 0.6;

    /** The sensor latches a stale (idle-period) reading. */
    double sensorStuckProb = 0.0;

    /** A multiplexed PMC counter group is lost entirely. */
    double pmcGroupLossProb = 0.0;
    /** A large PMC count wraps at 32 bits. */
    double pmcOverflowProb = 0.0;

    /** A spurious thermal-throttle episode strikes mid-measurement. */
    double thermalEpisodeProb = 0.0;
    /** Relative execution-time inflation during such an episode. */
    double thermalSlowdown = 0.35;

    /**
     * The worker *process* executing a point's prewarm task is
     * SIGKILLed mid-task (exec/procpool.hh re-dispatches the point to
     * another worker). Deliberately excluded from signature() and
     * active(): a killed worker changes no measured value — the
     * re-dispatched task computes the same content-addressed entries
     * — so cache keys and every existing fault stream stay stable.
     */
    double workerCrashProb = 0.0;

    /** True when enabled and at least one fault can fire. */
    bool active() const;

    /**
     * Canonical content signature of this configuration ("off" when
     * inactive). Two configs with the same signature plan identical
     * faults, so the signature is part of the exec::ResultStore
     * cache key for memoised measurements.
     */
    std::string signature() const;

    /**
     * The documented lab fault mix used by tab_fault_resilience and
     * DESIGN.md: every failure mode enabled at rates matching a bad
     * day in the lab (see "Fault model & resilience policy").
     */
    static FaultConfig labMix(std::uint64_t seed = 0xfa171ab5ULL);
};

/**
 * Plans the faults for each measurement attempt.
 *
 * Thread safety: plan() is safe to call concurrently from any number
 * of threads on one injector. The decision streams are pure functions
 * of the arguments and the seed, and the only shared state — the
 * fault tally — uses atomic counters. resetTally() must not race
 * with plan().
 */
class FaultInjector
{
  public:
    FaultInjector() = default;
    explicit FaultInjector(const FaultConfig &config);

    const FaultConfig &config() const { return faultConfig; }
    bool active() const { return faultConfig.active(); }

    /** The faults chosen for one measurement attempt. */
    struct Plan
    {
        bool runFails = false;
        std::string failureKind;    //!< set when runFails

        bool thermalEpisode = false;

        bool sensorDropout = false;
        double sensorDropFraction = 0.0;
        bool sensorStuck = false;
        /** Stale-sample level relative to the true power. */
        double sensorStuckScale = 1.0;

        bool pmcGroupLoss = false;
        unsigned lostGroup = 0;     //!< multiplex group index
        bool pmcOverflow = false;

        /**
         * Extra stream tag mixed into the measurement's noise fork so
         * retry attempts observe fresh noise. 0 for attempt 0, which
         * therefore reproduces the fault-free observation stream.
         */
        std::uint64_t noiseStreamTag = 0;

        /** True when any fault fires in this plan. */
        bool anyFault() const;
    };

    /**
     * Deterministic plan for attempt @p attempt of the point
     * (workload, cluster, freq). Pure in its arguments and the seed;
     * calling it is free of side effects on any other stream.
     */
    Plan plan(const std::string &workload,
              const std::string &cluster_tag, double freq_mhz,
              unsigned attempt) const;

    /**
     * Deterministic decision whether the worker process dispatched
     * this point's prewarm task dies by SIGKILL (campaign worker
     * pools only; see CampaignConfig::workers). Drawn from a stream
     * independent of plan()'s — adding this mode shifts no existing
     * fault decision — and keyed by point, not attempt: the crash
     * fires on the first dispatch and the re-dispatched task runs
     * clean.
     */
    bool workerCrashPlanned(const std::string &workload,
                            const std::string &cluster_tag,
                            double freq_mhz) const;

    /**
     * Injected-fault totals, for campaign reports. The counters are
     * atomic so concurrent plan() calls from campaign worker threads
     * tally correctly; individual reads are exact once the campaign
     * has settled (and the total is deterministic because the set of
     * planned attempts is, regardless of thread count).
     */
    struct Tally
    {
        std::atomic<unsigned> plans{0};  //!< attempts planned
        std::atomic<unsigned> runFailures{0};
        std::atomic<unsigned> thermalEpisodes{0};
        std::atomic<unsigned> sensorDropouts{0};
        std::atomic<unsigned> sensorStuck{0};
        std::atomic<unsigned> pmcGroupLosses{0};
        std::atomic<unsigned> pmcOverflows{0};
        std::atomic<unsigned> workerCrashes{0};

        Tally() = default;
        // Copies snapshot the counters (atomics are not copyable),
        // which keeps FaultInjector assignable.
        Tally(const Tally &other) { *this = other; }
        Tally &operator=(const Tally &other);
    };

    const Tally &tally() const { return faultTally; }
    void resetTally();

  private:
    FaultConfig faultConfig;
    mutable Tally faultTally;
};

} // namespace gemstone::hwsim

#endif // GEMSTONE_HWSIM_FAULTS_HH
