/**
 * @file
 * Ground-truth power model and the on-board power sensor.
 *
 * The ODROID-XU3's per-cluster power sensors are replaced by a hidden
 * ground-truth power function — static leakage (voltage- and
 * temperature-dependent) plus per-event dynamic energies scaled by
 * V^2 — and a sensor model that averages at 3.8 Hz with reading
 * noise. The Powmon-style model building (src/powmon) never sees this
 * function; it must recover a PMC-rate model from noisy observations,
 * exactly as the paper's flow does against real silicon.
 */

#ifndef GEMSTONE_HWSIM_POWER_HH
#define GEMSTONE_HWSIM_POWER_HH

#include "uarch/events.hh"
#include "util/random.hh"

namespace gemstone::hwsim {

/** Per-event dynamic energies (nanojoules at 1.0 V). */
struct PowerCoefficients
{
    double staticBase = 0.10;     //!< leakage W at 1 V, 25 C
    double staticPerDegree = 0.004; //!< leakage growth per Kelvin
    double clockTreePerGhz = 0.12;  //!< W per GHz at 1 V (idle clock)

    double energyCycle = 0.10;      //!< nJ per active cycle
    double energyInst = 0.06;
    double energyIntMul = 0.08;
    double energyIntDiv = 0.35;
    double energyFp = 0.18;
    double energySimd = 0.24;
    double energyL1dAccess = 0.09;
    double energyL1dMiss = 0.45;
    double energyL1iAccess = 0.05;
    double energyL2Access = 0.60;
    double energyDram = 3.50;
    double energyMispredict = 0.40;
    double energyTlbWalk = 0.55;
    double energyExclusive = 0.12;
    double energyBarrier = 0.15;
    double energySnoop = 0.50;
    double energyUnaligned = 0.06;
};

/** Cortex-A15-class coefficients. */
PowerCoefficients bigCoefficients();

/** Cortex-A7-class coefficients (roughly a quarter of the big core). */
PowerCoefficients littleCoefficients();

/**
 * The hidden ground-truth power function.
 */
class GroundTruthPower
{
  public:
    explicit GroundTruthPower(const PowerCoefficients &coefficients);

    /**
     * Mean power over a run.
     * @param events the run's event record (aggregate)
     * @param seconds run duration
     * @param voltage supply voltage (V)
     * @param freq_ghz core clock
     * @param temperature die temperature (C)
     */
    double meanPower(const uarch::EventCounts &events, double seconds,
                     double voltage, double freq_ghz,
                     double temperature) const;

    const PowerCoefficients &coefficients() const { return coeffs; }

  private:
    PowerCoefficients coeffs;
};

/**
 * The 3.8 Hz averaging power sensor.
 */
class PowerSensor
{
  public:
    /**
     * @param sample_hz sensor report rate (3.8 on the XU3)
     * @param reading_sigma relative noise of one reported sample
     */
    PowerSensor(double sample_hz, double reading_sigma);

    /**
     * Observe a run of the given duration and true mean power.
     * The paper repeats workloads so the CPU is exercised for at
     * least 30 s; pass that effective duration here — more samples
     * mean less noise on the mean.
     */
    double measure(double true_power, double duration_seconds,
                   Rng &rng) const;

    /**
     * Observation through a degraded sensor: a dropout episode lost
     * @p dropped_fraction of the window's samples, so the reported
     * mean is averaged over correspondingly fewer samples (noisier).
     * A fraction of 0 is exactly measure().
     */
    double measureDegraded(double true_power,
                           double duration_seconds,
                           double dropped_fraction, Rng &rng) const;

    /**
     * A stuck sensor: the interface keeps returning one stale sample
     * taken when the cluster drew @p stale_power. Single-sample
     * noise applies; the window length is irrelevant.
     */
    double stuckReading(double stale_power, Rng &rng) const;

    double sampleRateHz() const { return sampleHz; }

  private:
    double sampleHz;
    double readingSigma;
};

/**
 * First-order thermal model: die temperature settles at
 * ambient + thermal resistance x power, and the A15 cluster throttles
 * when it exceeds the trip point (the paper hit this at 2 GHz).
 */
class ThermalModel
{
  public:
    ThermalModel(double ambient_c, double c_per_watt, double trip_c);

    /** Steady-state temperature at the given power. */
    double steadyTemperature(double power_watts) const;

    /** True if the temperature exceeds the throttle trip point. */
    bool throttles(double temperature_c) const;

    double ambient() const { return ambientC; }
    double tripPoint() const { return tripC; }

  private:
    double ambientC;
    double cPerWatt;
    double tripC;
};

} // namespace gemstone::hwsim

#endif // GEMSTONE_HWSIM_POWER_HH
