/**
 * @file
 * PMU event table and multiplexed sampler.
 */

#include "hwsim/pmu.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace gemstone::hwsim {

std::string
pmcIdString(int id)
{
    char buffer[16];
    std::snprintf(buffer, sizeof(buffer), "0x%02X", id);
    return buffer;
}

namespace {

using uarch::EventCounts;

std::vector<PmcEvent>
buildTable()
{
    std::vector<PmcEvent> t;
    auto ev = [&t](int id, const char *name, const char *desc,
                   std::function<double(const EventCounts &)> fn) {
        t.push_back({id, name, desc, std::move(fn)});
    };

    // Architectural events (0x00 - 0x1D).
    ev(0x01, "L1I_CACHE_REFILL", "L1 instruction cache refill",
       [](const EventCounts &e) { return double(e.l1iMisses); });
    ev(0x02, "L1I_TLB_REFILL", "L1 instruction TLB refill",
       [](const EventCounts &e) { return double(e.itlbMisses); });
    ev(0x03, "L1D_CACHE_REFILL", "L1 data cache refill",
       [](const EventCounts &e) { return double(e.l1dMisses); });
    ev(0x04, "L1D_CACHE", "L1 data cache access",
       [](const EventCounts &e) { return double(e.l1dAccesses); });
    ev(0x05, "L1D_TLB_REFILL", "L1 data TLB refill",
       [](const EventCounts &e) { return double(e.dtlbMisses); });
    ev(0x06, "LD_RETIRED", "architecturally executed load",
       [](const EventCounts &e) { return double(e.loadOps); });
    ev(0x07, "ST_RETIRED", "architecturally executed store",
       [](const EventCounts &e) { return double(e.storeOps); });
    ev(0x08, "INST_RETIRED", "architecturally executed instruction",
       [](const EventCounts &e) { return double(e.instructions); });
    ev(0x0C, "PC_WRITE_RETIRED", "software change of the PC",
       [](const EventCounts &e) { return double(e.branches); });
    ev(0x0D, "BR_IMMED_RETIRED", "immediate branch",
       [](const EventCounts &e) {
           return double(e.immedBranches + e.condBranches +
                         e.callBranches);
       });
    ev(0x0E, "BR_RETURN_RETIRED", "procedure return",
       [](const EventCounts &e) { return double(e.returnBranches); });
    ev(0x0F, "UNALIGNED_LDST_RETIRED", "unaligned load or store",
       [](const EventCounts &e) {
           return double(e.unalignedAccesses);
       });
    ev(0x10, "BR_MIS_PRED", "mispredicted branch",
       [](const EventCounts &e) {
           return double(e.branchMispredicts);
       });
    ev(0x11, "CPU_CYCLES", "active CPU cycles",
       [](const EventCounts &e) { return e.cycles; });
    ev(0x12, "BR_PRED", "predictable branch",
       [](const EventCounts &e) { return double(e.branches); });
    ev(0x13, "MEM_ACCESS", "data memory access",
       [](const EventCounts &e) { return double(e.l1dAccesses); });
    ev(0x14, "L1I_CACHE", "L1 instruction cache access",
       [](const EventCounts &e) { return double(e.l1iAccesses); });
    ev(0x15, "L1D_CACHE_WB", "L1 data cache write-back",
       [](const EventCounts &e) { return double(e.l1dWritebacks); });
    ev(0x16, "L2D_CACHE", "L2 data cache access",
       [](const EventCounts &e) { return double(e.l2Accesses); });
    ev(0x17, "L2D_CACHE_REFILL", "L2 data cache refill",
       [](const EventCounts &e) { return double(e.l2Misses); });
    ev(0x18, "L2D_CACHE_WB", "L2 data cache write-back",
       [](const EventCounts &e) { return double(e.l2Writebacks); });
    ev(0x19, "BUS_ACCESS", "external bus access",
       [](const EventCounts &e) { return double(e.busAccesses); });
    ev(0x1B, "INST_SPEC", "speculatively executed instruction",
       [](const EventCounts &e) { return double(e.instSpec); });
    ev(0x1D, "BUS_CYCLES", "bus cycles",
       [](const EventCounts &e) { return e.cycles * 0.5; });

    // Implementation-defined events (0x40 - 0x7E).
    ev(0x40, "L1D_CACHE_LD", "L1D read access",
       [](const EventCounts &e) {
           return double(e.l1dReadAccesses);
       });
    ev(0x41, "L1D_CACHE_ST", "L1D write access",
       [](const EventCounts &e) {
           return double(e.l1dWriteAccesses);
       });
    ev(0x42, "L1D_CACHE_REFILL_LD", "L1D refill caused by a read",
       [](const EventCounts &e) { return double(e.l1dReadMisses); });
    ev(0x43, "L1D_CACHE_REFILL_WR", "L1D refill caused by a write",
       [](const EventCounts &e) { return double(e.l1dWriteMisses); });
    ev(0x46, "L1D_CACHE_WB_VICTIM", "L1D write-back victim",
       [](const EventCounts &e) { return double(e.l1dWritebacks); });
    ev(0x48, "L1D_CACHE_INVAL", "L1D invalidation (coherence)",
       [](const EventCounts &e) { return double(e.snoops); });
    ev(0x4C, "L1D_TLB_REFILL_LD", "L1 DTLB refill on a read",
       [](const EventCounts &e) {
           double total = double(e.loadOps + e.storeOps);
           double share = total > 0 ? e.loadOps / total : 0.5;
           return double(e.dtlbMisses) * share;
       });
    ev(0x4D, "L1D_TLB_REFILL_ST", "L1 DTLB refill on a write",
       [](const EventCounts &e) {
           double total = double(e.loadOps + e.storeOps);
           double share = total > 0 ? e.storeOps / total : 0.5;
           return double(e.dtlbMisses) * share;
       });
    ev(0x50, "L2D_CACHE_LD", "L2 read access",
       [](const EventCounts &e) {
           return double(e.l2Accesses > e.l2Writebacks
                             ? e.l2Accesses - e.l2Writebacks
                             : 0);
       });
    ev(0x51, "L2D_CACHE_ST", "L2 write access",
       [](const EventCounts &e) { return double(e.l2Writebacks); });
    ev(0x52, "L2D_CACHE_REFILL_LD", "L2 refill on a read",
       [](const EventCounts &e) { return double(e.l2Misses); });
    ev(0x56, "L2D_CACHE_WB_VICTIM", "L2 write-back victim",
       [](const EventCounts &e) { return double(e.l2Writebacks); });
    ev(0x60, "BUS_ACCESS_LD", "bus read access",
       [](const EventCounts &e) { return double(e.dramReads); });
    ev(0x61, "BUS_ACCESS_ST", "bus write access",
       [](const EventCounts &e) { return double(e.dramWrites); });
    ev(0x66, "MEM_ACCESS_LD", "issued data read",
       [](const EventCounts &e) { return double(e.loadOps); });
    ev(0x67, "MEM_ACCESS_ST", "issued data write",
       [](const EventCounts &e) { return double(e.storeOps); });
    ev(0x68, "UNALIGNED_LD_SPEC", "speculative unaligned read",
       [](const EventCounts &e) {
           return double(e.unalignedAccesses) * 0.5;
       });
    ev(0x69, "UNALIGNED_ST_SPEC", "speculative unaligned write",
       [](const EventCounts &e) {
           return double(e.unalignedAccesses) * 0.5;
       });
    ev(0x6A, "UNALIGNED_LDST_SPEC", "speculative unaligned access",
       [](const EventCounts &e) {
           return double(e.unalignedAccesses);
       });
    ev(0x6C, "LDREX_SPEC", "speculative LDREX",
       [](const EventCounts &e) { return double(e.ldrexOps); });
    ev(0x6D, "STREX_PASS_SPEC", "STREX that passed",
       [](const EventCounts &e) {
           return double(e.strexOps - e.strexFails);
       });
    ev(0x6E, "STREX_FAIL_SPEC", "STREX that failed",
       [](const EventCounts &e) { return double(e.strexFails); });
    ev(0x70, "LD_SPEC", "speculative load",
       [](const EventCounts &e) { return double(e.loadOps); });
    ev(0x71, "ST_SPEC", "speculative store",
       [](const EventCounts &e) { return double(e.storeOps); });
    ev(0x72, "LDST_SPEC", "speculative load or store",
       [](const EventCounts &e) {
           return double(e.loadOps + e.storeOps);
       });
    ev(0x73, "DP_SPEC", "speculative integer data processing",
       [](const EventCounts &e) {
           return double(e.intAluOps + e.intMulOps + e.intDivOps);
       });
    ev(0x74, "ASE_SPEC", "speculative advanced SIMD",
       [](const EventCounts &e) { return double(e.simdOps); });
    ev(0x75, "VFP_SPEC", "speculative scalar VFP",
       [](const EventCounts &e) { return double(e.fpOps); });
    ev(0x76, "PC_WRITE_SPEC", "speculative software PC change",
       [](const EventCounts &e) {
           return double(e.branches + e.branchMispredicts);
       });
    ev(0x78, "BR_IMMED_SPEC", "speculative immediate branch",
       [](const EventCounts &e) {
           return double(e.immedBranches + e.condBranches +
                         e.callBranches);
       });
    ev(0x79, "BR_RETURN_SPEC", "speculative procedure return",
       [](const EventCounts &e) { return double(e.returnBranches); });
    ev(0x7A, "BR_INDIRECT_SPEC", "speculative indirect branch",
       [](const EventCounts &e) {
           return double(e.indirectBranches + e.returnBranches);
       });
    ev(0x7C, "ISB_SPEC", "ISB barrier",
       [](const EventCounts &e) { return double(e.isbs); });
    ev(0x7D, "DSB_SPEC", "DSB barrier",
       [](const EventCounts &e) { return double(e.barriers); });
    ev(0x7E, "DMB_SPEC", "DMB barrier",
       [](const EventCounts &e) { return double(e.barriers); });

    // Chip-specific extras (0xC0+), as found on the Exynos PMU.
    ev(0xC0, "SNOOPS", "coherent snoop hits",
       [](const EventCounts &e) { return double(e.snoops); });
    ev(0xC1, "L2_PREFETCH", "L2 prefetch issued",
       [](const EventCounts &e) { return double(e.l2Prefetches); });
    ev(0xC2, "L2_PREFETCH_HIT", "demand hit on a prefetched line",
       [](const EventCounts &e) {
           return double(e.l2PrefetchHits);
       });
    ev(0xC3, "DTLB_WALK", "data-side page-table walk",
       [](const EventCounts &e) { return double(e.dtlbWalks); });
    ev(0xC4, "ITLB_WALK", "instruction-side page-table walk",
       [](const EventCounts &e) { return double(e.itlbWalks); });
    ev(0xC5, "L2_TLB_ACCESS", "unified L2 TLB access",
       [](const EventCounts &e) {
           return double(e.l2ItlbAccesses + e.l2DtlbAccesses);
       });
    ev(0xC6, "STALL_FRONTEND", "cycles stalled in the front end",
       [](const EventCounts &e) {
           return e.stallCyclesFrontend + e.stallCyclesBranch;
       });
    ev(0xC7, "STALL_BACKEND", "cycles stalled in the back end",
       [](const EventCounts &e) {
           return e.stallCyclesMem + e.stallCyclesExec;
       });
    ev(0xC8, "STALL_SYNC", "cycles stalled on synchronisation",
       [](const EventCounts &e) { return e.stallCyclesSync; });
    ev(0xC9, "INT_MUL_SPEC", "speculative integer multiply",
       [](const EventCounts &e) { return double(e.intMulOps); });
    ev(0xCA, "INT_DIV_SPEC", "speculative integer divide",
       [](const EventCounts &e) { return double(e.intDivOps); });
    ev(0xCB, "RAS_USED", "return-address stack predictions",
       [](const EventCounts &e) { return double(e.usedRas); });
    ev(0xCC, "RAS_INCORRECT", "incorrect RAS predictions",
       [](const EventCounts &e) { return double(e.rasIncorrect); });
    ev(0xCD, "IND_BR_MIS_PRED", "mispredicted indirect branch",
       [](const EventCounts &e) {
           return double(e.indirectMispredicts);
       });

    return t;
}

} // namespace

const std::vector<PmcEvent> &
PmuEventTable::events()
{
    static const std::vector<PmcEvent> table = buildTable();
    return table;
}

const PmcEvent *
PmuEventTable::find(int id)
{
    for (const PmcEvent &event : events()) {
        if (event.id == id)
            return &event;
    }
    return nullptr;
}

const PmcEvent *
PmuEventTable::findByName(const std::string &name)
{
    for (const PmcEvent &event : events()) {
        if (event.name == name)
            return &event;
    }
    return nullptr;
}

std::vector<int>
PmuEventTable::allIds()
{
    std::vector<int> ids;
    ids.reserve(events().size());
    for (const PmcEvent &event : events())
        ids.push_back(event.id);
    return ids;
}

PmuSampler::PmuSampler(unsigned counter_slots, double noise_sigma)
    : counterSlots(counter_slots), noiseSigma(noise_sigma)
{
    fatal_if(counter_slots == 0, "PMU needs at least one counter");
}

unsigned
PmuSampler::runsNeeded(std::size_t event_count) const
{
    return static_cast<unsigned>(
        (event_count + counterSlots - 1) / counterSlots);
}

std::map<int, double>
PmuSampler::capture(const std::vector<int> &event_ids,
                    const uarch::EventCounts &truth, Rng &rng) const
{
    std::map<int, double> out;
    // Each group of counterSlots events shares one emulated run, and
    // therefore one run-to-run perturbation draw.
    double run_scale = 1.0;
    for (std::size_t i = 0; i < event_ids.size(); ++i) {
        if (i % counterSlots == 0)
            run_scale = 1.0 + rng.gaussian(0.0, noiseSigma);
        const PmcEvent *event = PmuEventTable::find(event_ids[i]);
        panic_if(!event, "unknown PMC event ", event_ids[i]);
        double true_count = event->extract(truth);
        double measured = true_count * run_scale;
        // Counts are integers on real hardware; keep sub-one values
        // exact so rates of rare events stay meaningful.
        out[event_ids[i]] = measured < 0 ? 0.0 : measured;
    }
    return out;
}

std::map<int, double>
PmuSampler::captureFaulty(const std::vector<int> &event_ids,
                          const uarch::EventCounts &truth, Rng &rng,
                          const CaptureFaults &faults) const
{
    std::map<int, double> out = capture(event_ids, truth, rng);
    if (faults.loseGroup && !event_ids.empty()) {
        unsigned groups = runsNeeded(event_ids.size());
        unsigned lost = faults.lostGroup % groups;
        std::size_t first = std::size_t{lost} * counterSlots;
        std::size_t last = std::min(first + counterSlots,
                                    event_ids.size());
        for (std::size_t i = first; i < last; ++i)
            out.erase(event_ids[i]);
    }
    if (faults.overflow) {
        constexpr double kCounterWrap = 4294967296.0;  // 2^32
        for (auto &[id, count] : out) {
            if (count >= kCounterWrap)
                count = std::fmod(count, kCounterWrap);
        }
    }
    return out;
}

} // namespace gemstone::hwsim
