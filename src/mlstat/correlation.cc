/**
 * @file
 * Pearson correlation implementation.
 */

#include "mlstat/correlation.hh"

#include <cmath>

#include "util/logging.hh"

namespace gemstone::mlstat {

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    panic_if(x.size() != y.size(), "pearson shape mismatch");
    const std::size_t n = x.size();
    if (n < 2)
        return 0.0;

    double mean_x = 0.0;
    double mean_y = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        mean_x += x[i];
        mean_y += y[i];
    }
    mean_x /= static_cast<double>(n);
    mean_y /= static_cast<double>(n);

    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double dx = x[i] - mean_x;
        double dy = y[i] - mean_y;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx < 1e-24 || syy < 1e-24)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

linalg::Matrix
correlationMatrix(const std::vector<std::vector<double>> &series)
{
    const std::size_t k = series.size();
    linalg::Matrix r(k, k);
    for (std::size_t i = 0; i < k; ++i) {
        r.at(i, i) = 1.0;
        for (std::size_t j = i + 1; j < k; ++j) {
            double rho = pearson(series[i], series[j]);
            r.at(i, j) = rho;
            r.at(j, i) = rho;
        }
    }
    return r;
}

std::vector<double>
correlateAgainst(const std::vector<std::vector<double>> &series,
                 const std::vector<double> &target)
{
    std::vector<double> out;
    out.reserve(series.size());
    for (const auto &s : series)
        out.push_back(pearson(s, target));
    return out;
}

} // namespace gemstone::mlstat
