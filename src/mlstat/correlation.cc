/**
 * @file
 * Pearson correlation implementation.
 */

#include "mlstat/correlation.hh"

#include <cmath>

#include "exec/parallel.hh"
#include "util/logging.hh"

namespace gemstone::mlstat {

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    panic_if(x.size() != y.size(), "pearson shape mismatch");
    const std::size_t n = x.size();
    if (n < 2)
        return 0.0;

    double mean_x = 0.0;
    double mean_y = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        mean_x += x[i];
        mean_y += y[i];
    }
    mean_x /= static_cast<double>(n);
    mean_y /= static_cast<double>(n);

    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double dx = x[i] - mean_x;
        double dy = y[i] - mean_y;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx < 1e-24 || syy < 1e-24)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

linalg::Matrix
correlationMatrix(const std::vector<std::vector<double>> &series,
                  unsigned jobs)
{
    const std::size_t k = series.size();
    linalg::Matrix r(k, k);
    if (k == 0)
        return r;

    const std::size_t n = series.front().size();
    if (k > 1) {
        for (const auto &s : series)
            panic_if(s.size() != n, "pearson shape mismatch");
    }
    if (n < 2 || k < 2) {
        for (std::size_t i = 0; i < k; ++i)
            r.at(i, i) = 1.0;
        return r;
    }

    // Centre each series once and precompute its squared norm. The
    // per-series mean and sum-of-squares loops below, and the per-
    // pair cross-product loop, accumulate in the same index order as
    // pairwise pearson(), so every entry is bit-identical to it.
    linalg::Matrix centred(k, n);
    std::vector<double> sq(k, 0.0);
    exec::parallelFor(jobs, k, [&](std::size_t i) {
        const std::vector<double> &s = series[i];
        double mean = 0.0;
        for (std::size_t t = 0; t < n; ++t)
            mean += s[t];
        mean /= static_cast<double>(n);
        double *dst = centred.row(i);
        double sxx = 0.0;
        for (std::size_t t = 0; t < n; ++t) {
            double d = s[t] - mean;
            dst[t] = d;
            sxx += d * d;
        }
        sq[i] = sxx;
    });

    // One dot product per pair, rows fanned over the pool; each row
    // writes only its own upper-triangle slots (index-addressed), so
    // the matrix is identical at any jobs count.
    double *out = r.data();
    exec::parallelFor(jobs, k, [&](std::size_t i) {
        out[i * k + i] = 1.0;
        const double *di = centred.row(i);
        for (std::size_t j = i + 1; j < k; ++j) {
            const double *dj = centred.row(j);
            double sxy = 0.0;
            for (std::size_t t = 0; t < n; ++t)
                sxy += di[t] * dj[t];
            double rho = (sq[i] < 1e-24 || sq[j] < 1e-24)
                ? 0.0
                : sxy / std::sqrt(sq[i] * sq[j]);
            out[i * k + j] = rho;
        }
    });
    for (std::size_t i = 0; i < k; ++i)
        for (std::size_t j = i + 1; j < k; ++j)
            out[j * k + i] = out[i * k + j];
    return r;
}

std::vector<double>
correlateAgainst(const std::vector<std::vector<double>> &series,
                 const std::vector<double> &target)
{
    std::vector<double> out;
    out.reserve(series.size());
    for (const auto &s : series)
        out.push_back(pearson(s, target));
    return out;
}

} // namespace gemstone::mlstat
