/**
 * @file
 * Probability distribution functions for regression inference.
 *
 * Only what OLS inference needs: the regularised incomplete beta
 * function, Student-t CDF, and two-sided t-test p-values. Implemented
 * with Lentz's continued-fraction algorithm, matching the classic
 * Numerical-Recipes formulation.
 */

#ifndef GEMSTONE_MLSTAT_DISTRIBUTIONS_HH
#define GEMSTONE_MLSTAT_DISTRIBUTIONS_HH

namespace gemstone::mlstat {

/**
 * Regularised incomplete beta function I_x(a, b).
 * @param a first shape parameter (> 0)
 * @param b second shape parameter (> 0)
 * @param x evaluation point in [0, 1]
 */
double incompleteBeta(double a, double b, double x);

/** Student-t cumulative distribution with df degrees of freedom. */
double studentTCdf(double t, double df);

/** Two-sided p-value for a t statistic with df degrees of freedom. */
double twoSidedPValue(double t, double df);

/** Standard normal CDF (used by noise-model tests). */
double normalCdf(double z);

} // namespace gemstone::mlstat

#endif // GEMSTONE_MLSTAT_DISTRIBUTIONS_HH
