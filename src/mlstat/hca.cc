/**
 * @file
 * Agglomerative clustering implementation (Lance-Williams updates).
 */

#include "mlstat/hca.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "mlstat/correlation.hh"
#include "mlstat/descriptive.hh"
#include "util/logging.hh"

namespace gemstone::mlstat {

linalg::Matrix
euclideanDistances(const std::vector<std::vector<double>> &features,
                   bool zscore_columns)
{
    const std::size_t n = features.size();
    panic_if(n == 0, "euclideanDistances needs at least one row");
    const std::size_t d = features.front().size();
    for (const auto &row : features)
        panic_if(row.size() != d, "ragged feature matrix");

    // Optionally z-score each column so no single event dominates.
    std::vector<std::vector<double>> normalised = features;
    if (zscore_columns) {
        for (std::size_t c = 0; c < d; ++c) {
            std::vector<double> column(n);
            for (std::size_t r = 0; r < n; ++r)
                column[r] = features[r][c];
            std::vector<double> z = zscore(column);
            for (std::size_t r = 0; r < n; ++r)
                normalised[r][c] = z[r];
        }
    }

    linalg::Matrix dist(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            double sum = 0.0;
            for (std::size_t c = 0; c < d; ++c) {
                double diff = normalised[i][c] - normalised[j][c];
                sum += diff * diff;
            }
            double value = std::sqrt(sum);
            dist.at(i, j) = value;
            dist.at(j, i) = value;
        }
    }
    return dist;
}

linalg::Matrix
correlationDistances(const std::vector<std::vector<double>> &series)
{
    const std::size_t n = series.size();
    linalg::Matrix dist(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            double rho = pearson(series[i], series[j]);
            double value = 1.0 - std::fabs(rho);
            dist.at(i, j) = value;
            dist.at(j, i) = value;
        }
    }
    return dist;
}

HcaResult
agglomerate(const linalg::Matrix &distances, Linkage linkage)
{
    panic_if(distances.rows() != distances.cols(),
             "distance matrix must be square");
    const std::size_t n = distances.rows();
    panic_if(n == 0, "cannot cluster zero items");

    HcaResult result;
    result.leafCount = n;
    if (n == 1)
        return result;

    // Active cluster list: node id and current size. Distances between
    // active clusters are kept in a map keyed by (min id, max id).
    struct Active
    {
        std::size_t node;
        std::size_t size;
    };
    std::vector<Active> active;
    active.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        active.push_back({i, 1});

    std::map<std::pair<std::size_t, std::size_t>, double> pair_dist;
    auto key = [](std::size_t a, std::size_t b) {
        return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    };
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
            pair_dist[key(i, j)] = distances.at(i, j);

    std::size_t next_node = n;
    while (active.size() > 1) {
        // Find the closest active pair.
        double best = std::numeric_limits<double>::infinity();
        std::size_t bi = 0;
        std::size_t bj = 1;
        for (std::size_t i = 0; i < active.size(); ++i) {
            for (std::size_t j = i + 1; j < active.size(); ++j) {
                double d =
                    pair_dist[key(active[i].node, active[j].node)];
                if (d < best) {
                    best = d;
                    bi = i;
                    bj = j;
                }
            }
        }

        Active left = active[bi];
        Active right = active[bj];
        std::size_t merged_size = left.size + right.size;
        result.merges.push_back(
            {left.node, right.node, best, merged_size});

        // Lance-Williams distance updates to every other cluster.
        for (std::size_t i = 0; i < active.size(); ++i) {
            if (i == bi || i == bj)
                continue;
            std::size_t other = active[i].node;
            double d_left = pair_dist[key(left.node, other)];
            double d_right = pair_dist[key(right.node, other)];
            double updated = 0.0;
            switch (linkage) {
              case Linkage::Single:
                updated = std::min(d_left, d_right);
                break;
              case Linkage::Complete:
                updated = std::max(d_left, d_right);
                break;
              case Linkage::Average:
                updated = (d_left * static_cast<double>(left.size) +
                           d_right * static_cast<double>(right.size)) /
                    static_cast<double>(merged_size);
                break;
            }
            pair_dist[key(next_node, other)] = updated;
        }

        // Replace the two merged entries with the new node.
        active.erase(active.begin() + static_cast<long>(bj));
        active[bi] = {next_node, merged_size};
        ++next_node;
    }

    return result;
}

namespace {

/** Recursively collect leaves under a node id. */
void
collectLeaves(const HcaResult &hca, std::size_t node,
              std::vector<std::size_t> &out)
{
    if (node < hca.leafCount) {
        out.push_back(node);
        return;
    }
    const MergeStep &merge = hca.merges[node - hca.leafCount];
    collectLeaves(hca, merge.left, out);
    collectLeaves(hca, merge.right, out);
}

} // namespace

std::vector<std::size_t>
HcaResult::leafOrder() const
{
    std::vector<std::size_t> order;
    order.reserve(leafCount);
    if (merges.empty()) {
        for (std::size_t i = 0; i < leafCount; ++i)
            order.push_back(i);
        return order;
    }
    collectLeaves(*this, leafCount + merges.size() - 1, order);
    return order;
}

std::vector<std::size_t>
HcaResult::cutToClusters(std::size_t cluster_count) const
{
    panic_if(cluster_count == 0, "cannot cut to zero clusters");
    cluster_count = std::min(cluster_count, leafCount);

    // Undo the last (cluster_count - 1) merges: the roots remaining
    // after applying the first n - cluster_count merges are clusters.
    std::size_t applied =
        leafCount >= cluster_count ? leafCount - cluster_count : 0;

    std::vector<std::size_t> roots;
    std::vector<bool> consumed(leafCount + merges.size(), false);
    for (std::size_t m = 0; m < applied; ++m) {
        consumed[merges[m].left] = true;
        consumed[merges[m].right] = true;
    }
    for (std::size_t node = 0; node < leafCount + applied; ++node) {
        if (!consumed[node])
            roots.push_back(node);
    }

    std::vector<std::size_t> labels(leafCount, 0);
    std::size_t next_label = 1;

    // Label roots in dendrogram leaf-order so cluster numbers read
    // left-to-right in figures.
    std::vector<std::size_t> order = leafOrder();
    std::vector<std::size_t> leaf_root(leafCount, SIZE_MAX);
    for (std::size_t root : roots) {
        std::vector<std::size_t> leaves;
        collectLeaves(*this, root, leaves);
        for (std::size_t leaf : leaves)
            leaf_root[leaf] = root;
    }
    std::map<std::size_t, std::size_t> root_label;
    for (std::size_t leaf : order) {
        std::size_t root = leaf_root[leaf];
        auto it = root_label.find(root);
        if (it == root_label.end())
            root_label[root] = next_label++;
    }
    for (std::size_t leaf = 0; leaf < leafCount; ++leaf)
        labels[leaf] = root_label[leaf_root[leaf]];
    return labels;
}

std::vector<std::size_t>
HcaResult::cutAtHeight(double height) const
{
    std::size_t below = 0;
    for (const auto &merge : merges) {
        if (merge.height <= height)
            ++below;
    }
    return cutToClusters(leafCount - below);
}

} // namespace gemstone::mlstat
