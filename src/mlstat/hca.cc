/**
 * @file
 * Agglomerative clustering implementation (Lance-Williams updates).
 *
 * agglomerateReference() is the original greedy O(n³) min-scan, kept
 * verbatim as the oracle. agglomerateNnChain() finds the same merges
 * in O(n²) via the nearest-neighbour chain, then replays them in the
 * greedy's order — recomputing every Lance-Williams update with the
 * greedy's exact operands — so the emitted dendrogram (node ids,
 * left/right orientation, heights) is bit-identical to the oracle's
 * whenever minimum distances are unique. DESIGN.md §13 carries the
 * reducibility argument.
 */

#include "mlstat/hca.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "exec/parallel.hh"
#include "mlstat/analysispath.hh"
#include "mlstat/correlation.hh"
#include "mlstat/descriptive.hh"
#include "util/logging.hh"

namespace gemstone::mlstat {

linalg::Matrix
euclideanDistances(const std::vector<std::vector<double>> &features,
                   bool zscore_columns, unsigned jobs)
{
    const std::size_t n = features.size();
    panic_if(n == 0, "euclideanDistances needs at least one row");
    const std::size_t d = features.front().size();
    for (const auto &row : features)
        panic_if(row.size() != d, "ragged feature matrix");

    // Optionally z-score each column so no single event dominates.
    std::vector<std::vector<double>> normalised = features;
    if (zscore_columns) {
        for (std::size_t c = 0; c < d; ++c) {
            std::vector<double> column(n);
            for (std::size_t r = 0; r < n; ++r)
                column[r] = features[r][c];
            std::vector<double> z = zscore(column);
            for (std::size_t r = 0; r < n; ++r)
                normalised[r][c] = z[r];
        }
    }

    // Each worker owns row i's upper triangle plus its mirror column;
    // no two workers touch the same element, so the matrix is
    // identical at any jobs count.
    linalg::Matrix dist(n, n);
    exec::parallelFor(jobs, n, [&](std::size_t i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            double sum = 0.0;
            for (std::size_t c = 0; c < d; ++c) {
                double diff = normalised[i][c] - normalised[j][c];
                sum += diff * diff;
            }
            double value = std::sqrt(sum);
            dist.at(i, j) = value;
            dist.at(j, i) = value;
        }
    });
    return dist;
}

linalg::Matrix
correlationDistances(const std::vector<std::vector<double>> &series,
                     unsigned jobs)
{
    const std::size_t n = series.size();
    linalg::Matrix rho = correlationMatrix(series, jobs);
    linalg::Matrix dist(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            double value = 1.0 - std::fabs(rho.at(i, j));
            dist.at(i, j) = value;
            dist.at(j, i) = value;
        }
    }
    return dist;
}

HcaResult
agglomerateReference(const linalg::Matrix &distances, Linkage linkage)
{
    panic_if(distances.rows() != distances.cols(),
             "distance matrix must be square");
    const std::size_t n = distances.rows();
    panic_if(n == 0, "cannot cluster zero items");

    HcaResult result;
    result.leafCount = n;
    if (n == 1)
        return result;

    // Active cluster list: node id and current size. Distances between
    // active clusters are kept in a map keyed by (min id, max id).
    struct Active
    {
        std::size_t node;
        std::size_t size;
    };
    std::vector<Active> active;
    active.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        active.push_back({i, 1});

    std::map<std::pair<std::size_t, std::size_t>, double> pair_dist;
    auto key = [](std::size_t a, std::size_t b) {
        return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    };
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
            pair_dist[key(i, j)] = distances.at(i, j);

    std::size_t next_node = n;
    while (active.size() > 1) {
        // Find the closest active pair.
        double best = std::numeric_limits<double>::infinity();
        std::size_t bi = 0;
        std::size_t bj = 1;
        for (std::size_t i = 0; i < active.size(); ++i) {
            for (std::size_t j = i + 1; j < active.size(); ++j) {
                double d =
                    pair_dist[key(active[i].node, active[j].node)];
                if (d < best) {
                    best = d;
                    bi = i;
                    bj = j;
                }
            }
        }

        Active left = active[bi];
        Active right = active[bj];
        std::size_t merged_size = left.size + right.size;
        result.merges.push_back(
            {left.node, right.node, best, merged_size});

        // Lance-Williams distance updates to every other cluster.
        for (std::size_t i = 0; i < active.size(); ++i) {
            if (i == bi || i == bj)
                continue;
            std::size_t other = active[i].node;
            double d_left = pair_dist[key(left.node, other)];
            double d_right = pair_dist[key(right.node, other)];
            double updated = 0.0;
            switch (linkage) {
              case Linkage::Single:
                updated = std::min(d_left, d_right);
                break;
              case Linkage::Complete:
                updated = std::max(d_left, d_right);
                break;
              case Linkage::Average:
                updated = (d_left * static_cast<double>(left.size) +
                           d_right * static_cast<double>(right.size)) /
                    static_cast<double>(merged_size);
                break;
            }
            pair_dist[key(next_node, other)] = updated;
        }

        // Replace the two merged entries with the new node.
        active.erase(active.begin() + static_cast<long>(bj));
        active[bi] = {next_node, merged_size};
        ++next_node;
    }

    return result;
}

HcaResult
agglomerateNnChain(const linalg::Matrix &distances, Linkage linkage)
{
    panic_if(distances.rows() != distances.cols(),
             "distance matrix must be square");
    const std::size_t n = distances.rows();
    panic_if(n == 0, "cannot cluster zero items");

    HcaResult result;
    result.leafCount = n;
    if (n == 1)
        return result;

    // Lance-Williams update shared by both phases. min, max and the
    // weighted average are all symmetric-commutative in IEEE floats,
    // so operand roles do not affect the bits of the result; the
    // replay below nevertheless passes the greedy's exact operands.
    auto lance_williams = [linkage](double d_left, double d_right,
                                    std::size_t left_size,
                                    std::size_t right_size) {
        switch (linkage) {
          case Linkage::Single:
            return std::min(d_left, d_right);
          case Linkage::Complete:
            return std::max(d_left, d_right);
          case Linkage::Average:
          default:
            return (d_left * static_cast<double>(left_size) +
                    d_right * static_cast<double>(right_size)) /
                static_cast<double>(left_size + right_size);
        }
    };

    // ---- Phase 1: nearest-neighbour chain -------------------------
    //
    // Grow a chain i0 -> nn(i0) -> nn(nn(i0)) -> ... until two
    // clusters are mutual nearest neighbours, merge them, and carry
    // on from the surviving chain. For reducible linkages every
    // reciprocal-NN pair is merged by the greedy algorithm too (at
    // unique minima), so the merge *set* matches; only the emission
    // order differs, which phase 2 repairs. Each cluster lives in a
    // "slot": the smaller slot index survives a merge.
    std::vector<double> work(n * n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            work[i * n + j] = distances.at(i, j);

    std::vector<std::size_t> size(n, 1);
    std::vector<char> alive(n, 1);

    struct RawMerge
    {
        std::size_t a;      //!< slot of one merged cluster
        std::size_t b;      //!< slot of the other
        double height;      //!< merge distance (used only to sort)
    };
    std::vector<RawMerge> raw;
    raw.reserve(n - 1);

    std::vector<std::size_t> chain;
    chain.reserve(n);
    std::size_t remaining = n;
    std::size_t seed = 0;

    while (remaining > 1) {
        if (chain.empty()) {
            while (!alive[seed])
                ++seed;
            chain.push_back(seed);
        }
        while (true) {
            const std::size_t top = chain.back();
            const std::size_t prev =
                chain.size() >= 2 ? chain[chain.size() - 2] : SIZE_MAX;

            // Nearest alive neighbour of top; prefer the chain
            // predecessor on exact ties so reciprocal pairs are
            // recognised and the chain cannot cycle.
            double best = std::numeric_limits<double>::infinity();
            std::size_t best_j = SIZE_MAX;
            for (std::size_t j = 0; j < n; ++j) {
                if (!alive[j] || j == top)
                    continue;
                double dist = work[top * n + j];
                if (dist < best || (dist == best && j == prev)) {
                    best = dist;
                    best_j = j;
                }
            }

            if (best_j != prev) {
                chain.push_back(best_j);
                continue;
            }

            // top and prev are mutual nearest neighbours: merge.
            chain.pop_back();
            chain.pop_back();
            raw.push_back({prev, top, best});

            const std::size_t win = std::min(prev, top);
            const std::size_t lose = prev + top - win;
            for (std::size_t other = 0; other < n; ++other) {
                if (!alive[other] || other == prev || other == top)
                    continue;
                double updated = lance_williams(
                    work[prev * n + other], work[top * n + other],
                    size[prev], size[top]);
                work[win * n + other] = updated;
                work[other * n + win] = updated;
            }
            size[win] += size[lose];
            alive[lose] = 0;
            --remaining;
            break;
        }
    }

    // ---- Phase 2: greedy-order replay -----------------------------
    //
    // The greedy oracle emits merges in nondecreasing height, so a
    // stable sort by height restores its order (formation always
    // precedes use: chain emission order is causal, and stable_sort
    // keeps it for equal heights). The replay then recomputes every
    // height and update from a fresh copy of the input with the
    // greedy's exact operand roles — left = the cluster earlier in
    // the greedy's active list — making the emitted dendrogram
    // bit-identical to the oracle's, not merely equivalent.
    std::stable_sort(raw.begin(), raw.end(),
                     [](const RawMerge &x, const RawMerge &y) {
                         return x.height < y.height;
                     });

    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            work[i * n + j] = distances.at(i, j);
    std::fill(size.begin(), size.end(), std::size_t{1});
    std::fill(alive.begin(), alive.end(), char{1});

    // node[s]: dendrogram node id currently held by slot s.
    // pos[s]: rank of slot s in the greedy's active list — erasures
    // preserve relative order and a new node takes the lower merged
    // position, so tracking the minimum is exact.
    std::vector<std::size_t> node(n);
    std::vector<std::size_t> pos(n);
    for (std::size_t i = 0; i < n; ++i) {
        node[i] = i;
        pos[i] = i;
    }

    std::size_t next_node = n;
    for (const RawMerge &merge : raw) {
        const std::size_t left_slot =
            pos[merge.a] < pos[merge.b] ? merge.a : merge.b;
        const std::size_t right_slot =
            merge.a + merge.b - left_slot;
        const double height = work[merge.a * n + merge.b];
        const std::size_t merged_size =
            size[merge.a] + size[merge.b];

        result.merges.push_back(
            {node[left_slot], node[right_slot], height, merged_size});

        const std::size_t win = std::min(merge.a, merge.b);
        const std::size_t lose = merge.a + merge.b - win;
        for (std::size_t other = 0; other < n; ++other) {
            if (!alive[other] || other == merge.a || other == merge.b)
                continue;
            double updated = lance_williams(
                work[left_slot * n + other],
                work[right_slot * n + other],
                size[left_slot], size[right_slot]);
            work[win * n + other] = updated;
            work[other * n + win] = updated;
        }
        size[win] = merged_size;
        alive[lose] = 0;
        node[win] = next_node++;
        pos[win] = std::min(pos[merge.a], pos[merge.b]);
    }

    return result;
}

HcaResult
agglomerate(const linalg::Matrix &distances, Linkage linkage)
{
    if (defaultAnalysisPath() == AnalysisPath::Reference)
        return agglomerateReference(distances, linkage);
    return agglomerateNnChain(distances, linkage);
}

namespace {

/** Recursively collect leaves under a node id. */
void
collectLeaves(const HcaResult &hca, std::size_t node,
              std::vector<std::size_t> &out)
{
    if (node < hca.leafCount) {
        out.push_back(node);
        return;
    }
    const MergeStep &merge = hca.merges[node - hca.leafCount];
    collectLeaves(hca, merge.left, out);
    collectLeaves(hca, merge.right, out);
}

} // namespace

std::vector<std::size_t>
HcaResult::leafOrder() const
{
    std::vector<std::size_t> order;
    order.reserve(leafCount);
    if (merges.empty()) {
        for (std::size_t i = 0; i < leafCount; ++i)
            order.push_back(i);
        return order;
    }
    collectLeaves(*this, leafCount + merges.size() - 1, order);
    return order;
}

std::vector<std::size_t>
HcaResult::cutToClusters(std::size_t cluster_count) const
{
    panic_if(cluster_count == 0, "cannot cut to zero clusters");
    cluster_count = std::min(cluster_count, leafCount);

    // Undo the last (cluster_count - 1) merges: the roots remaining
    // after applying the first n - cluster_count merges are clusters.
    std::size_t applied =
        leafCount >= cluster_count ? leafCount - cluster_count : 0;

    std::vector<std::size_t> roots;
    std::vector<bool> consumed(leafCount + merges.size(), false);
    for (std::size_t m = 0; m < applied; ++m) {
        consumed[merges[m].left] = true;
        consumed[merges[m].right] = true;
    }
    for (std::size_t node = 0; node < leafCount + applied; ++node) {
        if (!consumed[node])
            roots.push_back(node);
    }

    std::vector<std::size_t> labels(leafCount, 0);
    std::size_t next_label = 1;

    // Label roots in dendrogram leaf-order so cluster numbers read
    // left-to-right in figures.
    std::vector<std::size_t> order = leafOrder();
    std::vector<std::size_t> leaf_root(leafCount, SIZE_MAX);
    for (std::size_t root : roots) {
        std::vector<std::size_t> leaves;
        collectLeaves(*this, root, leaves);
        for (std::size_t leaf : leaves)
            leaf_root[leaf] = root;
    }
    std::map<std::size_t, std::size_t> root_label;
    for (std::size_t leaf : order) {
        std::size_t root = leaf_root[leaf];
        auto it = root_label.find(root);
        if (it == root_label.end())
            root_label[root] = next_label++;
    }
    for (std::size_t leaf = 0; leaf < leafCount; ++leaf)
        labels[leaf] = root_label[leaf_root[leaf]];
    return labels;
}

std::vector<std::size_t>
HcaResult::cutAtHeight(double height) const
{
    std::size_t below = 0;
    for (const auto &merge : merges) {
        if (merge.height <= height)
            ++below;
    }
    return cutToClusters(leafCount - below);
}

} // namespace gemstone::mlstat
