/**
 * @file
 * Forward stepwise selection implementation.
 */

#include "mlstat/stepwise.hh"

#include <cmath>

#include "mlstat/correlation.hh"
#include "util/logging.hh"

namespace gemstone::mlstat {

StepwiseResult
stepwiseForward(const std::vector<Candidate> &candidates,
                const std::vector<double> &response,
                const StepwiseConfig &config)
{
    StepwiseResult result;
    std::vector<bool> used(candidates.size(), false);

    // Pre-mark excluded and degenerate candidates.
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (config.excluded.count(candidates[i].name))
            used[i] = true;
        else if (candidates[i].values.size() != response.size())
            used[i] = true;
    }

    double best_r2 = 0.0;

    while (result.selected.size() < config.maxTerms) {
        std::size_t best_index = SIZE_MAX;
        double best_gain_r2 = best_r2;
        OlsResult best_fit;

        for (std::size_t i = 0; i < candidates.size(); ++i) {
            if (used[i])
                continue;

            // Skip candidates nearly collinear with a selected one —
            // they cannot add information and destabilise the fit.
            bool collinear = false;
            for (std::size_t sel : result.selected) {
                double rho = pearson(candidates[i].values,
                                     candidates[sel].values);
                if (std::fabs(rho) > config.maxAbsInterCorrelation) {
                    collinear = true;
                    break;
                }
            }
            if (collinear)
                continue;

            std::vector<std::vector<double>> design;
            design.reserve(result.selected.size() + 1);
            for (std::size_t sel : result.selected)
                design.push_back(candidates[sel].values);
            design.push_back(candidates[i].values);

            OlsResult fit = fitOls(design, response, true);
            if (!fit.ok)
                continue;
            if (fit.r2 > best_gain_r2 + config.minR2Gain) {
                best_gain_r2 = fit.r2;
                best_index = i;
                best_fit = fit;
            }
        }

        if (best_index == SIZE_MAX)
            break;

        // Apply the paper's stop rule: reject the addition if any term
        // of the would-be model is no longer significant.
        bool significant = true;
        for (std::size_t c = 1; c < best_fit.pValues.size(); ++c) {
            if (best_fit.pValues[c] > config.pValueStop) {
                significant = false;
                break;
            }
        }
        if (!significant)
            break;

        used[best_index] = true;
        result.selected.push_back(best_index);
        result.names.push_back(candidates[best_index].name);
        result.fit = best_fit;
        result.r2Trajectory.push_back(best_fit.r2);
        best_r2 = best_gain_r2;
    }

    return result;
}

} // namespace gemstone::mlstat
