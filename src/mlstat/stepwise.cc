/**
 * @file
 * Forward stepwise selection implementation.
 *
 * Two engines live here. stepwiseForwardReference() is the original
 * full-refit search, kept verbatim as the oracle. stepwiseForwardFast()
 * is the updating-QR engine: it reproduces the reference's scan
 * semantics exactly — the same sequential-threshold comparison, the
 * same collinearity skips, the same stop rules — but evaluates each
 * candidate's R² gain with one O(n) dot product against the current
 * residual instead of a full O(np²) refit. See stepwise.hh and
 * DESIGN.md §13 for the equivalence argument.
 */

#include "mlstat/stepwise.hh"

#include <cmath>
#include <cstdint>

#include "exec/parallel.hh"
#include "linalg/matrix.hh"
#include "mlstat/analysispath.hh"
#include "mlstat/correlation.hh"
#include "util/logging.hh"

namespace gemstone::mlstat {

StepwiseResult
stepwiseForwardReference(const std::vector<Candidate> &candidates,
                         const std::vector<double> &response,
                         const StepwiseConfig &config)
{
    StepwiseResult result;
    std::vector<bool> used(candidates.size(), false);

    // Pre-mark excluded and degenerate candidates.
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (config.excluded.count(candidates[i].name))
            used[i] = true;
        else if (candidates[i].values.size() != response.size())
            used[i] = true;
    }

    double best_r2 = 0.0;

    while (result.selected.size() < config.maxTerms) {
        std::size_t best_index = SIZE_MAX;
        double best_gain_r2 = best_r2;
        OlsResult best_fit;

        for (std::size_t i = 0; i < candidates.size(); ++i) {
            if (used[i])
                continue;

            // Skip candidates nearly collinear with a selected one —
            // they cannot add information and destabilise the fit.
            bool collinear = false;
            for (std::size_t sel : result.selected) {
                double rho = pearson(candidates[i].values,
                                     candidates[sel].values);
                if (std::fabs(rho) > config.maxAbsInterCorrelation) {
                    collinear = true;
                    break;
                }
            }
            if (collinear)
                continue;

            std::vector<std::vector<double>> design;
            design.reserve(result.selected.size() + 1);
            for (std::size_t sel : result.selected)
                design.push_back(candidates[sel].values);
            design.push_back(candidates[i].values);

            OlsResult fit = fitOls(design, response, true);
            if (!fit.ok)
                continue;
            if (fit.r2 > best_gain_r2 + config.minR2Gain) {
                best_gain_r2 = fit.r2;
                best_index = i;
                best_fit = fit;
            }
        }

        if (best_index == SIZE_MAX)
            break;

        // Apply the paper's stop rule: reject the addition if any term
        // of the would-be model is no longer significant.
        bool significant = true;
        for (std::size_t c = 1; c < best_fit.pValues.size(); ++c) {
            if (best_fit.pValues[c] > config.pValueStop) {
                significant = false;
                break;
            }
        }
        if (!significant)
            break;

        used[best_index] = true;
        result.selected.push_back(best_index);
        result.names.push_back(candidates[best_index].name);
        result.fit = best_fit;
        result.r2Trajectory.push_back(best_fit.r2);
        best_r2 = best_gain_r2;
    }

    return result;
}

namespace {

double
dot(const double *a, const double *b, std::size_t n)
{
    double sum = 0.0;
    for (std::size_t t = 0; t < n; ++t)
        sum += a[t] * b[t];
    return sum;
}

} // namespace

StepwiseResult
stepwiseForwardFast(const std::vector<Candidate> &candidates,
                    const std::vector<double> &response,
                    const StepwiseConfig &config)
{
    const std::size_t n = response.size();
    const std::size_t total = candidates.size();

    // With n < 3 even a single-term trial fit fails (fitOls needs
    // n >= p + 1); the oracle handles these shapes in negligible time.
    if (n < 3 || total == 0)
        return stepwiseForwardReference(candidates, response, config);

    StepwiseResult result;
    std::vector<bool> used(total, false);

    // Pre-mark excluded and degenerate candidates, as the oracle does.
    for (std::size_t i = 0; i < total; ++i) {
        if (config.excluded.count(candidates[i].name))
            used[i] = true;
        else if (candidates[i].values.size() != n)
            used[i] = true;
    }

    // Compact the initially-eligible candidates; everything below
    // indexes this pool, mapping back to global indices at the end.
    std::vector<std::size_t> pool;
    std::vector<std::size_t> compactOf(total, SIZE_MAX);
    for (std::size_t i = 0; i < total; ++i) {
        if (!used[i]) {
            compactOf[i] = pool.size();
            pool.push_back(i);
        }
    }
    const std::size_t k = pool.size();
    if (k == 0)
        return result;

    // The full candidate x candidate correlation matrix, computed once
    // (in parallel). The oracle recomputes pearson() per pair per
    // round; this turns each collinearity check into a table lookup
    // with bit-identical values (including the constant-series -> 0
    // convention, so constant candidates are never collinearity-
    // skipped — they fail in the fit instead, on both paths).
    std::vector<std::vector<double>> pool_series;
    pool_series.reserve(k);
    for (std::size_t gi : pool)
        pool_series.push_back(candidates[gi].values);
    linalg::Matrix corr = correlationMatrix(pool_series, config.jobs);
    const double *corr_data = corr.data();
    pool_series.clear();

    // Response statistics shared by every projected-R² evaluation.
    double mean_y = 0.0;
    for (double y : response)
        mean_y += y;
    mean_y /= static_cast<double>(n);
    double tss = 0.0;
    for (double y : response)
        tss += (y - mean_y) * (y - mean_y);

    // Candidate columns centred once (i.e. orthogonalised against the
    // intercept). Accepting a term Gram-Schmidt-sweeps it out of the
    // remaining rows, so z.row(ci) always holds the component of
    // candidate ci orthogonal to the current selected span, and
    // zz[ci] its squared norm.
    linalg::Matrix z(k, n);
    std::vector<double> zz(k, 0.0);
    exec::parallelFor(config.jobs, k, [&](std::size_t ci) {
        const std::vector<double> &v = candidates[pool[ci]].values;
        double mean = 0.0;
        for (std::size_t t = 0; t < n; ++t)
            mean += v[t];
        mean /= static_cast<double>(n);
        double *row = z.row(ci);
        double sq = 0.0;
        for (std::size_t t = 0; t < n; ++t) {
            double d = v[t] - mean;
            row[t] = d;
            sq += d * d;
        }
        zz[ci] = sq;
    });

    // Current-model residual and RSS (intercept-only to begin with).
    std::vector<double> e(n);
    for (std::size_t t = 0; t < n; ++t)
        e[t] = response[t] - mean_y;
    double rss_cur = tss;
    double best_r2 = 0.0;

    std::vector<double> cand_r2(k, 0.0);
    std::vector<std::uint8_t> cand_ok(k, 0);
    std::vector<std::uint8_t> round_disabled(k, 0);

    while (result.selected.size() < config.maxTerms) {
        // Once n < selected + 3 every trial fit fails n >= p + 1, so
        // the oracle's scan comes up empty and stops; mirror that.
        if (n < result.selected.size() + 3)
            break;

        std::fill(round_disabled.begin(), round_disabled.end(), 0);

        // Evaluate every remaining candidate's projected R² against
        // the current residual: gain = (z·e)²/‖z‖², which in exact
        // arithmetic equals the RSS drop of the full refit with that
        // column appended. One parallel pass, index-addressed.
        exec::parallelFor(config.jobs, k, [&](std::size_t ci) {
            cand_ok[ci] = 0;
            if (used[pool[ci]])
                return;
            for (std::size_t sel : result.selected) {
                double rho = corr_data[ci * k + compactOf[sel]];
                if (std::fabs(rho) > config.maxAbsInterCorrelation)
                    return;
            }
            // A vanishing orthogonal component means the QR would
            // break down on this column (norm < 1e-12) and the
            // oracle's trial fit would report !ok.
            if (zz[ci] < 1e-24)
                return;
            double r2;
            if (tss > 1e-24) {
                double d = dot(z.row(ci), e.data(), n);
                double gain = (d * d) / zz[ci];
                r2 = 1.0 - (rss_cur - gain) / tss;
            } else {
                // fitOls defines R² = 1 for a constant response.
                r2 = 1.0;
            }
            cand_r2[ci] = r2;
            cand_ok[ci] = 1;
        });

        // Replay the oracle's sequential-threshold scan serially, in
        // candidate order, over the precomputed gains. This is not an
        // argmax: best_gain_r2 ratchets up during the scan and later
        // candidates must clear it by minR2Gain, exactly as the
        // oracle's loop does.
        std::size_t best_ci = SIZE_MAX;
        OlsResult fit;
        while (true) {
            best_ci = SIZE_MAX;
            double best_gain_r2 = best_r2;
            for (std::size_t ci = 0; ci < k; ++ci) {
                if (!cand_ok[ci] || round_disabled[ci])
                    continue;
                if (cand_r2[ci] > best_gain_r2 + config.minR2Gain) {
                    best_gain_r2 = cand_r2[ci];
                    best_ci = ci;
                }
            }
            if (best_ci == SIZE_MAX)
                break;

            // Exact refit of the would-be model: same design as the
            // oracle's trial fit, so coefficients, p-values and R²
            // are bit-identical given the same selection.
            std::vector<std::vector<double>> design;
            design.reserve(result.selected.size() + 1);
            for (std::size_t sel : result.selected)
                design.push_back(candidates[sel].values);
            design.push_back(candidates[pool[best_ci]].values);
            fit = fitOls(design, response, true);
            if (!fit.ok) {
                // The oracle would have skipped this candidate inside
                // its scan; drop it for this round and rescan.
                round_disabled[best_ci] = 1;
                continue;
            }
            break;
        }
        if (best_ci == SIZE_MAX)
            break;

        // The paper's stop rule, applied to the exact refit.
        bool significant = true;
        for (std::size_t c = 1; c < fit.pValues.size(); ++c) {
            if (fit.pValues[c] > config.pValueStop) {
                significant = false;
                break;
            }
        }
        if (!significant)
            break;

        const std::size_t gi = pool[best_ci];
        used[gi] = true;
        result.selected.push_back(gi);
        result.names.push_back(candidates[gi].name);
        result.fit = fit;
        result.r2Trajectory.push_back(fit.r2);
        best_r2 = fit.r2;

        // Advance the updating QR: take the exact refit's residual as
        // the new e (keeping subsequent gains anchored to the true
        // model, not an accumulation of projections), and sweep the
        // accepted column out of every remaining candidate.
        e = fit.residuals;
        rss_cur = 0.0;
        for (std::size_t t = 0; t < n; ++t)
            rss_cur += e[t] * e[t];

        double *q = z.row(best_ci);
        double inv_norm = 1.0 / std::sqrt(zz[best_ci]);
        for (std::size_t t = 0; t < n; ++t)
            q[t] *= inv_norm;
        exec::parallelFor(config.jobs, k, [&](std::size_t ci) {
            if (ci == best_ci || used[pool[ci]])
                return;
            double *row = z.row(ci);
            double proj = dot(q, row, n);
            double sq = 0.0;
            for (std::size_t t = 0; t < n; ++t) {
                row[t] -= proj * q[t];
                sq += row[t] * row[t];
            }
            zz[ci] = sq;
        });
    }

    return result;
}

StepwiseResult
stepwiseForward(const std::vector<Candidate> &candidates,
                const std::vector<double> &response,
                const StepwiseConfig &config)
{
    if (defaultAnalysisPath() == AnalysisPath::Reference)
        return stepwiseForwardReference(candidates, response, config);
    return stepwiseForwardFast(candidates, response, config);
}

} // namespace gemstone::mlstat
