/**
 * @file
 * Robust estimator implementations.
 */

#include "mlstat/robust.hh"

#include <algorithm>
#include <cmath>

#include "mlstat/descriptive.hh"
#include "util/logging.hh"

namespace gemstone::mlstat {

namespace {

/** 1.4826 makes the MAD consistent with sigma for Gaussian data. */
constexpr double kMadToSigma = 1.4826;

/** 0.6745 = Phi^-1(0.75): robust-z scale used by Iglewicz–Hoaglin. */
constexpr double kRobustZ = 0.6745;

} // namespace

double
mad(const std::vector<double> &values, bool normalised)
{
    if (values.size() < 2)
        return 0.0;
    double centre = median(values);
    std::vector<double> deviations;
    deviations.reserve(values.size());
    for (double v : values)
        deviations.push_back(std::fabs(v - centre));
    double raw = median(std::move(deviations));
    return normalised ? kMadToSigma * raw : raw;
}

std::vector<double>
robustZscores(const std::vector<double> &values)
{
    std::vector<double> scores(values.size(), 0.0);
    if (values.size() < 2)
        return scores;
    double centre = median(values);
    double scale = mad(values, /*normalised=*/false);
    if (scale <= 0.0)
        return scores;  // degenerate but consistent: flag nothing
    for (std::size_t i = 0; i < values.size(); ++i)
        scores[i] = kRobustZ * (values[i] - centre) / scale;
    return scores;
}

std::vector<bool>
madOutlierMask(const std::vector<double> &values, double threshold)
{
    std::vector<double> scores = robustZscores(values);
    std::vector<bool> mask(values.size(), false);
    for (std::size_t i = 0; i < scores.size(); ++i)
        mask[i] = std::fabs(scores[i]) > threshold;
    return mask;
}

double
winsorisedMean(std::vector<double> values, double fraction)
{
    if (values.empty())
        return 0.0;
    fraction = std::clamp(fraction, 0.0, 0.4999);
    std::sort(values.begin(), values.end());
    std::size_t n = values.size();
    auto clip = static_cast<std::size_t>(
        std::floor(fraction * static_cast<double>(n)));
    for (std::size_t i = 0; i < clip; ++i) {
        values[i] = values[clip];
        values[n - 1 - i] = values[n - 1 - clip];
    }
    return mean(values);
}

double
quantile(std::vector<double> values, double q)
{
    if (values.empty())
        return 0.0;
    panic_if(q < 0.0 || q > 1.0, "quantile q out of range: ", q);
    std::sort(values.begin(), values.end());
    double pos = q * static_cast<double>(values.size() - 1);
    auto lo = static_cast<std::size_t>(std::floor(pos));
    auto hi = static_cast<std::size_t>(std::ceil(pos));
    double frac = pos - static_cast<double>(lo);
    return values[lo] + frac * (values[hi] - values[lo]);
}

TukeyFences
tukeyFences(const std::vector<double> &values, double k)
{
    TukeyFences fences;
    if (values.empty())
        return fences;
    double q1 = quantile(values, 0.25);
    double q3 = quantile(values, 0.75);
    double iqr = q3 - q1;
    fences.lo = q1 - k * iqr;
    fences.hi = q3 + k * iqr;
    return fences;
}

std::vector<bool>
tukeyOutlierMask(const std::vector<double> &values, double k)
{
    TukeyFences fences = tukeyFences(values, k);
    std::vector<bool> mask(values.size(), false);
    if (values.empty())
        return mask;
    for (std::size_t i = 0; i < values.size(); ++i)
        mask[i] = !fences.contains(values[i]);
    return mask;
}

std::vector<double>
rejectOutliers(const std::vector<double> &values,
               const std::vector<bool> &rejected)
{
    panic_if(values.size() != rejected.size(),
             "outlier mask size mismatch: ", values.size(), " vs ",
             rejected.size());
    std::vector<double> kept;
    kept.reserve(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (!rejected[i])
            kept.push_back(values[i]);
    }
    return kept;
}

} // namespace gemstone::mlstat
