/**
 * @file
 * Agglomerative Hierarchical Cluster Analysis (HCA).
 *
 * The paper uses HCA twice: to group *workloads* with similar PMC
 * behaviour (Fig. 3) and to group *events* that correlate with each
 * other across workloads (Fig. 5, §IV-C). Both uses are covered here:
 * Euclidean distance on z-scored feature vectors for workloads, and
 * correlation distance (1 - |r|) for events.
 */

#ifndef GEMSTONE_MLSTAT_HCA_HH
#define GEMSTONE_MLSTAT_HCA_HH

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.hh"

namespace gemstone::mlstat {

/** Linkage criterion for merging clusters. */
enum class Linkage { Single, Complete, Average };

/** One merge step in the dendrogram. */
struct MergeStep
{
    std::size_t left;    //!< merged node id (leaf ids < n)
    std::size_t right;   //!< merged node id
    double height;       //!< linkage distance at the merge
    std::size_t size;    //!< total leaves under the new node
};

/** Result of a clustering run. */
struct HcaResult
{
    std::size_t leafCount = 0;
    std::vector<MergeStep> merges;       //!< n-1 merges, heights rising

    /** Leaf order after dendrogram traversal (for plotting). */
    std::vector<std::size_t> leafOrder() const;

    /**
     * Flat cluster labels produced by cutting the dendrogram so that
     * exactly @p cluster_count clusters remain. Labels are renumbered
     * 1..k in leaf-order of first appearance (matching the paper's
     * figure labelling style).
     */
    std::vector<std::size_t> cutToClusters(
        std::size_t cluster_count) const;

    /** Flat labels from cutting at a distance threshold. */
    std::vector<std::size_t> cutAtHeight(double height) const;
};

/**
 * Pairwise Euclidean distances between z-scored feature rows.
 * With jobs > 1 the rows are fanned over a thread pool with
 * index-addressed writes; results are identical at any jobs count.
 */
linalg::Matrix euclideanDistances(
    const std::vector<std::vector<double>> &features,
    bool zscore_columns = true,
    unsigned jobs = 1);

/**
 * Correlation distances 1 - |pearson| between series.
 * Used for event clustering where the sign of the relationship does
 * not matter, only its strength. Built on correlationMatrix(), so
 * each series is centred once and pairs cost one dot product; values
 * are bit-identical to pairwise pearson() at any jobs count.
 */
linalg::Matrix correlationDistances(
    const std::vector<std::vector<double>> &series,
    unsigned jobs = 1);

/**
 * Run agglomerative clustering over a symmetric distance matrix.
 *
 * Dispatches to the O(n²) nearest-neighbour-chain engine unless the
 * reference analysis path is forced (GEMSTONE_REFERENCE_ANALYSIS /
 * setAnalysisPathOverride). Both engines produce the same dendrogram
 * — identical merge sequence, node ids, left/right orientation and
 * bit-identical heights — whenever the minimum pair distance is
 * unique at every step (exact ties may legitimately resolve
 * differently; both resolutions are valid dendrograms).
 */
HcaResult agglomerate(const linalg::Matrix &distances,
                      Linkage linkage = Linkage::Average);

/** The historical O(n³) greedy min-scan implementation (the oracle). */
HcaResult agglomerateReference(const linalg::Matrix &distances,
                               Linkage linkage = Linkage::Average);

/**
 * The O(n²) nearest-neighbour-chain implementation. Valid for
 * reducible Lance-Williams linkages — Single, Complete and Average
 * all are — where reciprocal-nearest-neighbour merges provably yield
 * the same merge set as the greedy global-minimum scan.
 */
HcaResult agglomerateNnChain(const linalg::Matrix &distances,
                             Linkage linkage = Linkage::Average);

} // namespace gemstone::mlstat

#endif // GEMSTONE_MLSTAT_HCA_HH
