/**
 * @file
 * Ordinary least squares with full inference output.
 *
 * The paper's power-model quality metrics (§V) are all produced here:
 * R², adjusted R², standard error of regression (SER), per-coefficient
 * t statistics and p-values, and Variance Inflation Factors (VIF).
 */

#ifndef GEMSTONE_MLSTAT_OLS_HH
#define GEMSTONE_MLSTAT_OLS_HH

#include <string>
#include <vector>

#include "linalg/matrix.hh"

namespace gemstone::mlstat {

/**
 * Result of an OLS fit. Index 0 is the intercept when the model was
 * fitted with one; predictor k is at index k (+1 with intercept).
 */
struct OlsResult
{
    bool ok = false;                //!< fit succeeded
    std::vector<double> beta;       //!< coefficients
    std::vector<double> stdErrors;  //!< coefficient standard errors
    std::vector<double> tStats;     //!< t statistics
    std::vector<double> pValues;    //!< two-sided p-values
    std::vector<double> residuals;  //!< y - X beta
    std::vector<double> fitted;     //!< X beta
    double r2 = 0.0;                //!< coefficient of determination
    double adjustedR2 = 0.0;        //!< adjusted for predictor count
    double ser = 0.0;               //!< standard error of regression
    double dof = 0.0;               //!< residual degrees of freedom
    bool hasIntercept = false;      //!< intercept column was prepended

    /** Predict the response for one predictor row. */
    double predict(const std::vector<double> &predictors) const;
};

/**
 * Fit y ~ X (+ intercept).
 *
 * @param predictors design matrix columns, one vector per predictor
 * @param response response values
 * @param with_intercept prepend a constant column
 */
OlsResult fitOls(const std::vector<std::vector<double>> &predictors,
                 const std::vector<double> &response,
                 bool with_intercept = true);

/**
 * Variance inflation factor for each predictor (regress each on all
 * others, VIF = 1/(1-R²)). Values near 1 mean low inter-correlation;
 * the paper reports a mean VIF of 6 for the A15 power model.
 *
 * The per-target regressions are independent; with jobs > 1 they are
 * fanned over a thread pool with index-addressed writes, so results
 * are identical at any jobs count.
 */
std::vector<double> varianceInflation(
    const std::vector<std::vector<double>> &predictors,
    unsigned jobs = 1);

} // namespace gemstone::mlstat

#endif // GEMSTONE_MLSTAT_OLS_HH
