/**
 * @file
 * Descriptive statistics used throughout the GemStone analyses.
 *
 * The paper reports model quality as Mean Absolute Percentage Error
 * (MAPE) and Mean Percentage Error (MPE). Following the paper's sign
 * convention, a *negative* execution-time MPE means the model
 * overestimates the execution time (underestimates performance).
 */

#ifndef GEMSTONE_MLSTAT_DESCRIPTIVE_HH
#define GEMSTONE_MLSTAT_DESCRIPTIVE_HH

#include <cstddef>
#include <vector>

namespace gemstone::mlstat {

/** Arithmetic mean; 0 for an empty input. */
double mean(const std::vector<double> &values);

/** Sample standard deviation (n-1 denominator); 0 if n < 2. */
double stddev(const std::vector<double> &values);

/** Population variance helper used by z-scoring. */
double variance(const std::vector<double> &values);

/** Median (copies and sorts); 0 for an empty input. */
double median(std::vector<double> values);

/** Minimum; 0 for an empty input. */
double minValue(const std::vector<double> &values);

/** Maximum; 0 for an empty input. */
double maxValue(const std::vector<double> &values);

/**
 * Percentage error of one estimate against a reference:
 * (reference - estimate) / reference.
 *
 * For execution time this matches the paper: an estimate larger than
 * the reference (overestimated execution time) gives a negative value.
 */
double percentError(double reference, double estimate);

/** Mean percentage error across paired observations. */
double meanPercentError(const std::vector<double> &reference,
                        const std::vector<double> &estimate);

/** Mean absolute percentage error across paired observations. */
double meanAbsPercentError(const std::vector<double> &reference,
                           const std::vector<double> &estimate);

/** Z-score a vector in place; constant vectors become all zero. */
std::vector<double> zscore(const std::vector<double> &values);

/** Index of the minimum element; SIZE_MAX for empty input. */
std::size_t argMin(const std::vector<double> &values);

/** Index of the maximum element; SIZE_MAX for empty input. */
std::size_t argMax(const std::vector<double> &values);

} // namespace gemstone::mlstat

#endif // GEMSTONE_MLSTAT_DESCRIPTIVE_HH
