/**
 * @file
 * Fast/reference dispatch for the statistical analysis engine.
 *
 * Mirrors the execution-engine contract (GEMSTONE_REFERENCE_EXEC /
 * setExecEngineOverride in src/uarch): the asymptotically-naive
 * historical implementations of stepwise selection and agglomerative
 * clustering are kept indefinitely as oracles, and whole binaries
 * can be flipped back to them with GEMSTONE_REFERENCE_ANALYSIS=1 (or
 * programmatically, which wins over the environment). The fast paths
 * are contractually equivalent — identical selected-term sequences
 * and dendrogram merge orders, coefficients/R²/distances within
 * 1e-9 — which tests/analysis_fast_test.cc and bench/perf_analysis
 * enforce by cross-validating the two paths.
 */

#ifndef GEMSTONE_MLSTAT_ANALYSISPATH_HH
#define GEMSTONE_MLSTAT_ANALYSISPATH_HH

namespace gemstone::mlstat {

/** Which implementation stepwiseForward / agglomerate dispatch to. */
enum class AnalysisPath { Reference = 0, Fast = 1 };

/**
 * Path used by the dispatching entry points: the programmatic
 * override if set, else Reference when GEMSTONE_REFERENCE_ANALYSIS
 * is set to anything but "" / "0", else Fast.
 */
AnalysisPath defaultAnalysisPath();

/**
 * Force a path for the whole process (thread-safe, wins over the
 * environment); reset = true restores environment-driven selection.
 */
void setAnalysisPathOverride(AnalysisPath path, bool reset = false);

} // namespace gemstone::mlstat

#endif // GEMSTONE_MLSTAT_ANALYSISPATH_HH
