/**
 * @file
 * OLS implementation.
 */

#include "mlstat/ols.hh"

#include <cmath>

#include "exec/parallel.hh"
#include "mlstat/descriptive.hh"
#include "mlstat/distributions.hh"
#include "util/logging.hh"

namespace gemstone::mlstat {

double
OlsResult::predict(const std::vector<double> &predictors) const
{
    std::size_t expected = beta.size() - (hasIntercept ? 1 : 0);
    panic_if(predictors.size() != expected,
             "predict expects ", expected, " predictors, got ",
             predictors.size());
    double sum = hasIntercept ? beta[0] : 0.0;
    std::size_t offset = hasIntercept ? 1 : 0;
    for (std::size_t i = 0; i < predictors.size(); ++i)
        sum += beta[offset + i] * predictors[i];
    return sum;
}

OlsResult
fitOls(const std::vector<std::vector<double>> &predictors,
       const std::vector<double> &response, bool with_intercept)
{
    OlsResult result;
    result.hasIntercept = with_intercept;

    const std::size_t n = response.size();
    const std::size_t k = predictors.size();
    const std::size_t p = k + (with_intercept ? 1 : 0);
    if (n < p + 1 || p == 0)
        return result;

    linalg::Matrix x(n, p);
    std::size_t offset = 0;
    if (with_intercept) {
        for (std::size_t r = 0; r < n; ++r)
            x.at(r, 0) = 1.0;
        offset = 1;
    }
    for (std::size_t c = 0; c < k; ++c) {
        panic_if(predictors[c].size() != n, "predictor length mismatch");
        for (std::size_t r = 0; r < n; ++r)
            x.at(r, offset + c) = predictors[c][r];
    }

    if (!linalg::leastSquaresQr(x, response, result.beta))
        return result;

    result.fitted = x.multiply(result.beta);
    result.residuals.resize(n);
    double rss = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
        result.residuals[r] = response[r] - result.fitted[r];
        rss += result.residuals[r] * result.residuals[r];
    }

    double mean_y = mean(response);
    double tss = 0.0;
    for (double y : response)
        tss += (y - mean_y) * (y - mean_y);

    result.dof = static_cast<double>(n - p);
    result.r2 = tss > 1e-24 ? 1.0 - rss / tss : 1.0;
    if (n > p + 1 && tss > 1e-24) {
        result.adjustedR2 = 1.0 -
            (rss / result.dof) /
            (tss / static_cast<double>(n - 1));
    } else {
        result.adjustedR2 = result.r2;
    }
    result.ser = result.dof > 0 ? std::sqrt(rss / result.dof) : 0.0;

    // Coefficient covariance: sigma^2 (X'X)^-1.
    linalg::Matrix gram = x.gram();
    linalg::Matrix gram_inv;
    if (linalg::invertSpd(gram, gram_inv)) {
        double sigma2 = result.ser * result.ser;
        result.stdErrors.resize(p);
        result.tStats.resize(p);
        result.pValues.resize(p);
        for (std::size_t c = 0; c < p; ++c) {
            double var = sigma2 * gram_inv.at(c, c);
            result.stdErrors[c] = var > 0 ? std::sqrt(var) : 0.0;
            if (result.stdErrors[c] > 1e-300) {
                result.tStats[c] = result.beta[c] / result.stdErrors[c];
                result.pValues[c] =
                    twoSidedPValue(result.tStats[c], result.dof);
            } else {
                result.tStats[c] = 0.0;
                result.pValues[c] = 1.0;
            }
        }
    }

    result.ok = true;
    return result;
}

std::vector<double>
varianceInflation(const std::vector<std::vector<double>> &predictors,
                  unsigned jobs)
{
    const std::size_t k = predictors.size();
    std::vector<double> vif(k, 1.0);
    if (k < 2)
        return vif;

    exec::parallelFor(jobs, k, [&](std::size_t target) {
        std::vector<std::vector<double>> others;
        others.reserve(k - 1);
        for (std::size_t c = 0; c < k; ++c) {
            if (c != target)
                others.push_back(predictors[c]);
        }
        OlsResult fit = fitOls(others, predictors[target], true);
        if (!fit.ok)
            return;
        double denom = 1.0 - fit.r2;
        vif[target] = denom > 1e-9 ? 1.0 / denom : 1e9;
    });
    return vif;
}

} // namespace gemstone::mlstat
