/**
 * @file
 * Analysis-path selection implementation.
 */

#include "mlstat/analysispath.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace gemstone::mlstat {

namespace {

/** -1 = no override, otherwise an AnalysisPath value. */
std::atomic<int> analysisPathOverride{-1};

} // namespace

AnalysisPath
defaultAnalysisPath()
{
    int forced = analysisPathOverride.load(std::memory_order_relaxed);
    if (forced >= 0)
        return static_cast<AnalysisPath>(forced);
    const char *env = std::getenv("GEMSTONE_REFERENCE_ANALYSIS");
    if (env && env[0] != '\0' && std::strcmp(env, "0") != 0)
        return AnalysisPath::Reference;
    return AnalysisPath::Fast;
}

void
setAnalysisPathOverride(AnalysisPath path, bool reset)
{
    analysisPathOverride.store(reset ? -1 : static_cast<int>(path),
                               std::memory_order_relaxed);
}

} // namespace gemstone::mlstat
