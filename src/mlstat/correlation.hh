/**
 * @file
 * Pearson correlation helpers used by the error analyses (§IV-B/C).
 */

#ifndef GEMSTONE_MLSTAT_CORRELATION_HH
#define GEMSTONE_MLSTAT_CORRELATION_HH

#include <vector>

#include "linalg/matrix.hh"

namespace gemstone::mlstat {

/**
 * Pearson correlation coefficient.
 * Returns 0 when either input is (numerically) constant.
 */
double pearson(const std::vector<double> &x,
               const std::vector<double> &y);

/**
 * Full correlation matrix of a set of series (each inner vector is
 * one variable sampled at the same observations).
 *
 * Each series is centred once and its squared norm precomputed, so
 * the k(k-1)/2 pairs cost one dot product each instead of the three
 * passes pairwise pearson() needs; with jobs > 1 the rows are fanned
 * over a thread pool with index-addressed writes. Results are
 * bit-identical to pairwise pearson() at any jobs count (the per-
 * pair accumulation order is unchanged).
 */
linalg::Matrix correlationMatrix(
    const std::vector<std::vector<double>> &series,
    unsigned jobs = 1);

/**
 * Correlate each series against a single target (e.g. each PMC rate
 * against the execution-time MPE, as in Fig. 5).
 */
std::vector<double> correlateAgainst(
    const std::vector<std::vector<double>> &series,
    const std::vector<double> &target);

} // namespace gemstone::mlstat

#endif // GEMSTONE_MLSTAT_CORRELATION_HH
