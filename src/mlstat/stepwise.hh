/**
 * @file
 * Forward-selection stepwise regression (§IV-D and §V).
 *
 * The paper's error-attribution step regresses the gem5 error on
 * hardware PMC events using forward selection that maximises R² and
 * stops when any coefficient's p-value rises above 0.05. The same
 * machinery, with an exclusion list ("PMC selection restraints") and
 * an inter-correlation cap, drives Powmon event selection.
 */

#ifndef GEMSTONE_MLSTAT_STEPWISE_HH
#define GEMSTONE_MLSTAT_STEPWISE_HH

#include <set>
#include <string>
#include <vector>

#include "mlstat/ols.hh"

namespace gemstone::mlstat {

/** A named candidate predictor series. */
struct Candidate
{
    std::string name;           //!< event name (e.g. "0x11 rate")
    std::vector<double> values; //!< one value per observation
};

/** Configuration of the stepwise search. */
struct StepwiseConfig
{
    /** Stop adding once any term's p-value exceeds this. */
    double pValueStop = 0.05;
    /** Hard cap on the number of selected terms. */
    std::size_t maxTerms = 12;
    /** Skip candidates correlated above this with a selected one. */
    double maxAbsInterCorrelation = 0.995;
    /** Minimum R² improvement required to accept a term. */
    double minR2Gain = 1e-4;
    /** Candidate names that must not be selected. */
    std::set<std::string> excluded;
};

/** Outcome of the stepwise search. */
struct StepwiseResult
{
    std::vector<std::size_t> selected;  //!< candidate indices, in order
    std::vector<std::string> names;     //!< names of selected terms
    OlsResult fit;                      //!< final model fit
    std::vector<double> r2Trajectory;   //!< R² after each addition
};

/**
 * Run forward selection of candidates against a response.
 *
 * At each step the candidate that maximises R² of the refitted model
 * is chosen; the step is rejected (and the search ends) if any term of
 * the new model has p > pValueStop, as in the paper.
 */
StepwiseResult stepwiseForward(const std::vector<Candidate> &candidates,
                               const std::vector<double> &response,
                               const StepwiseConfig &config = {});

} // namespace gemstone::mlstat

#endif // GEMSTONE_MLSTAT_STEPWISE_HH
