/**
 * @file
 * Forward-selection stepwise regression (§IV-D and §V).
 *
 * The paper's error-attribution step regresses the gem5 error on
 * hardware PMC events using forward selection that maximises R² and
 * stops when any coefficient's p-value rises above 0.05. The same
 * machinery, with an exclusion list ("PMC selection restraints") and
 * an inter-correlation cap, drives Powmon event selection.
 *
 * Two implementations are kept. The reference path refits a full
 * Householder QR for every (candidate x step) trial and recomputes
 * every collinearity pearson() pair each outer iteration — O(s · p ·
 * n p²) overall. The fast path centres all columns once, precomputes
 * the full candidate x candidate correlation matrix a single time
 * (parallelised over the thread pool) so collinearity checks become
 * table lookups, and maintains a Gram–Schmidt orthogonalisation of
 * the remaining candidates against the selected span — an *updating*
 * QR, appending one column per accepted term — so each candidate's
 * R² gain costs one O(n) dot product against the current residual.
 * Only the one accepted term per step is refitted exactly (that
 * refit also supplies the p-values the stop rule needs), which makes
 * the reported fit, R² trajectory and stop decisions bit-identical
 * to the reference whenever both paths select the same terms.
 * stepwiseForward() dispatches on the analysis path
 * (GEMSTONE_REFERENCE_ANALYSIS / setAnalysisPathOverride).
 */

#ifndef GEMSTONE_MLSTAT_STEPWISE_HH
#define GEMSTONE_MLSTAT_STEPWISE_HH

#include <set>
#include <string>
#include <vector>

#include "mlstat/ols.hh"

namespace gemstone::mlstat {

/** A named candidate predictor series. */
struct Candidate
{
    std::string name;           //!< event name (e.g. "0x11 rate")
    std::vector<double> values; //!< one value per observation
};

/** Configuration of the stepwise search. */
struct StepwiseConfig
{
    /** Stop adding once any term's p-value exceeds this. */
    double pValueStop = 0.05;
    /** Hard cap on the number of selected terms. */
    std::size_t maxTerms = 12;
    /** Skip candidates correlated above this with a selected one. */
    double maxAbsInterCorrelation = 0.995;
    /** Minimum R² improvement required to accept a term. */
    double minR2Gain = 1e-4;
    /** Candidate names that must not be selected. */
    std::set<std::string> excluded;
    /**
     * Worker threads for the fast path's correlation precompute and
     * per-step candidate scans. 1 is exactly serial; results are
     * identical at any value (index-addressed gather). The reference
     * path ignores this and always runs serially.
     */
    unsigned jobs = 1;
};

/** Outcome of the stepwise search. */
struct StepwiseResult
{
    std::vector<std::size_t> selected;  //!< candidate indices, in order
    std::vector<std::string> names;     //!< names of selected terms
    OlsResult fit;                      //!< final model fit
    std::vector<double> r2Trajectory;   //!< R² after each addition
};

/**
 * Run forward selection of candidates against a response.
 *
 * At each step the candidate that maximises R² of the refitted model
 * is chosen; the step is rejected (and the search ends) if any term of
 * the new model has p > pValueStop, as in the paper. Dispatches to
 * the fast updating-QR engine unless the reference analysis path is
 * forced.
 */
StepwiseResult stepwiseForward(const std::vector<Candidate> &candidates,
                               const std::vector<double> &response,
                               const StepwiseConfig &config = {});

/** The historical full-refit implementation (the oracle). */
StepwiseResult stepwiseForwardReference(
    const std::vector<Candidate> &candidates,
    const std::vector<double> &response,
    const StepwiseConfig &config = {});

/** The updating-QR implementation (what the dispatcher uses). */
StepwiseResult stepwiseForwardFast(
    const std::vector<Candidate> &candidates,
    const std::vector<double> &response,
    const StepwiseConfig &config = {});

} // namespace gemstone::mlstat

#endif // GEMSTONE_MLSTAT_STEPWISE_HH
