/**
 * @file
 * Descriptive statistics implementation.
 */

#include "mlstat/descriptive.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/logging.hh"

namespace gemstone::mlstat {

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
variance(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    double mu = mean(values);
    double sum = 0.0;
    for (double v : values)
        sum += (v - mu) * (v - mu);
    return sum / static_cast<double>(values.size());
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    double mu = mean(values);
    double sum = 0.0;
    for (double v : values)
        sum += (v - mu) * (v - mu);
    return std::sqrt(sum / static_cast<double>(values.size() - 1));
}

double
median(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    std::size_t n = values.size();
    if (n % 2 == 1)
        return values[n / 2];
    return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double
minValue(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return *std::min_element(values.begin(), values.end());
}

double
maxValue(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return *std::max_element(values.begin(), values.end());
}

double
percentError(double reference, double estimate)
{
    panic_if(reference == 0.0, "percentError with zero reference");
    return (reference - estimate) / reference;
}

double
meanPercentError(const std::vector<double> &reference,
                 const std::vector<double> &estimate)
{
    panic_if(reference.size() != estimate.size(),
             "meanPercentError shape mismatch");
    if (reference.empty())
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i)
        sum += percentError(reference[i], estimate[i]);
    return sum / static_cast<double>(reference.size());
}

double
meanAbsPercentError(const std::vector<double> &reference,
                    const std::vector<double> &estimate)
{
    panic_if(reference.size() != estimate.size(),
             "meanAbsPercentError shape mismatch");
    if (reference.empty())
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i)
        sum += std::fabs(percentError(reference[i], estimate[i]));
    return sum / static_cast<double>(reference.size());
}

std::vector<double>
zscore(const std::vector<double> &values)
{
    std::vector<double> out(values.size(), 0.0);
    double sigma = stddev(values);
    if (sigma < 1e-15)
        return out;
    double mu = mean(values);
    for (std::size_t i = 0; i < values.size(); ++i)
        out[i] = (values[i] - mu) / sigma;
    return out;
}

std::size_t
argMin(const std::vector<double> &values)
{
    if (values.empty())
        return SIZE_MAX;
    return static_cast<std::size_t>(
        std::min_element(values.begin(), values.end()) - values.begin());
}

std::size_t
argMax(const std::vector<double> &values)
{
    if (values.empty())
        return SIZE_MAX;
    return static_cast<std::size_t>(
        std::max_element(values.begin(), values.end()) - values.begin());
}

} // namespace gemstone::mlstat
