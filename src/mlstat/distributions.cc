/**
 * @file
 * Distribution function implementations.
 */

#include "mlstat/distributions.hh"

#include <cmath>

#include "util/logging.hh"

namespace gemstone::mlstat {

namespace {

/**
 * Continued-fraction evaluation for the incomplete beta function
 * (Lentz's method).
 */
double
betaContinuedFraction(double a, double b, double x)
{
    constexpr int max_iterations = 300;
    constexpr double epsilon = 3.0e-14;
    constexpr double tiny = 1.0e-300;

    double qab = a + b;
    double qap = a + 1.0;
    double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < tiny)
        d = tiny;
    d = 1.0 / d;
    double h = d;

    for (int m = 1; m <= max_iterations; ++m) {
        double m2 = 2.0 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        double delta = d * c;
        h *= delta;
        if (std::fabs(delta - 1.0) < epsilon)
            break;
    }
    return h;
}

} // namespace

double
incompleteBeta(double a, double b, double x)
{
    panic_if(a <= 0.0 || b <= 0.0, "incompleteBeta shape must be > 0");
    if (x <= 0.0)
        return 0.0;
    if (x >= 1.0)
        return 1.0;

    double log_beta = std::lgamma(a + b) - std::lgamma(a) -
        std::lgamma(b) + a * std::log(x) + b * std::log(1.0 - x);
    double front = std::exp(log_beta);

    // Use the symmetry relation to keep the continued fraction in its
    // rapidly converging region.
    if (x < (a + 1.0) / (a + b + 2.0))
        return front * betaContinuedFraction(a, b, x) / a;
    return 1.0 - front * betaContinuedFraction(b, a, 1.0 - x) / b;
}

double
studentTCdf(double t, double df)
{
    panic_if(df <= 0.0, "studentTCdf df must be > 0");
    double x = df / (df + t * t);
    double tail = 0.5 * incompleteBeta(0.5 * df, 0.5, x);
    return t >= 0.0 ? 1.0 - tail : tail;
}

double
twoSidedPValue(double t, double df)
{
    double x = df / (df + t * t);
    return incompleteBeta(0.5 * df, 0.5, x);
}

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

} // namespace gemstone::mlstat
