/**
 * @file
 * Robust statistics for fault-contaminated measurements.
 *
 * Lab measurement campaigns on commodity boards collect samples that
 * are occasionally corrupted — a stuck power sensor, a thermal
 * throttle episode mid-run, a smeared timing repeat. Means and
 * standard deviations are poisoned by a single such sample; the
 * estimators here (median/MAD location and scale, winsorised means,
 * Tukey fences) have high breakdown points and back the quorum logic
 * of the resilient campaign engine (src/gemstone/campaign.hh).
 */

#ifndef GEMSTONE_MLSTAT_ROBUST_HH
#define GEMSTONE_MLSTAT_ROBUST_HH

#include <cstddef>
#include <vector>

namespace gemstone::mlstat {

/**
 * Median absolute deviation from the median. When @p normalised the
 * result is scaled by 1.4826 so it estimates the standard deviation
 * of Gaussian data. 0 for inputs with fewer than two samples.
 */
double mad(const std::vector<double> &values, bool normalised = true);

/**
 * Robust z-scores: 0.6745 * (x - median) / MAD. When the MAD is zero
 * (over half the samples identical) every score is 0, so nothing is
 * flagged on degenerate but consistent data.
 */
std::vector<double> robustZscores(const std::vector<double> &values);

/**
 * Outlier mask by the MAD criterion: true where |robust z| exceeds
 * @p threshold (3.5 is the classic Iglewicz–Hoaglin cut-off).
 */
std::vector<bool> madOutlierMask(const std::vector<double> &values,
                                 double threshold = 3.5);

/**
 * Winsorised mean: the lowest and highest @p fraction of samples are
 * clamped to the remaining extremes before averaging. @p fraction is
 * per tail and is clamped to [0, 0.5).
 */
double winsorisedMean(std::vector<double> values, double fraction);

/** Tukey fence interval [lo, hi] derived from the quartiles. */
struct TukeyFences
{
    double lo = 0.0;
    double hi = 0.0;

    /** True when the value lies inside the fences (inclusive). */
    bool contains(double value) const { return value >= lo && value <= hi; }
};

/**
 * Quantile of type-7 (linear interpolation between order statistics,
 * the R/NumPy default); @p q in [0, 1]. 0 for an empty input.
 */
double quantile(std::vector<double> values, double q);

/**
 * Tukey fences at quartiles -/+ @p k * IQR (k = 1.5 flags the usual
 * "outliers"; k = 3 the "far out" points).
 */
TukeyFences tukeyFences(const std::vector<double> &values,
                        double k = 1.5);

/** Outlier mask by the Tukey fence test. */
std::vector<bool> tukeyOutlierMask(const std::vector<double> &values,
                                   double k = 1.5);

/** Values surviving a mask (mask true = rejected). */
std::vector<double> rejectOutliers(const std::vector<double> &values,
                                   const std::vector<bool> &rejected);

} // namespace gemstone::mlstat

#endif // GEMSTONE_MLSTAT_ROBUST_HH
