/**
 * @file
 * Parameterised kernel generators for the synthetic workload suite.
 *
 * Register conventions inside kernels:
 *  - r15 holds the thread id (set by CpuState::reset)
 *  - r13 is used as the per-thread data base pointer
 *  - r14 is the link register
 *  - r0..r12 are scratch
 *
 * Multithreaded kernels are SPMD: every thread runs the same program
 * and derives its data slice from r15.
 */

#ifndef GEMSTONE_WORKLOAD_KERNELS_HH
#define GEMSTONE_WORKLOAD_KERNELS_HH

#include <cstdint>

#include "workload/workload.hh"

namespace gemstone::workload::kernels {

// --- Memory-pattern kernels (kernels_memory.cc) ---

/** Sequential copy loop: load + store per element. */
Workload makeStreamCopy(const std::string &name,
                        const std::string &suite,
                        std::uint64_t elements, std::uint64_t iters,
                        unsigned threads = 1);

/** Store-only fill loop (exposes write-streaming divergence). */
Workload makeStreamStore(const std::string &name,
                         const std::string &suite,
                         std::uint64_t elements, std::uint64_t iters,
                         unsigned threads = 1);

/** Load-only strided reduction. */
Workload makeStreamSum(const std::string &name,
                       const std::string &suite,
                       std::uint64_t elements, std::uint64_t stride,
                       std::uint64_t iters, unsigned threads = 1);

/**
 * Dependent pointer chase over a random cycle (latency-bound).
 * Multithreaded variants share the cycle read-only, like concurrent
 * trie lookups.
 */
Workload makePointerChase(const std::string &name,
                          const std::string &suite,
                          std::uint64_t nodes, std::uint64_t spacing,
                          std::uint64_t hops, unsigned threads = 1);

/** Random table loads+stores (GUPS-like; DTLB pressure). */
Workload makeRandomAccess(const std::string &name,
                          const std::string &suite,
                          std::uint64_t table_bytes,
                          std::uint64_t accesses,
                          unsigned threads = 1);

/** Loads at byte-misaligned addresses (unaligned events). */
Workload makeUnaligned(const std::string &name,
                       const std::string &suite,
                       std::uint64_t elements, std::uint64_t iters);

// --- Compute kernels (kernels_compute.cc) ---

/** Dense n x n x n FP matrix multiply. */
Workload makeMatMul(const std::string &name, const std::string &suite,
                    std::uint64_t n, std::uint64_t reps,
                    unsigned threads = 1);

/** FFT-like strided FP butterflies. */
Workload makeFftLike(const std::string &name, const std::string &suite,
                     std::uint64_t size, std::uint64_t reps);

/** Whetstone-style FP loop with div/sqrt (register-only, SPMD-safe). */
Workload makeWhetstone(const std::string &name,
                       const std::string &suite, std::uint64_t iters,
                       unsigned threads = 1);

/** SIMD packed arithmetic loop (ASE events). */
Workload makeSimdKernel(const std::string &name,
                        const std::string &suite,
                        std::uint64_t elements, std::uint64_t iters);

/** CRC/bit-twiddling integer loop with a lookup table. */
Workload makeCrc(const std::string &name, const std::string &suite,
                 std::uint64_t bytes, std::uint64_t reps,
                 unsigned threads = 1);

/** Dhrystone-style mixed integer / copy / call kernel. */
Workload makeDhrystone(const std::string &name,
                       const std::string &suite, std::uint64_t iters);

/** Integer multiply/divide-heavy arithmetic kernel (register-only). */
Workload makeIntArith(const std::string &name,
                      const std::string &suite, std::uint64_t iters,
                      bool with_div, unsigned threads = 1);

// --- Control-flow kernels (kernels_control.cc) ---

/**
 * Branches following a regular periodic pattern of the given period:
 * trivially learnable by a history-based predictor, catastrophic for
 * the history-corrupting g5 v1 predictor. Optional FP work per
 * iteration makes the rad2deg-style workloads.
 */
Workload makeBranchPattern(const std::string &name,
                           const std::string &suite,
                           std::uint64_t period, std::uint64_t iters,
                           std::uint64_t fp_ops_per_iter,
                           unsigned threads = 1);

/** Data-dependent branches with the given taken probability. */
Workload makeRandomBranch(const std::string &name,
                          const std::string &suite,
                          double taken_probability,
                          std::uint64_t iters);

/** Indirect-branch dispatch over a jump table (switch interpreter). */
Workload makeSwitchDispatch(const std::string &name,
                            const std::string &suite, unsigned cases,
                            std::uint64_t iters);

/** Call/return chains of the given depth (RAS exercise). */
Workload makeCallTree(const std::string &name,
                      const std::string &suite, unsigned depth,
                      std::uint64_t iters);

/** Insertion sort over random data (data-dependent branches). */
Workload makeSort(const std::string &name, const std::string &suite,
                  std::uint64_t elements, std::uint64_t reps);

/** Dijkstra-style min-scan relaxation loop. */
Workload makeDijkstra(const std::string &name,
                      const std::string &suite, std::uint64_t nodes,
                      std::uint64_t reps, unsigned threads = 1);

/** SUSAN-style byte stencil with threshold branches. */
Workload makeStencil(const std::string &name, const std::string &suite,
                     std::uint64_t dim, std::uint64_t reps,
                     unsigned threads = 1);

/** Byte string search with early-exit compare loops. */
Workload makeStringSearch(const std::string &name,
                          const std::string &suite,
                          std::uint64_t text_bytes,
                          std::uint64_t reps, unsigned threads = 1);

// --- Parallel kernels (kernels_parallel.cc) ---

/** Spin-lock protected shared counter (LDREX/STREX/DMB heavy). */
Workload makeSpinLock(const std::string &name,
                      const std::string &suite,
                      std::uint64_t increments_per_thread,
                      unsigned threads);

/** Barrier-separated computation phases. */
Workload makeBarrierPhases(const std::string &name,
                           const std::string &suite, unsigned phases,
                           std::uint64_t work_per_phase,
                           unsigned threads);

/** Producer/consumer through a shared mailbox with DMB flags. */
Workload makeProducerConsumer(const std::string &name,
                              const std::string &suite,
                              std::uint64_t items);

/**
 * Data-parallel loop over a shared array with per-thread slices plus
 * a final lock-protected reduction (PARSEC-flavoured).
 */
Workload makeDataParallel(const std::string &name,
                          const std::string &suite,
                          std::uint64_t elements,
                          std::uint64_t fp_intensity,
                          unsigned threads);

} // namespace gemstone::workload::kernels

#endif // GEMSTONE_WORKLOAD_KERNELS_HH
