/**
 * @file
 * Control-flow-intensive kernel generators.
 */

#include "workload/kernels.hh"

#include "workload/kernels_common.hh"

namespace gemstone::workload::kernels {

Workload
makeBranchPattern(const std::string &name, const std::string &suite,
                  std::uint64_t period, std::uint64_t iters,
                  std::uint64_t fp_ops_per_iter, unsigned threads)
{
    isa::ProgramBuilder b(name);
    b.movi(R0, static_cast<std::int64_t>(iters));
    b.movi(R1, static_cast<std::int64_t>(period));
    b.movi(R2, static_cast<std::int64_t>(period / 2 + 1));
    b.fmovi(0, 57.29577951308232);  // degrees per radian
    b.fmovi(1, 0.01745329);
    b.fmovi(2, 1.0);
    b.label("loop");
    // Phase counters: strictly periodic, *rarely taken* branches —
    // trivially learnable by a local-history predictor, lethal to the
    // history-corrupting g5 v1 predictor (a single misprediction
    // steers its index stream to untrained, taken-biased counters on
    // branches whose outcomes are dominated by not-taken, so the
    // storm self-sustains — this is the paper's par-basicmath-rad2deg
    // with 0.86% model accuracy vs 99.9% on hardware).
    b.subi(R1, R1, 1);
    b.beq(R1, "special1");    // taken once per period
    b.label("back1");
    b.subi(R2, R2, 1);
    b.beq(R2, "special2");    // phase-shifted second pattern
    b.label("back2");
    for (std::uint64_t i = 0; i < fp_ops_per_iter; ++i) {
        b.fmul(5, 2, 0);
        b.fadd(6, 5, 1);
    }
    b.subi(R0, R0, 1);
    b.bne(R0, "loop");
    b.halt();
    b.label("special1");
    b.movi(R1, static_cast<std::int64_t>(period));
    b.fmul(3, 2, 0);  // rad2deg conversion on the "special" path
    b.b("back1");
    b.label("special2");
    b.movi(R2, static_cast<std::int64_t>(period / 2 + 1));
    b.fmul(4, 2, 1);
    b.b("back2");

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = threads;
    w.memBytes = 4096;
    return w;
}

Workload
makeRandomBranch(const std::string &name, const std::string &suite,
                 double taken_probability, std::uint64_t iters)
{
    // Threshold over the top bits of an in-register LCG draw.
    auto threshold = static_cast<std::int64_t>(
        taken_probability * 1024.0);

    isa::ProgramBuilder b(name);
    b.movi(R0, static_cast<std::int64_t>(iters));
    b.movi(R1, 88172645463325252LL);
    b.movi(R2, 6364136223846793005LL);
    b.movi(R3, 1442695040888963407LL);
    b.movi(R4, threshold);
    b.movi(R8, 1023);
    b.label("loop");
    b.mul(R1, R1, R2);
    b.add(R1, R1, R3);
    b.lsr(R5, R1, 33);
    b.andr(R5, R5, R8);
    b.cmplt(R6, R5, R4);   // 1 with probability ~p
    b.beq(R6, "nottaken");
    b.addi(R7, R7, 1);
    b.b("join");
    b.label("nottaken");
    b.addi(R7, R7, 2);
    b.label("join");
    b.subi(R0, R0, 1);
    b.bne(R0, "loop");
    b.halt();

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = 1;
    w.memBytes = 4096;
    return w;
}

Workload
makeSwitchDispatch(const std::string &name, const std::string &suite,
                   unsigned cases, std::uint64_t iters)
{
    isa::ProgramBuilder b(name);
    b.movi(R0, static_cast<std::int64_t>(iters));
    b.movi(R1, 88172645463325252LL);
    b.movi(R2, 6364136223846793005LL);
    b.movi(R3, 1442695040888963407LL);

    // Each case body is caseLen instructions: payload + branch back.
    constexpr std::uint32_t case_len = 4;

    b.label("loop");
    b.mul(R1, R1, R2);
    b.add(R1, R1, R3);
    b.lsr(R5, R1, 29);
    // Skew the distribution: half the draws collapse to case 0 (a
    // realistic interpreter has a hot opcode).
    b.movi(R6, static_cast<std::int64_t>(2 * cases - 1));
    b.andr(R5, R5, R6);
    b.movi(R6, static_cast<std::int64_t>(cases));
    b.cmplt(R7, R5, R6);
    b.bne(R7, "have_case");
    b.movi(R5, 0);
    b.label("have_case");
    // target = dispatch_base + case * case_len
    b.movi(R6, case_len);
    b.mul(R5, R5, R6);
    b.movi(R6, 0);  // patched below via label arithmetic
    std::uint32_t movi_fixup = b.here() - 1;
    b.add(R5, R5, R6);
    b.bidx(R5);

    b.label("cases");
    for (unsigned c = 0; c < cases; ++c) {
        // Payload (3 insts) + jump back = case_len.
        b.addi(R7, R7, static_cast<std::int64_t>(c + 1));
        b.eor(R8, R7, R5);
        b.lsr(R8, R8, 1);
        b.b("next");
    }
    b.label("next");
    b.subi(R0, R0, 1);
    b.bne(R0, "loop");
    b.halt();

    Workload w;
    w.name = name;
    w.suite = suite;
    isa::Program program = b.build();
    // Patch the dispatch base immediate now that labels are resolved:
    // the movi above must hold the index of the "cases" label.
    // Label "cases" directly follows the bidx instruction.
    program.code[movi_fixup].imm = movi_fixup + 3;
    w.program = std::move(program);
    w.numThreads = 1;
    w.memBytes = 4096;
    return w;
}

Workload
makeCallTree(const std::string &name, const std::string &suite,
             unsigned depth, std::uint64_t iters)
{
    // A chain of functions f0 -> f1 -> ... -> f(depth-1); deep enough
    // chains overflow a small return-address stack, which is exactly
    // the RAS divergence the g5 model shows.
    isa::ProgramBuilder b(name);
    b.movi(R0, static_cast<std::int64_t>(iters));
    b.b("main");

    for (unsigned d = 0; d < depth; ++d) {
        b.label("f" + std::to_string(d));
        b.addi(R4, R4, 1);
        if (d + 1 < depth) {
            // Save our link register on the software stack (r10).
            b.subi(R10, R10, 8);
            b.str(isa::linkReg, R10, 0);
            b.bl("f" + std::to_string(d + 1));
            b.ldr(isa::linkReg, R10, 0);
            b.addi(R10, R10, 8);
        } else {
            b.eor(R5, R4, R0);
            b.lsr(R5, R5, 1);
        }
        b.ret();
    }

    b.label("main");
    b.movi(R10, 65536);  // software stack pointer
    b.label("loop");
    b.bl("f0");
    b.subi(R0, R0, 1);
    b.bne(R0, "loop");
    b.halt();

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = 1;
    w.memBytes = 128 * 1024;
    return w;
}

Workload
makeSort(const std::string &name, const std::string &suite,
         std::uint64_t elements, std::uint64_t reps)
{
    const std::uint64_t bytes = elements * 8;

    isa::ProgramBuilder b(name);
    b.movi(R11, static_cast<std::int64_t>(reps));
    b.movi(R9, 88172645463325252LL);

    b.label("rep");
    // Refill the array with fresh pseudo-random values.
    b.movi(R0, 0);
    b.movi(R1, static_cast<std::int64_t>(bytes));
    b.movi(R2, 6364136223846793005LL);
    b.label("fill");
    b.mul(R9, R9, R2);
    b.addi(R9, R9, 1442695040888963407LL);
    b.str(R9, R0, 0);
    b.addi(R0, R0, 8);
    b.cmplt(R5, R0, R1);
    b.bne(R5, "fill");

    // Insertion sort: heavily data-dependent inner-loop branches.
    b.movi(R0, 8);  // i (byte offset)
    b.label("outer");
    b.ldr(R3, R0, 0);   // key
    b.mov(R4, R0);      // j
    b.label("inner");
    b.subi(R4, R4, 8);
    b.blt(R4, "place"); // j < 0: insert at front
    b.ldr(R5, R4, 0);
    b.sub(R6, R5, R3);
    b.blt(R6, "place_after");  // arr[j] < key: stop
    b.str(R5, R4, 8);   // shift right
    b.b("inner");
    b.label("place");
    b.str(R3, R4, 8);
    b.b("advance");
    b.label("place_after");
    b.str(R3, R4, 8);
    b.label("advance");
    b.addi(R0, R0, 8);
    b.cmplt(R5, R0, R1);
    b.bne(R5, "outer");

    b.subi(R11, R11, 1);
    b.bne(R11, "rep");
    b.halt();

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = 1;
    w.memBytes = bytes + 4096;
    return w;
}

Workload
makeDijkstra(const std::string &name, const std::string &suite,
             std::uint64_t nodes, std::uint64_t reps, unsigned threads)
{
    // Simplified relaxation: repeatedly scan a distance array for the
    // minimum unvisited node, then relax a pseudo-random neighbour
    // set. The scan's running-minimum branch is data dependent.
    const std::uint64_t dist_bytes = nodes * 8;
    const std::uint64_t slice = dist_bytes * 2 + 4096;

    isa::ProgramBuilder b(name);
    emitThreadBase(b, slice);
    b.movi(R11, static_cast<std::int64_t>(reps));
    b.label("rep");
    b.movi(R0, 0);      // scan index (bytes)
    b.movi(R1, static_cast<std::int64_t>(dist_bytes));
    b.movi(R2, 0x7fffffff);  // best
    b.movi(R3, 0);      // best offset
    b.label("scan");
    b.add(R4, RBASE, R0);
    b.ldr(R5, R4, 0);
    b.sub(R6, R5, R2);
    b.bge(R6, "noupdate");   // dist >= best: skip
    b.mov(R2, R5);
    b.mov(R3, R0);
    b.label("noupdate");
    b.addi(R0, R0, 8);
    b.cmplt(R6, R0, R1);
    b.bne(R6, "scan");
    // Relax: dist[best ^ salt] = best + weight, for 4 neighbours.
    b.movi(R7, 4);
    b.label("relax");
    b.mul(R8, R3, R7);
    b.eor(R8, R8, R2);
    b.movi(R6, static_cast<std::int64_t>(dist_bytes - 1));
    b.andr(R8, R8, R6);
    b.movi(R6, ~7LL);
    b.andr(R8, R8, R6);
    b.add(R8, R8, RBASE);
    b.addi(R5, R2, 3);
    b.str(R5, R8, 0);
    b.subi(R7, R7, 1);
    b.bne(R7, "relax");
    b.subi(R11, R11, 1);
    b.bne(R11, "rep");
    b.halt();

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = threads;
    w.memBytes = slice * threads;
    w.init = [nodes, slice, threads, name](isa::Memory &memory) {
        Rng rng("dijkstra:" + name);
        for (unsigned t = 0; t < threads; ++t) {
            std::uint64_t base = t * slice;
            for (std::uint64_t i = 0; i < nodes; ++i) {
                memory.write64(base + i * 8,
                               1 + rng.uniformInt(1u << 20));
            }
        }
    };
    return w;
}

Workload
makeStencil(const std::string &name, const std::string &suite,
            std::uint64_t dim, std::uint64_t reps, unsigned threads)
{
    // Byte image stencil with a threshold branch per pixel.
    const std::uint64_t img_bytes = dim * dim;
    const std::uint64_t slice = img_bytes * 2 + 4096;

    isa::ProgramBuilder b(name);
    emitThreadBase(b, slice);
    b.movi(R11, static_cast<std::int64_t>(reps));
    b.label("rep");
    b.movi(R0, static_cast<std::int64_t>(dim + 1));  // first interior
    b.movi(R1, static_cast<std::int64_t>(img_bytes - dim - 1));
    b.label("pixel");
    b.add(R2, RBASE, R0);
    b.ldrb(R3, R2, 0);
    b.ldrb(R4, R2, 1);
    b.add(R3, R3, R4);
    b.ldrb(R4, R2, -1);
    b.add(R3, R3, R4);
    b.ldrb(R4, R2, static_cast<std::int64_t>(dim));
    b.add(R3, R3, R4);
    b.ldrb(R4, R2, -static_cast<std::int64_t>(dim));
    b.add(R3, R3, R4);
    // Threshold: bright pixels get marked (data dependent).
    b.movi(R5, 600);
    b.sub(R6, R3, R5);
    b.blt(R6, "dark");
    b.movi(R7, 255);
    b.b("emit");
    b.label("dark");
    b.lsr(R7, R3, 2);
    b.label("emit");
    b.strb(R7, R2, static_cast<std::int64_t>(img_bytes));
    b.addi(R0, R0, 1);
    b.cmplt(R6, R0, R1);
    b.bne(R6, "pixel");
    b.subi(R11, R11, 1);
    b.bne(R11, "rep");
    b.halt();

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = threads;
    w.memBytes = slice * threads;
    w.init = [img_bytes, slice, threads, name](isa::Memory &memory) {
        Rng rng("stencil:" + name);
        for (unsigned t = 0; t < threads; ++t) {
            std::uint64_t base = t * slice;
            for (std::uint64_t i = 0; i < img_bytes; ++i)
                memory.write(base + i, rng.uniformInt(256), 1);
        }
    };
    return w;
}

Workload
makeStringSearch(const std::string &name, const std::string &suite,
                 std::uint64_t text_bytes, std::uint64_t reps,
                 unsigned threads)
{
    // Naive pattern search; the inner compare loop exits early on the
    // first mismatch, so its branch is strongly biased.
    constexpr std::uint64_t pattern_len = 8;
    const std::uint64_t slice = text_bytes + 64 + 4096;

    isa::ProgramBuilder b(name);
    emitThreadBase(b, slice);
    b.movi(R11, static_cast<std::int64_t>(reps));
    b.label("rep");
    b.movi(R0, 0);  // text position
    b.movi(R1, static_cast<std::int64_t>(text_bytes - pattern_len));
    b.label("pos");
    b.movi(R2, 0);  // pattern index
    b.label("cmp");
    b.add(R3, RBASE, R0);
    b.add(R3, R3, R2);
    b.ldrb(R4, R3, 0);
    b.add(R5, RBASE, R2);
    b.ldrb(R6, R5, static_cast<std::int64_t>(text_bytes));
    b.sub(R7, R4, R6);
    b.bne(R7, "mismatch");
    b.addi(R2, R2, 1);
    b.movi(R8, pattern_len);
    b.cmplt(R7, R2, R8);
    b.bne(R7, "cmp");
    b.addi(R9, R9, 1);  // match found
    b.label("mismatch");
    b.addi(R0, R0, 1);
    b.cmplt(R7, R0, R1);
    b.bne(R7, "pos");
    b.subi(R11, R11, 1);
    b.bne(R11, "rep");
    b.halt();

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = threads;
    w.memBytes = slice * threads;
    w.init = [text_bytes, slice, threads, name](isa::Memory &memory) {
        Rng rng("search:" + name);
        for (unsigned t = 0; t < threads; ++t) {
            std::uint64_t base = t * slice;
            for (std::uint64_t i = 0; i < text_bytes; ++i)
                memory.write(base + i, 'a' + rng.uniformInt(16), 1);
            for (std::uint64_t i = 0; i < pattern_len; ++i) {
                memory.write(base + text_bytes + i,
                             'a' + rng.uniformInt(16), 1);
            }
        }
    };
    return w;
}

} // namespace gemstone::workload::kernels
