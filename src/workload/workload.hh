/**
 * @file
 * Workload definition and suite registry.
 *
 * The paper evaluates 65 workloads drawn from MiBench, ParMiBench,
 * LMBench, Roy Longbottom's collection, PARSEC (single- and
 * four-threaded), Dhrystone and Whetstone. This module provides a
 * synthetic suite of the same size and behavioural breadth over the
 * project ISA: embedded integer kernels, memory micro-patterns,
 * floating-point kernels, and multithreaded kernels with locks,
 * barriers and producer/consumer communication.
 */

#ifndef GEMSTONE_WORKLOAD_WORKLOAD_HH
#define GEMSTONE_WORKLOAD_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "isa/memory.hh"
#include "isa/program.hh"
#include "util/random.hh"

namespace gemstone::workload {

/** One runnable workload. */
struct Workload
{
    std::string name;     //!< e.g. "mi-crc32"
    std::string suite;    //!< "mibench", "parmibench", "parsec", ...
    isa::Program program;
    unsigned numThreads = 1;
    std::uint64_t memBytes = 1 << 20;
    /** Deterministic data initialisation (seeded by workload name). */
    std::function<void(isa::Memory &)> init;

    /** Initialise a memory instance for this workload. */
    void prepareMemory(isa::Memory &memory) const
    {
        memory.clear();
        if (init)
            init(memory);
    }
};

/**
 * The registry of all workloads.
 */
class Suite
{
  public:
    /** All 65 power-modelling workloads (Experiments 3 and 4). */
    static const std::vector<Workload> &all();

    /**
     * The 45-workload validation set used for gem5-model evaluation
     * (Experiment 1): MiBench, ParMiBench, PARSEC 1t/4t, Dhrystone
     * and Whetstone — no pure micro-benchmarks.
     */
    static std::vector<const Workload *> validationSet();

    /** Workloads of one suite. */
    static std::vector<const Workload *> bySuite(
        const std::string &suite);

    /** Find by name; fatal() if unknown. */
    static const Workload &byName(const std::string &name);

    /** All distinct suite tags. */
    static std::vector<std::string> suiteNames();
};

} // namespace gemstone::workload

#endif // GEMSTONE_WORKLOAD_WORKLOAD_HH
