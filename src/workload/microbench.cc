/**
 * @file
 * Micro-benchmark implementations.
 */

#include "workload/microbench.hh"

#include "util/strutil.hh"
#include "workload/kernels.hh"

namespace gemstone::workload {

Workload
makeLatMemRd(std::uint64_t array_bytes, std::uint64_t stride_bytes,
             std::uint64_t hops)
{
    std::uint64_t nodes = array_bytes / stride_bytes;
    if (nodes < 2)
        nodes = 2;
    std::string name = "lat_mem_rd-" +
        std::to_string(array_bytes / 1024) + "k-s" +
        std::to_string(stride_bytes);
    return kernels::makePointerChase(name, "microbench", nodes,
                                     stride_bytes, hops);
}

std::vector<std::uint64_t>
latMemRdSizes()
{
    // 4 KiB to 64 MiB, doubling — the x-axis of Fig. 4.
    std::vector<std::uint64_t> sizes;
    for (std::uint64_t size = 4 * 1024; size <= 64 * 1024 * 1024;
         size *= 2) {
        sizes.push_back(size);
    }
    return sizes;
}

} // namespace gemstone::workload
