/**
 * @file
 * The workload suite registry: 65 workloads mirroring the paper's
 * benchmark selection (Section III).
 *
 * Validation set (45 workloads, Experiment 1): MiBench (mi-),
 * ParMiBench (par-), PARSEC single- and four-threaded (parsec-*-1/-4),
 * Dhrystone, Whetstone. Power-modelling-only additions (Experiments
 * 3/4): LMBench micro-patterns (lm-) and Roy Longbottom's collection
 * (roy-), giving 65 in total.
 */

#include "workload/workload.hh"

#include <set>

#include "util/logging.hh"
#include "workload/kernels.hh"

namespace gemstone::workload {

namespace {

using namespace kernels;

std::vector<Workload>
buildAll()
{
    std::vector<Workload> w;
    w.reserve(65);

    // ---- MiBench (17, single-threaded embedded kernels) ----
    w.push_back(makeCrc("mi-sha", "mibench", 1024, 26));
    w.push_back(makeCrc("mi-crc32", "mibench", 2048, 14));
    w.push_back(makeSort("mi-qsort", "mibench", 48, 40));
    w.push_back(makeStencil("mi-susan-smoothing", "mibench", 96, 4));
    w.push_back(makeStencil("mi-susan-edges", "mibench", 64, 10));
    w.push_back(makeDijkstra("mi-dijkstra", "mibench", 256, 120));
    w.push_back(
        makePointerChase("mi-patricia", "mibench", 4096, 64, 90000));
    w.push_back(makeStringSearch("mi-stringsearch", "mibench", 2048,
                                 12));
    w.push_back(makeIntArith("mi-bitcount", "mibench", 30000, false));
    w.push_back(
        makeBranchPattern("mi-basicmath", "mibench", 6, 20000, 3));
    w.push_back(makeFftLike("mi-fft", "mibench", 1024, 30));
    w.push_back(makeFftLike("mi-fft-inv", "mibench", 2048, 14));
    w.push_back(makeSimdKernel("mi-jpeg", "mibench", 2048, 18));
    w.push_back(makeSwitchDispatch("mi-typeset", "mibench", 8, 30000));
    w.push_back(makeIntArith("mi-blowfish", "mibench", 28000, true));
    w.push_back(makeUnaligned("mi-gsm", "mibench", 6144, 8));
    w.push_back(makeRandomBranch("mi-adpcm", "mibench", 0.5, 30000));

    // ---- ParMiBench (10, four threads unless noted) ----
    // The rad2deg/deg2rad kernels carry the pathological periodic
    // branch patterns (the paper's Cluster 16 singleton).
    w.push_back(makeBranchPattern("par-basicmath-rad2deg",
                                  "parmibench", 4, 28000, 0));
    w.push_back(makeBranchPattern("par-basicmath-deg2rad",
                                  "parmibench", 3, 22000, 1));
    w.push_back(makeDijkstra("par-dijkstra", "parmibench", 192, 90, 4));
    w.push_back(makeStencil("par-susan", "parmibench", 80, 4, 4));
    w.push_back(makeStringSearch("par-stringsearch", "parmibench",
                                 1536, 8, 4));
    w.push_back(makeCrc("par-sha", "parmibench", 768, 20, 4));
    w.push_back(makeDataParallel("par-basicmath-sqrt", "parmibench",
                                 2048, 3, 4));
    w.push_back(
        makeIntArith("par-bitcount", "parmibench", 26000, false, 4));
    w.push_back(makePointerChase("par-patricia", "parmibench", 4096,
                                 64, 70000, 4));
    w.push_back(makeProducerConsumer("par-sha-pipeline", "parmibench",
                                     8000));

    // ---- PARSEC (8 applications x {1, 4} threads = 16) ----
    auto parsec = [&w](const std::string &app, auto &&factory) {
        w.push_back(factory(app + std::string("-1"), 1));
        w.push_back(factory(app + std::string("-4"), 4));
    };
    parsec("parsec-blackscholes", [](const std::string &n, unsigned t) {
        return makeDataParallel(n, "parsec", 4096, 4, t);
    });
    parsec("parsec-bodytrack", [](const std::string &n, unsigned t) {
        return makeStencil(n, "parsec", 96, 5, t);
    });
    parsec("parsec-canneal", [](const std::string &n, unsigned t) {
        return makeRandomAccess(n, "parsec", 4 * 1024 * 1024, 60000, t);
    });
    parsec("parsec-fluidanimate", [](const std::string &n, unsigned t) {
        return makeBarrierPhases(n, "parsec", 30, 1200, t);
    });
    parsec("parsec-streamcluster", [](const std::string &n,
                                      unsigned t) {
        return makeStreamCopy(n, "parsec", 16384, 10, t);
    });
    parsec("parsec-swaptions", [](const std::string &n, unsigned t) {
        return makeWhetstone(n, "parsec", 26000, t);
    });
    parsec("parsec-dedup", [](const std::string &n, unsigned t) {
        return makeCrc(n, "parsec", 1536, 14, t);
    });
    parsec("parsec-freqmine", [](const std::string &n, unsigned t) {
        return makeSpinLock(n, "parsec", 6000, t);
    });

    // ---- Classic synthetics (2) ----
    w.push_back(makeDhrystone("dhrystone", "dhrystone", 9000));
    w.push_back(makeWhetstone("whetstone", "whetstone", 25000));

    // ---- LMBench micro-patterns (10, power modelling only) ----
    w.push_back(makePointerChase("lm-lat-mem-rd-l1", "lmbench", 512,
                                 64, 150000));
    w.push_back(makePointerChase("lm-lat-mem-rd-l2", "lmbench", 8192,
                                 64, 120000));
    w.push_back(makePointerChase("lm-lat-mem-rd-dram", "lmbench",
                                 262144, 64, 60000));
    w.push_back(makeStreamSum("lm-bw-mem-rd", "lmbench", 65536, 8, 6));
    w.push_back(makeStreamStore("lm-bw-mem-wr", "lmbench", 32768, 10));
    w.push_back(makeStreamCopy("lm-bw-mem-cp", "lmbench", 24576, 8));
    w.push_back(makeIntArith("lm-ops-int", "lmbench", 35000, false));
    w.push_back(makeIntArith("lm-ops-div", "lmbench", 15000, true));
    w.push_back(makeWhetstone("lm-ops-fp", "lmbench", 22000));
    w.push_back(makeUnaligned("lm-stride-unaligned", "lmbench", 4096,
                              10));

    // ---- Roy Longbottom's collection (10, power modelling only) ----
    w.push_back(makeMatMul("roy-linpack", "roy", 20, 4));
    w.push_back(makeFftLike("roy-livermore", "roy", 512, 45));
    w.push_back(makeDhrystone("roy-drystone2", "roy", 8000));
    w.push_back(makeWhetstone("roy-whets-sp", "roy", 20000));
    w.push_back(makeStreamCopy("roy-memspeed", "roy", 16384, 10));
    w.push_back(makeSimdKernel("roy-neonspeed", "roy", 4096, 12));
    w.push_back(
        makeRandomAccess("roy-randmem", "roy", 1024 * 1024, 50000));
    w.push_back(makeStreamSum("roy-busspeed", "roy", 131072, 64, 5));
    w.push_back(makeIntArith("roy-intspeed", "roy", 32000, false));
    w.push_back(makeDataParallel("roy-fpuspeed", "roy", 8192, 2, 1));

    panic_if(w.size() != 65, "suite must contain 65 workloads, has ",
             w.size());
    return w;
}

} // namespace

const std::vector<Workload> &
Suite::all()
{
    static const std::vector<Workload> workloads = buildAll();
    return workloads;
}

std::vector<const Workload *>
Suite::validationSet()
{
    static const std::set<std::string> validation_suites = {
        "mibench", "parmibench", "parsec", "dhrystone", "whetstone"};
    std::vector<const Workload *> out;
    for (const Workload &w : all()) {
        if (validation_suites.count(w.suite))
            out.push_back(&w);
    }
    return out;
}

std::vector<const Workload *>
Suite::bySuite(const std::string &suite)
{
    std::vector<const Workload *> out;
    for (const Workload &w : all()) {
        if (w.suite == suite)
            out.push_back(&w);
    }
    return out;
}

const Workload &
Suite::byName(const std::string &name)
{
    for (const Workload &w : all()) {
        if (w.name == name)
            return w;
    }
    fatal("unknown workload '", name, "'");
}

std::vector<std::string>
Suite::suiteNames()
{
    std::set<std::string> names;
    for (const Workload &w : all())
        names.insert(w.suite);
    return {names.begin(), names.end()};
}

} // namespace gemstone::workload
