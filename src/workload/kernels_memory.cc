/**
 * @file
 * Memory-pattern kernel generators.
 */

#include "workload/kernels.hh"

#include <numeric>

#include "workload/kernels_common.hh"

namespace gemstone::workload::kernels {

Workload
makeStreamCopy(const std::string &name, const std::string &suite,
               std::uint64_t elements, std::uint64_t iters,
               unsigned threads)
{
    const std::uint64_t bytes = elements * 8;
    const std::uint64_t slice = 2 * bytes + 4096;

    isa::ProgramBuilder b(name);
    emitThreadBase(b, slice);
    b.movi(R11, static_cast<std::int64_t>(iters));
    b.label("outer");
    b.movi(R0, 0);
    b.movi(R1, static_cast<std::int64_t>(bytes));
    b.label("loop");
    b.add(R3, RBASE, R0);
    b.ldr(R4, R3, 0);
    b.str(R4, R3, static_cast<std::int64_t>(bytes));
    b.addi(R0, R0, 8);
    b.cmplt(R5, R0, R1);
    b.bne(R5, "loop");
    b.subi(R11, R11, 1);
    b.bne(R11, "outer");
    b.halt();

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = threads;
    w.memBytes = slice * threads;
    return w;
}

Workload
makeStreamStore(const std::string &name, const std::string &suite,
                std::uint64_t elements, std::uint64_t iters,
                unsigned threads)
{
    const std::uint64_t bytes = elements * 8;
    const std::uint64_t slice = bytes + 4096;

    isa::ProgramBuilder b(name);
    emitThreadBase(b, slice);
    b.movi(R11, static_cast<std::int64_t>(iters));
    b.movi(R4, 0x1234);
    b.label("outer");
    b.movi(R0, 0);
    b.movi(R1, static_cast<std::int64_t>(bytes));
    b.label("loop");
    b.add(R3, RBASE, R0);
    b.str(R4, R3, 0);
    b.addi(R4, R4, 1);
    b.addi(R0, R0, 8);
    b.cmplt(R5, R0, R1);
    b.bne(R5, "loop");
    b.subi(R11, R11, 1);
    b.bne(R11, "outer");
    b.halt();

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = threads;
    w.memBytes = slice * threads;
    return w;
}

Workload
makeStreamSum(const std::string &name, const std::string &suite,
              std::uint64_t elements, std::uint64_t stride,
              std::uint64_t iters, unsigned threads)
{
    const std::uint64_t bytes = elements * stride;
    const std::uint64_t slice = bytes + 4096;

    isa::ProgramBuilder b(name);
    emitThreadBase(b, slice);
    b.movi(R11, static_cast<std::int64_t>(iters));
    b.movi(R6, 0);  // accumulator
    b.label("outer");
    b.movi(R0, 0);
    b.movi(R1, static_cast<std::int64_t>(bytes));
    b.label("loop");
    b.add(R3, RBASE, R0);
    b.ldr(R4, R3, 0);
    b.add(R6, R6, R4);
    b.addi(R0, R0, static_cast<std::int64_t>(stride));
    b.cmplt(R5, R0, R1);
    b.bne(R5, "loop");
    b.subi(R11, R11, 1);
    b.bne(R11, "outer");
    b.halt();

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = threads;
    w.memBytes = slice * threads;
    return w;
}

Workload
makePointerChase(const std::string &name, const std::string &suite,
                 std::uint64_t nodes, std::uint64_t spacing,
                 std::uint64_t hops, unsigned threads)
{
    isa::ProgramBuilder b(name);
    b.movi(R0, 0);  // current node address
    b.movi(R1, static_cast<std::int64_t>(hops));
    b.label("loop");
    b.ldr(R0, R0, 0);
    b.subi(R1, R1, 1);
    b.bne(R1, "loop");
    b.halt();

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = threads;
    w.memBytes = nodes * spacing + 4096;
    w.init = [nodes, spacing, name](isa::Memory &memory) {
        // Build a random Hamiltonian cycle over the node slots so the
        // chase visits every node with no exploitable locality.
        Rng rng("ptr-chase:" + name);
        std::vector<std::uint64_t> order(nodes);
        std::iota(order.begin(), order.end(), 0);
        for (std::uint64_t i = nodes - 1; i > 0; --i) {
            std::uint64_t j = rng.uniformInt(i + 1);
            std::swap(order[i], order[j]);
        }
        for (std::uint64_t i = 0; i < nodes; ++i) {
            std::uint64_t from = order[i] * spacing;
            std::uint64_t to = order[(i + 1) % nodes] * spacing;
            memory.write64(from, to);
        }
    };
    return w;
}

Workload
makeRandomAccess(const std::string &name, const std::string &suite,
                 std::uint64_t table_bytes, std::uint64_t accesses,
                 unsigned threads)
{
    // The table is shared by all threads (stores cause snoops in the
    // multithreaded variants). Addresses are produced by an in-register
    // LCG, masked into the table and 8-byte aligned.
    const std::int64_t mask =
        static_cast<std::int64_t>((table_bytes - 1) & ~7ULL);

    isa::ProgramBuilder b(name);
    b.movi(R0, 88172645463325252LL);
    b.add(R0, R0, RTID);  // diverge the streams per thread
    b.movi(R1, static_cast<std::int64_t>(accesses));
    b.movi(R2, 6364136223846793005LL);
    b.movi(R3, 1442695040888963407LL);
    b.movi(R4, mask);
    b.label("loop");
    b.mul(R0, R0, R2);
    b.add(R0, R0, R3);
    b.lsr(R5, R0, 17);
    b.andr(R5, R5, R4);
    b.ldr(R7, R5, 0);
    b.addi(R7, R7, 1);
    b.str(R7, R5, 0);
    b.subi(R1, R1, 1);
    b.bne(R1, "loop");
    b.halt();

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = threads;
    w.memBytes = table_bytes;
    return w;
}

Workload
makeUnaligned(const std::string &name, const std::string &suite,
              std::uint64_t elements, std::uint64_t iters)
{
    const std::uint64_t bytes = elements * 16;

    isa::ProgramBuilder b(name);
    b.movi(R11, static_cast<std::int64_t>(iters));
    b.label("outer");
    b.movi(R0, 0);
    b.movi(R1, static_cast<std::int64_t>(bytes));
    b.label("loop");
    // Offset 3 keeps every access misaligned; some straddle lines.
    b.ldr(R4, R0, 3);
    b.addi(R4, R4, 7);
    b.str(R4, R0, 3);
    b.addi(R0, R0, 16);
    b.cmplt(R5, R0, R1);
    b.bne(R5, "loop");
    b.subi(R11, R11, 1);
    b.bne(R11, "outer");
    b.halt();

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = 1;
    w.memBytes = bytes + 4096;
    return w;
}

} // namespace gemstone::workload::kernels
