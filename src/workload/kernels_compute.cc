/**
 * @file
 * Compute-bound kernel generators (FP, SIMD, integer arithmetic).
 */

#include "workload/kernels.hh"

#include "workload/kernels_common.hh"

namespace gemstone::workload::kernels {

Workload
makeMatMul(const std::string &name, const std::string &suite,
           std::uint64_t n, std::uint64_t reps, unsigned threads)
{
    const std::int64_t row_bytes = static_cast<std::int64_t>(n * 8);
    const std::uint64_t mat_bytes = n * n * 8;
    const std::uint64_t slice = 3 * mat_bytes + 4096;
    // Layout within a slice: A at 0, B at mat_bytes, C at 2*mat_bytes.

    isa::ProgramBuilder b(name);
    emitThreadBase(b, slice);
    b.movi(R11, static_cast<std::int64_t>(reps));
    b.movi(R8, static_cast<std::int64_t>(n));

    b.label("rep");
    b.movi(R0, 0);  // i
    b.label("iloop");
    b.movi(R1, 0);  // j
    b.label("jloop");
    // f0 = 0; r9 = &A[i][0]; r10 = &B[0][j]
    b.fmovi(0, 0.0);
    b.movi(R6, row_bytes);
    b.mul(R9, R0, R6);
    b.add(R9, R9, RBASE);          // &A[i][0]
    b.lsl(R10, R1, 3);
    b.add(R10, R10, RBASE);
    b.addi(R10, R10, static_cast<std::int64_t>(mat_bytes));  // &B[0][j]
    b.movi(R2, 0);  // k
    b.label("kloop");
    b.fldr(1, R9, 0);
    b.fldr(2, R10, 0);
    b.fmul(3, 1, 2);
    b.fadd(0, 0, 3);
    b.addi(R9, R9, 8);
    b.addi(R10, R10, row_bytes);
    b.addi(R2, R2, 1);
    b.cmplt(R5, R2, R8);
    b.bne(R5, "kloop");
    // C[i][j] = f0
    b.mul(R7, R0, R6);
    b.lsl(R4, R1, 3);
    b.add(R7, R7, R4);
    b.add(R7, R7, RBASE);
    b.addi(R7, R7, static_cast<std::int64_t>(2 * mat_bytes));
    b.fstr(0, R7, 0);
    b.addi(R1, R1, 1);
    b.cmplt(R5, R1, R8);
    b.bne(R5, "jloop");
    b.addi(R0, R0, 1);
    b.cmplt(R5, R0, R8);
    b.bne(R5, "iloop");
    b.subi(R11, R11, 1);
    b.bne(R11, "rep");
    b.halt();

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = threads;
    w.memBytes = slice * threads;
    w.init = [n, slice, threads, mat_bytes](isa::Memory &memory) {
        for (unsigned t = 0; t < threads; ++t) {
            std::uint64_t base = t * slice;
            for (std::uint64_t i = 0; i < n * n; ++i) {
                double value = 1.0 + static_cast<double>(i % 7) * 0.125;
                writeDouble(memory, base + i * 8, value);
                writeDouble(memory, base + mat_bytes + i * 8,
                            2.0 - value * 0.25);
            }
        }
    };
    return w;
}

Workload
makeFftLike(const std::string &name, const std::string &suite,
            std::uint64_t size, std::uint64_t reps)
{
    // log2(size) passes of stride-doubling butterflies.
    const std::uint64_t bytes = size * 8;

    isa::ProgramBuilder b(name);
    b.movi(R11, static_cast<std::int64_t>(reps));
    b.label("rep");
    b.movi(R8, 8);  // stride in bytes, doubles each pass
    b.label("pass");
    b.movi(R0, 0);  // i (byte offset)
    b.label("bfly");
    // Pair (i, i + stride): a' = a + b, b' = a - b.
    b.add(R3, R0, R8);
    b.fldr(0, R0, 0);
    b.fldr(1, R3, 0);
    b.fadd(2, 0, 1);
    b.fsub(3, 0, 1);
    b.fstr(2, R0, 0);
    b.fstr(3, R3, 0);
    b.lsl(R4, R8, 1);
    b.add(R0, R0, R4);  // i += 2*stride
    b.movi(R5, static_cast<std::int64_t>(bytes));
    b.cmplt(R6, R0, R5);
    b.bne(R6, "bfly");
    b.lsl(R8, R8, 1);   // stride *= 2
    b.movi(R5, static_cast<std::int64_t>(bytes));
    b.cmplt(R6, R8, R5);
    b.bne(R6, "pass");
    b.subi(R11, R11, 1);
    b.bne(R11, "rep");
    b.halt();

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = 1;
    w.memBytes = bytes + 4096;
    w.init = [size](isa::Memory &memory) {
        for (std::uint64_t i = 0; i < size; ++i) {
            writeDouble(memory, i * 8,
                        0.5 + static_cast<double>(i % 16) * 0.0625);
        }
    };
    return w;
}

Workload
makeWhetstone(const std::string &name, const std::string &suite,
              std::uint64_t iters, unsigned threads)
{
    isa::ProgramBuilder b(name);
    b.movi(R0, static_cast<std::int64_t>(iters));
    b.fmovi(0, 1.0);
    b.fmovi(1, 1.25);
    b.fmovi(2, 0.5);
    b.fmovi(3, 2.75);
    b.label("loop");
    // Module-style mix modelled on the classic Whetstone loops.
    b.fmul(4, 0, 1);
    b.fadd(5, 4, 2);
    b.fsub(6, 5, 3);
    b.fdiv(7, 5, 1);
    b.fsqrt(8, 5);
    b.fmul(4, 7, 8);
    b.fadd(0, 2, 4);
    b.fmovi(0, 1.0);  // re-normalise to avoid drift to inf/zero
    b.subi(R0, R0, 1);
    b.bne(R0, "loop");
    b.halt();

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = threads;
    w.memBytes = 4096;
    return w;
}

Workload
makeSimdKernel(const std::string &name, const std::string &suite,
               std::uint64_t elements, std::uint64_t iters)
{
    const std::uint64_t bytes = elements * 8;

    isa::ProgramBuilder b(name);
    b.movi(R11, static_cast<std::int64_t>(iters));
    b.label("outer");
    b.movi(R0, 0);
    b.movi(R1, static_cast<std::int64_t>(bytes));
    b.label("loop");
    // Load a pair, run packed arithmetic, store the pair back.
    b.fldr(0, R0, 0);
    b.fldr(1, R0, 8);
    b.vmul(2, 0, 0);
    b.vadd(4, 2, 0);
    b.vadd(6, 4, 2);
    b.fstr(4, R0, 0);
    b.fstr(5, R0, 8);
    b.addi(R0, R0, 16);
    b.cmplt(R5, R0, R1);
    b.bne(R5, "loop");
    b.subi(R11, R11, 1);
    b.bne(R11, "outer");
    b.halt();

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = 1;
    w.memBytes = bytes + 4096;
    w.init = [elements](isa::Memory &memory) {
        for (std::uint64_t i = 0; i < elements; ++i)
            writeDouble(memory, i * 8, 0.001 * (1 + i % 97));
    };
    return w;
}

Workload
makeCrc(const std::string &name, const std::string &suite,
        std::uint64_t bytes, std::uint64_t reps, unsigned threads)
{
    // Table of 256 u64 entries at slice offset 0; data after it.
    const std::uint64_t table_bytes = 256 * 8;
    const std::uint64_t slice = table_bytes + bytes + 4096;

    isa::ProgramBuilder b(name);
    emitThreadBase(b, slice);
    b.movi(R11, static_cast<std::int64_t>(reps));
    b.label("rep");
    b.movi(R0, 0);                              // byte index
    b.movi(R1, static_cast<std::int64_t>(bytes));
    b.movi(R6, -1);                             // crc register
    b.label("loop");
    b.add(R3, RBASE, R0);
    b.ldrb(R4, R3, static_cast<std::int64_t>(table_bytes));
    b.eor(R5, R6, R4);
    b.movi(R7, 0xff);
    b.andr(R5, R5, R7);
    b.lsl(R5, R5, 3);                           // table offset
    b.add(R5, R5, RBASE);
    b.ldr(R8, R5, 0);                           // table lookup
    b.lsr(R6, R6, 8);
    b.eor(R6, R6, R8);
    b.addi(R0, R0, 1);
    b.cmplt(R9, R0, R1);
    b.bne(R9, "loop");
    b.subi(R11, R11, 1);
    b.bne(R11, "rep");
    b.halt();

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = threads;
    w.memBytes = slice * threads;
    w.init = [bytes, slice, threads, table_bytes,
              name](isa::Memory &memory) {
        Rng rng("crc:" + name);
        for (unsigned t = 0; t < threads; ++t) {
            std::uint64_t base = t * slice;
            for (std::uint64_t e = 0; e < 256; ++e)
                memory.write64(base + e * 8, rng.next());
            for (std::uint64_t i = 0; i < bytes; ++i) {
                memory.write(base + table_bytes + i,
                             rng.uniformInt(256), 1);
            }
        }
    };
    return w;
}

Workload
makeDhrystone(const std::string &name, const std::string &suite,
              std::uint64_t iters)
{
    // Mixed integer arithmetic, 8-byte record copies and short call
    // chains — the flavour of the classic Dhrystone loop.
    const std::uint64_t rec_bytes = 64;
    const std::uint64_t records = 64;
    const std::uint64_t bytes = rec_bytes * records * 2;

    isa::ProgramBuilder b(name);
    b.movi(R11, static_cast<std::int64_t>(iters));
    b.b("main");

    // Proc1: copy one 64-byte record (r2 = src, r3 = dst).
    b.label("proc1");
    b.movi(R4, 0);
    b.label("copy");
    b.add(R5, R2, R4);
    b.ldr(R6, R5, 0);
    b.add(R5, R3, R4);
    b.str(R6, R5, 0);
    b.addi(R4, R4, 8);
    b.movi(R7, static_cast<std::int64_t>(rec_bytes));
    b.cmplt(R8, R4, R7);
    b.bne(R8, "copy");
    b.ret();

    // Proc2: integer arithmetic on r9.
    b.label("proc2");
    b.addi(R9, R9, 13);
    b.movi(R4, 7);
    b.mul(R9, R9, R4);
    b.movi(R4, 11);
    b.divr(R9, R9, R4);
    b.ret();

    b.label("main");
    b.movi(R9, 42);
    b.label("loop");
    // Select a source/destination record pair from the loop counter.
    b.movi(R4, static_cast<std::int64_t>(records - 1));
    b.andr(R2, R11, R4);
    b.movi(R4, static_cast<std::int64_t>(rec_bytes));
    b.mul(R2, R2, R4);
    b.addi(R3, R2,
           static_cast<std::int64_t>(rec_bytes * records));
    b.bl("proc1");
    b.bl("proc2");
    // A comparison chain, mostly taken one way.
    b.movi(R4, 100000);
    b.cmplt(R5, R9, R4);
    b.beq(R5, "reset");
    b.b("cont");
    b.label("reset");
    b.movi(R9, 42);
    b.label("cont");
    b.subi(R11, R11, 1);
    b.bne(R11, "loop");
    b.halt();

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = 1;
    w.memBytes = bytes + 4096;
    w.init = [bytes, name](isa::Memory &memory) {
        Rng rng("dhry:" + name);
        for (std::uint64_t a = 0; a < bytes; a += 8)
            memory.write64(a, rng.next());
    };
    return w;
}

Workload
makeIntArith(const std::string &name, const std::string &suite,
             std::uint64_t iters, bool with_div, unsigned threads)
{
    isa::ProgramBuilder b(name);
    b.movi(R0, static_cast<std::int64_t>(iters));
    b.movi(R1, 0x9e3779b9);
    b.movi(R2, 0x85ebca6b);
    b.movi(R3, 1);
    b.label("loop");
    b.mul(R4, R1, R2);
    b.add(R5, R4, R3);
    b.eor(R1, R5, R2);
    b.lsl(R6, R1, 7);
    b.lsr(R7, R1, 9);
    b.orr(R2, R6, R7);
    if (with_div) {
        b.addi(R8, R2, 3);
        b.divr(R9, R4, R8);
        b.add(R3, R3, R9);
    } else {
        b.add(R3, R3, R4);
    }
    b.subi(R0, R0, 1);
    b.bne(R0, "loop");
    b.halt();

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = threads;
    w.memBytes = 4096;
    return w;
}

} // namespace gemstone::workload::kernels
