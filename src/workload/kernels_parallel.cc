/**
 * @file
 * Multithreaded kernel generators (locks, barriers, communication).
 *
 * Shared-memory layout convention: the first 4 KiB of workload memory
 * is a control page (locks, counters, flags); per-thread data slices
 * follow it. All multithreaded kernels are SPMD over the thread id in
 * r15.
 */

#include "workload/kernels.hh"

#include "workload/kernels_common.hh"

namespace gemstone::workload::kernels {

namespace {

/** Control-page addresses shared by the parallel kernels. */
constexpr std::int64_t lockAddr = 128;
constexpr std::int64_t counterAddr = 192;
constexpr std::int64_t senseAddr = 256;
constexpr std::int64_t slotAddr = 320;
constexpr std::int64_t flagAddr = 384;
constexpr std::int64_t fpSumAddr = 448;
constexpr std::uint64_t controlPage = 4096;

} // namespace

Workload
makeSpinLock(const std::string &name, const std::string &suite,
             std::uint64_t increments_per_thread, unsigned threads)
{
    isa::ProgramBuilder b(name);
    b.movi(R0, lockAddr);
    b.movi(R1, counterAddr);
    b.movi(R2, static_cast<std::int64_t>(increments_per_thread));
    b.label("loop");
    b.label("acquire");
    b.ldrex(R3, R0);
    b.bne(R3, "wait");       // lock held: spin outside the exclusive
    b.movi(R4, 1);
    b.strex(R5, R4, R0);
    b.bne(R5, "acquire");    // reservation lost: retry
    b.dmb();
    // Critical section: bump the shared counter.
    b.ldr(R6, R1, 0);
    b.addi(R6, R6, 1);
    b.str(R6, R1, 0);
    b.dmb();
    b.movi(R4, 0);
    b.str(R4, R0, 0);        // release
    b.subi(R2, R2, 1);
    b.bne(R2, "loop");
    b.halt();
    b.label("wait");
    b.ldr(R3, R0, 0);
    b.bne(R3, "wait");
    b.b("acquire");

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = threads;
    w.memBytes = controlPage * 2;
    return w;
}

Workload
makeBarrierPhases(const std::string &name, const std::string &suite,
                  unsigned phases, std::uint64_t work_per_phase,
                  unsigned threads)
{
    isa::ProgramBuilder b(name);
    b.movi(R10, 0);  // local barrier sense
    b.movi(R9, static_cast<std::int64_t>(phases));
    b.fmovi(0, 1.0001);
    b.fmovi(1, 0.9999);
    b.label("phase");
    // Work section.
    b.movi(R0, static_cast<std::int64_t>(work_per_phase));
    b.label("work");
    b.fmul(2, 0, 1);
    b.fadd(3, 2, 0);
    b.subi(R0, R0, 1);
    b.bne(R0, "work");
    // Sense-reversal barrier.
    b.movi(R1, counterAddr);
    b.label("arrive");
    b.ldrex(R2, R1);
    b.addi(R2, R2, 1);
    b.strex(R3, R2, R1);
    b.bne(R3, "arrive");
    b.dmb();
    b.movi(R4, static_cast<std::int64_t>(threads));
    b.sub(R5, R2, R4);
    b.bne(R5, "not_last");
    // Last arrival: reset the counter, then flip the shared sense.
    b.movi(R5, 0);
    b.str(R5, R1, 0);
    b.movi(R6, senseAddr);
    b.ldr(R7, R6, 0);
    b.movi(R8, 1);
    b.eor(R7, R7, R8);
    b.dmb();
    b.str(R7, R6, 0);
    b.b("done");
    b.label("not_last");
    b.movi(R6, senseAddr);
    b.label("spin");
    b.ldr(R7, R6, 0);
    b.sub(R8, R7, R10);
    b.beq(R8, "spin");   // sense unchanged: keep waiting
    b.label("done");
    b.movi(R8, 1);
    b.eor(R10, R10, R8); // flip local sense
    b.subi(R9, R9, 1);
    b.bne(R9, "phase");
    b.halt();

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = threads;
    w.memBytes = controlPage * 2;
    return w;
}

Workload
makeProducerConsumer(const std::string &name, const std::string &suite,
                     std::uint64_t items)
{
    isa::ProgramBuilder b(name);
    b.movi(R0, static_cast<std::int64_t>(items));
    b.movi(R1, slotAddr);
    b.movi(R2, flagAddr);
    b.movi(R3, 1);       // produced value seed
    b.bne(RTID, "consumer");

    // Producer (thread 0).
    b.label("p_loop");
    b.label("p_wait");
    b.ldr(R4, R2, 0);
    b.bne(R4, "p_wait");     // wait for an empty slot
    b.str(R3, R1, 0);
    b.dmb();
    b.movi(R4, 1);
    b.str(R4, R2, 0);
    b.addi(R3, R3, 1);
    b.subi(R0, R0, 1);
    b.bne(R0, "p_loop");
    b.halt();

    // Consumer (thread 1).
    b.label("consumer");
    b.label("c_loop");
    b.label("c_wait");
    b.ldr(R4, R2, 0);
    b.beq(R4, "c_wait");     // wait for a full slot
    b.dmb();
    b.ldr(R5, R1, 0);
    b.add(R6, R6, R5);
    b.dmb();
    b.movi(R4, 0);
    b.str(R4, R2, 0);
    b.subi(R0, R0, 1);
    b.bne(R0, "c_loop");
    b.halt();

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = 2;
    w.memBytes = controlPage * 2;
    return w;
}

Workload
makeDataParallel(const std::string &name, const std::string &suite,
                 std::uint64_t elements, std::uint64_t fp_intensity,
                 unsigned threads)
{
    const std::uint64_t bytes = elements * 8;
    const std::uint64_t slice = bytes + 4096;

    isa::ProgramBuilder b(name);
    // RBASE = controlPage + tid * slice.
    emitThreadBase(b, slice);
    b.addi(RBASE, RBASE, static_cast<std::int64_t>(controlPage));
    b.fmovi(0, 0.0);     // local accumulator
    b.fmovi(1, 1.059);   // work constant
    b.movi(R0, 0);
    b.movi(R1, static_cast<std::int64_t>(bytes));
    b.label("loop");
    b.add(R2, RBASE, R0);
    b.fldr(2, R2, 0);
    for (std::uint64_t i = 0; i < fp_intensity; ++i) {
        b.fmul(2, 2, 1);
        b.fadd(2, 2, 1);
    }
    b.fadd(0, 0, 2);
    b.fstr(2, R2, 0);
    b.addi(R0, R0, 8);
    b.cmplt(R3, R0, R1);
    b.bne(R3, "loop");

    // Lock-protected global reduction.
    b.movi(R4, lockAddr);
    b.label("acquire");
    b.ldrex(R5, R4);
    b.bne(R5, "wait");
    b.movi(R6, 1);
    b.strex(R7, R6, R4);
    b.bne(R7, "acquire");
    b.dmb();
    b.movi(R8, fpSumAddr);
    b.fldr(3, R8, 0);
    b.fadd(3, 3, 0);
    b.fstr(3, R8, 0);
    b.dmb();
    b.movi(R6, 0);
    b.str(R6, R4, 0);
    b.halt();
    b.label("wait");
    b.ldr(R5, R4, 0);
    b.bne(R5, "wait");
    b.b("acquire");

    Workload w;
    w.name = name;
    w.suite = suite;
    w.program = b.build();
    w.numThreads = threads;
    w.memBytes = controlPage + slice * threads;
    w.init = [elements, slice, threads, name](isa::Memory &memory) {
        Rng rng("datapar:" + name);
        for (unsigned t = 0; t < threads; ++t) {
            std::uint64_t base = controlPage + t * slice;
            for (std::uint64_t i = 0; i < elements; ++i) {
                writeDouble(memory, base + i * 8,
                            rng.uniform(0.1, 2.0));
            }
        }
    };
    return w;
}

} // namespace gemstone::workload::kernels
