/**
 * @file
 * LMBench-style micro-benchmarks used for Fig. 4 (memory latency).
 */

#ifndef GEMSTONE_WORKLOAD_MICROBENCH_HH
#define GEMSTONE_WORKLOAD_MICROBENCH_HH

#include <cstdint>
#include <vector>

#include "workload/workload.hh"

namespace gemstone::workload {

/**
 * lat_mem_rd-equivalent: a dependent pointer chase through an array
 * of the given size with a fixed stride. Dividing the measured run
 * time by the hop count yields the average load-to-use latency, which
 * steps up as the array outgrows each level of the memory hierarchy —
 * the curves of Fig. 4.
 *
 * @param array_bytes working-set size
 * @param stride_bytes distance between consecutively visited nodes
 * @param hops dependent loads to execute
 */
Workload makeLatMemRd(std::uint64_t array_bytes,
                      std::uint64_t stride_bytes, std::uint64_t hops);

/** The array sizes swept in the Fig. 4 reproduction. */
std::vector<std::uint64_t> latMemRdSizes();

} // namespace gemstone::workload

#endif // GEMSTONE_WORKLOAD_MICROBENCH_HH
