/**
 * @file
 * Internal helpers shared by the kernel generator translation units.
 */

#ifndef GEMSTONE_WORKLOAD_KERNELS_COMMON_HH
#define GEMSTONE_WORKLOAD_KERNELS_COMMON_HH

#include <cstring>

#include "isa/program.hh"
#include "util/random.hh"
#include "workload/workload.hh"

namespace gemstone::workload::kernels {

/** Scratch register aliases used by every kernel. */
constexpr unsigned R0 = 0;
constexpr unsigned R1 = 1;
constexpr unsigned R2 = 2;
constexpr unsigned R3 = 3;
constexpr unsigned R4 = 4;
constexpr unsigned R5 = 5;
constexpr unsigned R6 = 6;
constexpr unsigned R7 = 7;
constexpr unsigned R8 = 8;
constexpr unsigned R9 = 9;
constexpr unsigned R10 = 10;
constexpr unsigned R11 = 11;
constexpr unsigned R12 = 12;
/** Per-thread data base pointer (set by the standard prologue). */
constexpr unsigned RBASE = 13;
/** Thread id register (set by CpuState::reset). */
constexpr unsigned RTID = isa::threadIdReg;

/**
 * Emit the standard SPMD prologue: RBASE = thread_id * slice_bytes.
 */
inline void
emitThreadBase(isa::ProgramBuilder &b, std::uint64_t slice_bytes)
{
    b.movi(R12, static_cast<std::int64_t>(slice_bytes));
    b.mul(RBASE, RTID, R12);
}

/** Store a double's bit pattern into workload memory. */
inline void
writeDouble(isa::Memory &memory, std::uint64_t addr, double value)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    memory.write64(addr, bits);
}

/** Read a double's bit pattern from workload memory. */
inline double
readDouble(isa::Memory &memory, std::uint64_t addr)
{
    std::uint64_t bits = memory.read64(addr);
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

} // namespace gemstone::workload::kernels

#endif // GEMSTONE_WORKLOAD_KERNELS_COMMON_HH
