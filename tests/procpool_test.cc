/**
 * @file
 * The crash-isolated process pool and its wire protocol: framing and
 * payload round trips, worker crash/hang/overrun recovery, graceful
 * degradation to in-process execution, and cancellation.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <unistd.h>
#endif

#include "exec/procpool.hh"
#include "exec/wireproto.hh"
#include "util/cancellation.hh"

using namespace gemstone;
using exec::Frame;
using exec::FrameDecoder;
using exec::FrameType;
using exec::ProcPool;
using exec::WireReader;
using exec::WireWriter;

namespace {

/** Sleep without burning a core; EINTR-tolerant enough for tests. */
void
napMs(long ms)
{
    struct timespec nap{ms / 1000, (ms % 1000) * 1'000'000};
    ::nanosleep(&nap, nullptr);
}

/** Busy-wait while feeding the coop checkpoint (heartbeats flow). */
void
spinWithCheckpoints(long ms)
{
    for (long elapsed = 0; elapsed < ms; ++elapsed) {
        // Well past the hook's clock-check stride per millisecond.
        for (int i = 0; i < 5000; ++i)
            coopCheckpoint();
        napMs(1);
    }
}

} // namespace

TEST(WireProto, WriterReaderRoundTrip)
{
    WireWriter w;
    w.u8(0xfe);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefULL);
    w.f64(-0.0);
    w.f64(1e-308);  // denormal territory: bits must survive
    w.str(std::string("with\0nul and \nnewline", 21));
    w.str("");

    WireReader r(w.data());
    EXPECT_EQ(r.u8(), 0xfe);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    double negzero = r.f64();
    EXPECT_EQ(std::memcmp(&negzero, "\0\0\0\0\0\0\0\x80", 8), 0);
    EXPECT_EQ(r.f64(), 1e-308);
    EXPECT_EQ(r.str(), std::string("with\0nul and \nnewline", 21));
    EXPECT_EQ(r.str(), "");
    EXPECT_TRUE(r.done());
}

TEST(WireProto, TruncatedPayloadIsAnErrorNotACrash)
{
    WireWriter w;
    w.u32(7);
    w.str("hello");
    std::string cut = w.data().substr(0, w.data().size() - 2);

    WireReader r(cut);
    EXPECT_EQ(r.u32(), 7u);
    r.str();  // runs off the end
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.done());
    // Subsequent reads stay zero-valued, never UB.
    EXPECT_EQ(r.u64(), 0u);
}

TEST(WireProto, DecoderReassemblesArbitraryChunks)
{
    std::string stream;
    stream += exec::encodeFrame(FrameType::Hello, {});
    stream += exec::encodeFrame(FrameType::Task, "payload one");
    stream += exec::encodeFrame(FrameType::Result,
                                std::string("\0\x01\x02", 3));

    // Worst case: one byte at a time.
    FrameDecoder decoder;
    std::vector<Frame> frames;
    Frame frame;
    for (char c : stream) {
        decoder.feed(&c, 1);
        while (decoder.next(frame))
            frames.push_back(frame);
    }
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].type, FrameType::Hello);
    EXPECT_EQ(frames[1].type, FrameType::Task);
    EXPECT_EQ(frames[1].payload, "payload one");
    EXPECT_EQ(frames[2].type, FrameType::Result);
    EXPECT_EQ(frames[2].payload, std::string("\0\x01\x02", 3));
    EXPECT_FALSE(decoder.corrupt());
    EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(WireProto, AbsurdLengthPrefixLatchesCorrupt)
{
    // 0xffffffff bytes claimed: way past kMaxFramePayload.
    const char bogus[5] = {'\xff', '\xff', '\xff', '\xff', 1};
    FrameDecoder decoder;
    decoder.feed(bogus, sizeof bogus);
    Frame frame;
    EXPECT_FALSE(decoder.next(frame));
    EXPECT_TRUE(decoder.corrupt());
    // Feeding a valid frame afterwards must not resurrect it.
    std::string good = exec::encodeFrame(FrameType::Hello, {});
    decoder.feed(good.data(), good.size());
    EXPECT_FALSE(decoder.next(frame));
    EXPECT_TRUE(decoder.corrupt());
}

TEST(WireProto, TornFrameFuzzEveryTruncationPoint)
{
    // A realistic multi-frame stream, including an empty payload and
    // an embedded-NUL payload.
    std::string stream;
    stream += exec::encodeFrame(FrameType::Hello, {});
    stream += exec::encodeFrame(FrameType::Task, "payload one");
    stream += exec::encodeFrame(FrameType::Result,
                                std::string("\0\x01\x02", 3));
    std::vector<std::size_t> boundaries = {
        exec::encodeFrame(FrameType::Hello, {}).size()};
    boundaries.push_back(
        boundaries[0] +
        exec::encodeFrame(FrameType::Task, "payload one").size());
    boundaries.push_back(stream.size());

    // Tear the stream at every byte offset: the decoder must emit
    // exactly the frames whose bytes are fully present, buffer the
    // rest, and never latch corrupt — a torn frame is incomplete
    // input, not hostile input.
    for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
        FrameDecoder decoder;
        decoder.feed(stream.data(), cut);
        std::size_t complete = 0;
        Frame frame;
        while (decoder.next(frame))
            ++complete;
        std::size_t expected = 0;
        for (std::size_t boundary : boundaries)
            expected += cut >= boundary ? 1 : 0;
        EXPECT_EQ(complete, expected) << "cut at " << cut;
        EXPECT_FALSE(decoder.corrupt()) << "cut at " << cut;
        EXPECT_EQ(decoder.buffered(),
                  cut - (complete == 0
                             ? 0
                             : boundaries[complete - 1]))
            << "cut at " << cut;

        // Feeding the remainder always completes the stream: a torn
        // read followed by the rest of the bytes loses nothing.
        decoder.feed(stream.data() + cut, stream.size() - cut);
        while (decoder.next(frame))
            ++complete;
        EXPECT_EQ(complete, boundaries.size()) << "cut at " << cut;
        EXPECT_FALSE(decoder.corrupt());
        EXPECT_EQ(decoder.buffered(), 0u);
    }
}

TEST(WireProto, OversizedLengthFedByteAtATimeLatchesCleanly)
{
    // Length prefix one past the cap (the length field counts the
    // type byte, so the largest legal value is kMaxFramePayload + 1),
    // dribbled in a byte at a time: the decoder must latch corrupt as
    // soon as the length field convicts and stay latched — no
    // allocation of the claimed size, no partial frame, no
    // resurrection from later valid bytes.
    const std::uint64_t claimed = exec::kMaxFramePayload + 2;
    char header[5];
    header[0] = static_cast<char>(claimed & 0xff);
    header[1] = static_cast<char>((claimed >> 8) & 0xff);
    header[2] = static_cast<char>((claimed >> 16) & 0xff);
    header[3] = static_cast<char>((claimed >> 24) & 0xff);
    header[4] = 1;

    FrameDecoder decoder;
    Frame frame;
    for (std::size_t i = 0; i < sizeof header; ++i) {
        decoder.feed(header + i, 1);
        EXPECT_FALSE(decoder.next(frame));
        // The length field alone is enough to convict; the decoder
        // may latch as soon as all four length bytes are in.
        if (i < 3)
            EXPECT_FALSE(decoder.corrupt()) << "byte " << i;
    }
    EXPECT_TRUE(decoder.corrupt());

    std::string good = exec::encodeFrame(FrameType::Hello, {});
    for (char c : good) {
        decoder.feed(&c, 1);
        EXPECT_FALSE(decoder.next(frame));
    }
    EXPECT_TRUE(decoder.corrupt());
}

TEST(WireProto, StoreEntriesRoundTripBitExact)
{
    std::vector<std::pair<std::string, exec::ResultStore::Fields>>
        entries = {
            {"hw|dhrystone|1000",
             {{"exec_seconds", 0.1},           // not exactly
              {"power_watts", 1.0 / 3.0},     //   representable
              {"energy_joules", -0.0}}},
            {"g5|whets|600", {{"sim_seconds", 1e-308}}},
            {"empty|fields", {}},
        };
    std::string payload = exec::encodeStoreEntries(entries);

    std::vector<std::pair<std::string, exec::ResultStore::Fields>>
        decoded;
    ASSERT_TRUE(exec::decodeStoreEntries(payload, decoded));
    ASSERT_EQ(decoded.size(), entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        EXPECT_EQ(decoded[i].first, entries[i].first);
        ASSERT_EQ(decoded[i].second.size(), entries[i].second.size());
        for (std::size_t j = 0; j < entries[i].second.size(); ++j) {
            EXPECT_EQ(decoded[i].second[j].first,
                      entries[i].second[j].first);
            // Bit equality, not value equality: -0.0 must stay -0.0.
            EXPECT_EQ(std::memcmp(&decoded[i].second[j].second,
                                  &entries[i].second[j].second, 8),
                      0);
        }
    }

    // A truncated payload decodes to false, not to partial entries.
    std::string cut = payload.substr(0, payload.size() - 3);
    EXPECT_FALSE(exec::decodeStoreEntries(cut, decoded));
    EXPECT_TRUE(decoded.empty());
}

#if defined(__unix__) || defined(__APPLE__)

TEST(ProcPoolTest, EchoRoundTrip)
{
    ProcPool::Config config;
    config.workers = 2;
    ProcPool pool(config, [](const std::string &payload, unsigned) {
        return "echo:" + payload;
    });

    std::vector<std::string> tasks;
    for (int i = 0; i < 8; ++i)
        tasks.push_back("task" + std::to_string(i));
    std::vector<ProcPool::TaskResult> results = pool.runAll(tasks);

    ASSERT_EQ(results.size(), tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        EXPECT_TRUE(results[i].completed);
        EXPECT_FALSE(results[i].inProcess);
        EXPECT_EQ(results[i].payload, "echo:" + tasks[i]);
        EXPECT_TRUE(results[i].error.empty());
    }
    EXPECT_EQ(pool.stats().tasksTotal, tasks.size());
    EXPECT_EQ(pool.stats().tasksCompleted, tasks.size());
    EXPECT_EQ(pool.stats().tasksFallback, 0u);
    EXPECT_EQ(pool.stats().workerDeaths, 0u);
}

TEST(ProcPoolTest, WorkerExceptionBecomesTaskError)
{
    ProcPool::Config config;
    config.workers = 2;
    ProcPool pool(config, [](const std::string &payload, unsigned) {
        if (payload == "boom")
            throw std::runtime_error("task exploded");
        return std::string("ok");
    });

    std::vector<ProcPool::TaskResult> results =
        pool.runAll({"fine", "boom", "fine"});
    EXPECT_TRUE(results[0].completed);
    EXPECT_FALSE(results[1].completed);
    EXPECT_EQ(results[1].error, "task exploded");
    EXPECT_TRUE(results[2].completed);
    // A throwing task costs no worker: the process survives.
    EXPECT_EQ(pool.stats().workerDeaths, 0u);
    EXPECT_EQ(pool.stats().taskFailures, 1u);
}

TEST(ProcPoolTest, KilledWorkerIsReapedAndTaskRedispatched)
{
    // One worker, so recovering the orphaned task forces a respawn
    // rather than merely borrowing a surviving sibling.
    ProcPool::Config config;
    config.workers = 1;
    ProcPool pool(config, [](const std::string &payload,
                             unsigned dispatch) {
        if (payload == "die" && dispatch == 0 &&
            ProcPool::insideWorker()) {
            ::kill(::getpid(), SIGKILL);
        }
        return "survived:" + std::to_string(dispatch);
    });

    std::vector<ProcPool::TaskResult> results =
        pool.runAll({"die", "live"});
    ASSERT_TRUE(results[0].completed);
    EXPECT_EQ(results[0].payload, "survived:1");
    EXPECT_FALSE(results[0].inProcess);
    EXPECT_TRUE(results[1].completed);
    EXPECT_GE(pool.stats().workerDeaths, 1u);
    EXPECT_GE(pool.stats().redispatches, 1u);
    EXPECT_GE(pool.stats().respawns, 1u);
}

TEST(ProcPoolTest, SilentWorkerIsKilledByHeartbeatTimeout)
{
    ProcPool::Config config;
    config.workers = 2;
    config.heartbeatTimeoutSeconds = 0.25;
    ProcPool pool(config, [](const std::string &payload,
                             unsigned dispatch) {
        if (payload == "hang" && dispatch == 0 &&
            ProcPool::insideWorker()) {
            // Wedged: no coopCheckpoint calls, so no heartbeats.
            for (;;)
                napMs(50);
        }
        return std::string("done");
    });

    std::vector<ProcPool::TaskResult> results =
        pool.runAll({"hang", "other"});
    EXPECT_TRUE(results[0].completed);
    EXPECT_TRUE(results[1].completed);
    EXPECT_GE(pool.stats().heartbeatKills, 1u);
    EXPECT_GE(pool.stats().redispatches, 1u);
}

TEST(ProcPoolTest, HeartbeatsKeepASlowWorkerAlive)
{
    // The inverse of the hang test: a run that takes several times
    // the heartbeat timeout but polls its checkpoints is never
    // condemned.
    ProcPool::Config config;
    config.workers = 1;
    config.heartbeatIntervalSeconds = 0.02;
    config.heartbeatTimeoutSeconds = 0.2;
    ProcPool pool(config, [](const std::string &, unsigned) {
        spinWithCheckpoints(600);
        return std::string("slow but alive");
    });

    std::vector<ProcPool::TaskResult> results = pool.runAll({"t"});
    ASSERT_TRUE(results[0].completed);
    EXPECT_EQ(results[0].payload, "slow but alive");
    EXPECT_EQ(pool.stats().heartbeatKills, 0u);
    EXPECT_EQ(pool.stats().workerDeaths, 0u);
}

TEST(ProcPoolTest, DeadlineKillsOverrunningDispatch)
{
    ProcPool::Config config;
    config.workers = 1;
    config.heartbeatIntervalSeconds = 0.02;
    config.heartbeatTimeoutSeconds = 10.0;  // heartbeats keep flowing
    config.taskDeadlineSeconds = 0.25;
    ProcPool pool(config, [](const std::string &,
                             unsigned dispatch) {
        if (dispatch == 0 && ProcPool::insideWorker())
            spinWithCheckpoints(30'000);  // heartbeating overrun
        return "attempt:" + std::to_string(dispatch);
    });

    std::vector<ProcPool::TaskResult> results = pool.runAll({"t"});
    ASSERT_TRUE(results[0].completed);
    EXPECT_EQ(results[0].payload, "attempt:1");
    EXPECT_GE(pool.stats().deadlineKills, 1u);
    EXPECT_EQ(pool.stats().heartbeatKills, 0u);
}

TEST(ProcPoolTest, ExhaustedPoolDegradesToInProcessFallback)
{
    // Every worker dispatch dies instantly; with the respawn budget
    // spent the pool must finish everything in the coordinator and
    // still report success. This is the "campaign that loses every
    // worker" contract.
    ProcPool::Config config;
    config.workers = 2;
    config.maxRespawns = 2;
    config.maxDispatchesPerTask = 2;
    ProcPool pool(config, [](const std::string &payload, unsigned) {
        if (ProcPool::insideWorker())
            ::kill(::getpid(), SIGKILL);
        return "inproc:" + payload;
    });

    std::vector<std::string> tasks = {"a", "b", "c", "d", "e"};
    std::vector<ProcPool::TaskResult> results = pool.runAll(tasks);
    ASSERT_EQ(results.size(), tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        EXPECT_TRUE(results[i].completed);
        EXPECT_TRUE(results[i].inProcess);
        EXPECT_EQ(results[i].payload, "inproc:" + tasks[i]);
    }
    EXPECT_EQ(pool.stats().tasksFallback, tasks.size());
    EXPECT_GE(pool.stats().workerDeaths, 2u);
}

TEST(ProcPoolTest, FallbackDisabledLeavesTasksIncomplete)
{
    // A generous dispatch budget but no respawns: the single worker
    // dies once and the pool is exhausted with the task still
    // pending — which, with fallback disabled, leaves it incomplete.
    ProcPool::Config config;
    config.workers = 1;
    config.maxRespawns = 0;
    config.maxDispatchesPerTask = 3;
    config.inProcessFallback = false;
    ProcPool pool(config, [](const std::string &, unsigned) {
        if (ProcPool::insideWorker())
            ::kill(::getpid(), SIGKILL);
        return std::string("unreachable");
    });

    std::vector<ProcPool::TaskResult> results = pool.runAll({"t"});
    EXPECT_FALSE(results[0].completed);
    EXPECT_TRUE(pool.stats().poolExhausted);
    EXPECT_EQ(pool.stats().tasksFallback, 0u);
}

TEST(ProcPoolTest, CancellationStopsDispatchWithoutFallback)
{
    ProcPool::Config config;
    config.workers = 2;
    config.cancel.requestCancel();
    ProcPool pool(config, [](const std::string &, unsigned) {
        return std::string("never runs");
    });

    std::vector<ProcPool::TaskResult> results =
        pool.runAll({"a", "b", "c"});
    for (const ProcPool::TaskResult &result : results) {
        EXPECT_FALSE(result.completed);
        EXPECT_TRUE(result.payload.empty());
    }
    EXPECT_EQ(pool.stats().tasksCompleted, 0u);
    EXPECT_EQ(pool.stats().tasksFallback, 0u);
}

TEST(ProcPoolTest, ExpiredPoolDeadlineStopsLikeCancellation)
{
    ProcPool::Config config;
    config.workers = 2;
    config.deadline = Deadline::after(0);  // expired immediately
    ProcPool pool(config, [](const std::string &, unsigned) {
        return std::string("never runs");
    });

    std::vector<ProcPool::TaskResult> results =
        pool.runAll({"a", "b"});
    for (const ProcPool::TaskResult &result : results)
        EXPECT_FALSE(result.completed);
    EXPECT_EQ(pool.stats().tasksCompleted, 0u);
    EXPECT_EQ(pool.stats().tasksFallback, 0u);
}

TEST(ProcPoolTest, CoordinatorIsNotInsideWorker)
{
    EXPECT_FALSE(ProcPool::insideWorker());
}

#endif // unix
