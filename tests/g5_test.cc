/**
 * @file
 * Tests of the g5 simulator facade: configurations carry the
 * documented specification errors, the stats dump has gem5 shape,
 * and the two simulator versions differ exactly as Section VII says.
 */

#include <gtest/gtest.h>

#include "g5/config.hh"
#include "g5/simulator.hh"
#include "hwsim/platform.hh"
#include "workload/workload.hh"

using namespace gemstone;
using namespace gemstone::g5;

// ---------------------------------------------------------------------
// Configurations
// ---------------------------------------------------------------------

TEST(Ex5Config, BigCarriesDocumentedSpecErrors)
{
    uarch::ClusterConfig model = ex5Config(G5Model::Ex5Big, 1);
    uarch::ClusterConfig truth = hwsim::trueBigConfig();

    // 64-entry L1 ITLB vs 32 on hardware (Section IV-F).
    EXPECT_EQ(model.core.itlb.entries, 64u);
    EXPECT_EQ(truth.core.itlb.entries, 32u);

    // Split 8-way L2 TLBs at 4 cycles vs shared 4-way at 2 cycles.
    EXPECT_FALSE(model.core.unifiedL2Tlb);
    EXPECT_TRUE(truth.core.unifiedL2Tlb);
    EXPECT_EQ(model.core.l2TlbInstr.assoc, 8u);
    EXPECT_DOUBLE_EQ(model.core.l2TlbInstr.latency, 4.0);

    // DRAM latency too low.
    EXPECT_LT(model.dram.rowMissNs, truth.dram.rowMissNs);
    EXPECT_LT(model.dram.rowHitNs, truth.dram.rowHitNs);

    // Always write-allocate, per-instruction I-cache lookup.
    EXPECT_FALSE(model.core.l1d.writeStreaming);
    EXPECT_EQ(model.core.fetchGroupInsts, 1u);

    // Over-aggressive prefetcher and cheap synchronisation.
    EXPECT_GT(model.l2.prefetchDegree, truth.l2.prefetchDegree);
    EXPECT_LT(model.core.barrierCost, truth.core.barrierCost);
    EXPECT_LT(model.core.exclusiveCost, truth.core.exclusiveCost);

    // The buggy branch predictor.
    EXPECT_EQ(model.core.bpKind, uarch::BpKind::Gshare);
    EXPECT_EQ(model.core.gshareConfig.version, 1);
}

TEST(Ex5Config, VersionTwoOnlyFixesTheBranchPredictor)
{
    uarch::ClusterConfig v1 = ex5Config(G5Model::Ex5Big, 1);
    uarch::ClusterConfig v2 = ex5Config(G5Model::Ex5Big, 2);
    EXPECT_EQ(v1.core.gshareConfig.version, 1);
    EXPECT_EQ(v2.core.gshareConfig.version, 2);
    // Everything else is unchanged between releases.
    EXPECT_EQ(v1.core.itlb.entries, v2.core.itlb.entries);
    EXPECT_DOUBLE_EQ(v1.dram.rowMissNs, v2.dram.rowMissNs);
    EXPECT_DOUBLE_EQ(v1.core.barrierCost, v2.core.barrierCost);
    EXPECT_EQ(v1.l2.prefetchDegree, v2.l2.prefetchDegree);
}

TEST(Ex5Config, LittleHasHighL2LatencyAndLowDram)
{
    uarch::ClusterConfig model = ex5Config(G5Model::Ex5Little, 1);
    uarch::ClusterConfig truth = hwsim::trueLittleConfig();
    EXPECT_GT(model.l2.hitLatency, truth.l2.hitLatency);
    EXPECT_LT(model.dram.rowMissNs, truth.dram.rowMissNs);
}

TEST(Ex5Config, InvalidVersionFatals)
{
    EXPECT_EXIT(ex5Config(G5Model::Ex5Big, 3),
                ::testing::ExitedWithCode(1), "version");
}

TEST(Ex5Config, ModelTags)
{
    EXPECT_EQ(modelTag(G5Model::Ex5Big), "ex5_big");
    EXPECT_EQ(modelTag(G5Model::Ex5Little), "ex5_LITTLE");
}

// ---------------------------------------------------------------------
// Simulation and the stats dump
// ---------------------------------------------------------------------

class G5Run : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        sim = new G5Simulation(1);
        stats = new G5Stats(sim->run(
            workload::Suite::byName("mi-dijkstra"),
            G5Model::Ex5Big, 1000.0));
    }
    static void TearDownTestSuite()
    {
        delete stats;
        delete sim;
    }
    static G5Simulation *sim;
    static G5Stats *stats;
};

G5Simulation *G5Run::sim = nullptr;
G5Stats *G5Run::stats = nullptr;

TEST_F(G5Run, DumpHasGem5StyleNames)
{
    for (const char *name :
         {"sim_seconds", "sim_insts",
          "system.cpu.numCycles",
          "system.cpu.committedInsts",
          "system.cpu.branchPred.condIncorrect",
          "system.cpu.branchPred.RASInCorrect",
          "system.cpu.icache.overall_accesses::total",
          "system.cpu.dcache.WriteReq_misses::total",
          "system.cpu.dcache.writebacks::total",
          "system.cpu.itb.misses",
          "system.cpu.itb_walker_cache.overall_accesses::total",
          "system.cpu.dtb_walker_cache.overall_accesses::total",
          "system.cpu.dtb.prefetch_faults",
          "system.cpu.iew.exec_nop",
          "system.cpu.fetch.TlbCycles",
          "system.cpu.commit.commitNonSpecStalls",
          "system.l2.ReadExReq_hits::total",
          "system.l2.overall_misses::total",
          "system.mem_ctrls.num_reads::total"}) {
        EXPECT_TRUE(stats->stats.count(name)) << "missing " << name;
    }
    // The dump is rich, like a real gem5 stats.txt.
    EXPECT_GT(stats->stats.size(), 100u);
}

TEST_F(G5Run, FpMisclassifiedAsSimd)
{
    // The counting quirk of Section V: scalar VFP lands in the SIMD
    // statistic and the FP statistic stays empty.
    G5Stats whet = sim->run(workload::Suite::byName("whetstone"),
                            G5Model::Ex5Big, 1000.0);
    EXPECT_DOUBLE_EQ(whet.value("system.cpu.commit.fp_insts"), 0.0);
    EXPECT_GT(whet.value("system.cpu.commit.simd_insts"), 100000.0);
    EXPECT_DOUBLE_EQ(
        whet.value("system.cpu.iq.FU_type_0::FloatAdd"), 0.0);
}

TEST_F(G5Run, ValueAndRateHelpers)
{
    double insts = stats->value("system.cpu.committedInsts");
    EXPECT_GT(insts, 100000.0);
    EXPECT_DOUBLE_EQ(stats->value("no.such.stat"), 0.0);
    EXPECT_NEAR(stats->rate("system.cpu.committedInsts"),
                insts / stats->simSeconds, 1e-6);
}

TEST_F(G5Run, SimSecondsConsistentWithCyclesAndFrequency)
{
    double cycles = stats->value("system.cpu.numCycles");
    EXPECT_NEAR(stats->simSeconds, cycles / 1e9,
                stats->simSeconds * 1e-9);
}

TEST_F(G5Run, StatsTextRendering)
{
    std::string text = stats->statsText();
    EXPECT_NE(text.find("Begin Simulation Statistics"),
              std::string::npos);
    EXPECT_NE(text.find("system.cpu.numCycles"), std::string::npos);
}

TEST_F(G5Run, IpcWithinPhysicalBounds)
{
    double ipc = stats->value("system.cpu.ipc");
    EXPECT_GT(ipc, 0.05);
    EXPECT_LE(ipc, 3.3);  // issue width ceiling
}

TEST_F(G5Run, DeterministicAcrossInstances)
{
    G5Simulation other(1);
    G5Stats again = other.run(
        workload::Suite::byName("mi-dijkstra"), G5Model::Ex5Big,
        1000.0);
    EXPECT_DOUBLE_EQ(again.simSeconds, stats->simSeconds);
    EXPECT_DOUBLE_EQ(
        again.value("system.cpu.commit.branchMispredicts"),
        stats->value("system.cpu.commit.branchMispredicts"));
}

TEST_F(G5Run, FrequencyRetimePreservesEvents)
{
    G5Stats fast = sim->run(workload::Suite::byName("mi-dijkstra"),
                            G5Model::Ex5Big, 1800.0);
    EXPECT_LT(fast.simSeconds, stats->simSeconds);
    EXPECT_DOUBLE_EQ(fast.value("system.cpu.committedInsts"),
                     stats->value("system.cpu.committedInsts"));
    EXPECT_DOUBLE_EQ(
        fast.value("system.cpu.dcache.overall_misses::total"),
        stats->value("system.cpu.dcache.overall_misses::total"));
}

TEST(G5Version, BuggyPredictorMispredictsMore)
{
    const workload::Workload &pattern =
        workload::Suite::byName("par-basicmath-rad2deg");
    G5Simulation v1(1);
    G5Simulation v2(2);
    G5Stats s1 = v1.run(pattern, G5Model::Ex5Big, 1000.0);
    G5Stats s2 = v2.run(pattern, G5Model::Ex5Big, 1000.0);

    double m1 = s1.value("system.cpu.commit.branchMispredicts");
    double m2 = s2.value("system.cpu.commit.branchMispredicts");
    EXPECT_GT(m1, 10.0 * m2);       // the storm
    EXPECT_GT(s1.simSeconds, 1.5 * s2.simSeconds);
    // Committed instructions are architectural: identical.
    EXPECT_DOUBLE_EQ(s1.value("system.cpu.committedInsts"),
                     s2.value("system.cpu.committedInsts"));
}

TEST(G5Version, InvalidVersionFatals)
{
    EXPECT_EXIT(G5Simulation bad(0), ::testing::ExitedWithCode(1),
                "version");
}
