/**
 * @file
 * End-to-end integration tests: the full GemStone pipeline must
 * reproduce the paper's headline findings (within generous bands —
 * exact values are recorded in EXPERIMENTS.md).
 */

#include <gtest/gtest.h>

#include "gemstone/analysis.hh"
#include "mlstat/correlation.hh"
#include "mlstat/descriptive.hh"
#include "gemstone/powereval.hh"
#include "gemstone/runner.hh"
#include "workload/microbench.hh"

using namespace gemstone;
using namespace gemstone::core;

namespace {

class PaperHeadlines : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        RunnerConfig v1_config;
        v1_config.g5Version = 1;
        v1 = new ExperimentRunner(v1_config);
        big_v1 = new ValidationDataset(
            v1->runValidation(hwsim::CpuCluster::BigA15, {1000.0}));

        RunnerConfig v2_config;
        v2_config.g5Version = 2;
        v2 = new ExperimentRunner(v2_config);
        big_v2 = new ValidationDataset(
            v2->runValidation(hwsim::CpuCluster::BigA15, {1000.0}));

        little_v1 = new ValidationDataset(v1->runValidation(
            hwsim::CpuCluster::LittleA7, {1000.0}));
    }
    static void TearDownTestSuite()
    {
        delete little_v1;
        delete big_v2;
        delete big_v1;
        delete v2;
        delete v1;
    }

    static ExperimentRunner *v1;
    static ExperimentRunner *v2;
    static ValidationDataset *big_v1;
    static ValidationDataset *big_v2;
    static ValidationDataset *little_v1;
};

ExperimentRunner *PaperHeadlines::v1 = nullptr;
ExperimentRunner *PaperHeadlines::v2 = nullptr;
ValidationDataset *PaperHeadlines::big_v1 = nullptr;
ValidationDataset *PaperHeadlines::big_v2 = nullptr;
ValidationDataset *PaperHeadlines::little_v1 = nullptr;

} // namespace

TEST_F(PaperHeadlines, BigModelV1OverestimatesExecutionTime)
{
    // Paper: MPE -51%, MAPE 59% at 1 GHz.
    double mpe = big_v1->execMpeAt(1000.0);
    double mape = big_v1->execMapeAt(1000.0);
    EXPECT_LT(mpe, -0.35);
    EXPECT_GT(mpe, -0.70);
    EXPECT_GT(mape, 0.40);
    EXPECT_LT(mape, 0.85);
}

TEST_F(PaperHeadlines, LittleModelIsMuchCloser)
{
    // Paper: MAPE 20%, MPE +8.5% at 1 GHz; the in-order model
    // slightly underestimates execution time.
    double mpe = little_v1->execMpeAt(1000.0);
    double mape = little_v1->execMapeAt(1000.0);
    EXPECT_GT(mpe, 0.0);
    EXPECT_LT(mpe, 0.25);
    EXPECT_LT(mape, 0.35);
    EXPECT_LT(mape, big_v1->execMapeAt(1000.0));
}

TEST_F(PaperHeadlines, BpFixSwingsTheError)
{
    // Paper Section VII: MPE swings from -51% to +10%, MAPE from
    // 59% to 18%.
    double mpe_v1 = big_v1->execMpeAt(1000.0);
    double mpe_v2 = big_v2->execMpeAt(1000.0);
    EXPECT_LT(mpe_v1, -0.3);
    EXPECT_GT(mpe_v2, 0.0);
    EXPECT_LT(mpe_v2, 0.25);
    EXPECT_LT(big_v2->execMapeAt(1000.0),
              big_v1->execMapeAt(1000.0) * 0.5);
}

TEST_F(PaperHeadlines, PathologicalWorkloadIsExtreme)
{
    // Paper: par-basicmath-rad2deg at -268% MPE, hardware BP
    // accuracy 99.9% vs model < 1%.
    const ValidationRecord *r =
        big_v1->find("par-basicmath-rad2deg", 1000.0);
    ASSERT_NE(r, nullptr);
    EXPECT_LT(r->execMpe(), -1.5);

    double hw_acc =
        1.0 - r->hw.pmcValue(0x10) / r->hw.pmcValue(0x12);
    EXPECT_GT(hw_acc, 0.99);

    // The fixed simulator recovers this workload almost exactly.
    const ValidationRecord *fixed =
        big_v2->find("par-basicmath-rad2deg", 1000.0);
    ASSERT_NE(fixed, nullptr);
    EXPECT_GT(fixed->execMpe(), -0.2);
    EXPECT_LT(fixed->execMpe(), 0.2);
}

TEST_F(PaperHeadlines, SyncHeavyWorkloadsHavePositiveError)
{
    // The Fig. 5 cluster-1 story: workloads dominated by exclusive
    // accesses and barriers run *faster* on the model (cheap sync).
    const ValidationRecord *lock =
        big_v1->find("parsec-freqmine-4", 1000.0);
    ASSERT_NE(lock, nullptr);
    EXPECT_GT(lock->execMpe(), 0.15);
}

TEST_F(PaperHeadlines, DramBoundCodeRunsTooFastInModel)
{
    // Fig. 4: the modelled DRAM latency is too low, so a
    // DRAM-resident pointer chase finishes too fast on the model.
    workload::Workload probe =
        workload::makeLatMemRd(16 * 1024 * 1024, 256, 30000);
    hwsim::HwMeasurement hw = v1->platform().measure(
        probe, hwsim::CpuCluster::BigA15, 1000.0, 1);
    g5::G5Stats sim = v1->simulator().run(
        probe, g5::G5Model::Ex5Big, 1000.0);
    double mpe =
        mlstat::percentError(hw.execSeconds, sim.simSeconds);
    EXPECT_GT(mpe, 0.10);
}

TEST_F(PaperHeadlines, InstructionCountsMatchAcrossPlatforms)
{
    // Fig. 6: event 0x08 is ~1.0x between hardware and the model
    // for every workload (the PMU noise is under a percent).
    for (const ValidationRecord &r : big_v1->records) {
        double hw = r.hw.pmcValue(0x08);
        double g5 = r.g5.value("system.cpu.committedInsts");
        EXPECT_NEAR(g5 / hw, 1.0, 0.03) << r.work->name;
    }
}

TEST_F(PaperHeadlines, MispredictsExplodeOnlyInV1)
{
    // The paper's Fig. 6 reports the *mean per-workload ratio* of
    // model to hardware branch mispredictions: 21x in v1.
    auto mean_ratio = [](const ValidationDataset &ds) {
        std::vector<double> ratios;
        for (const ValidationRecord &r : ds.records) {
            double hw = r.hw.pmcValue(0x10);
            if (hw < 1.0)
                continue;
            ratios.push_back(
                r.g5.value("system.cpu.commit.branchMispredicts") /
                hw);
        }
        return mlstat::mean(ratios);
    };
    double ratio_v1 = mean_ratio(*big_v1);
    double ratio_v2 = mean_ratio(*big_v2);
    EXPECT_GT(ratio_v1, 5.0);               // paper: 21x
    EXPECT_LT(ratio_v2, 0.5 * ratio_v1);    // fixed
}

TEST_F(PaperHeadlines, ErrorPatternStableAcrossFrequencies)
{
    // Section IV: "workload errors have a similar pattern across all
    // frequencies" — per-workload MPEs at 600 MHz and 1.8 GHz are
    // strongly correlated.
    ValidationDataset low = v1->runValidation(
        hwsim::CpuCluster::BigA15, {600.0});
    ValidationDataset high = v1->runValidation(
        hwsim::CpuCluster::BigA15, {1800.0});
    std::vector<double> mpe_low;
    std::vector<double> mpe_high;
    for (const std::string &name : low.workloadNames()) {
        mpe_low.push_back(low.find(name, 600.0)->execMpe());
        mpe_high.push_back(high.find(name, 1800.0)->execMpe());
    }
    EXPECT_GT(mlstat::pearson(mpe_low, mpe_high), 0.95);
    // And the MPE drifts positive with frequency on average.
    EXPECT_GE(mlstat::mean(mpe_high), mlstat::mean(mpe_low));
}

TEST_F(PaperHeadlines, DvfsSpeedupDiversityCompressedInModel)
{
    // Fig. 8 / Section VI: the model gets the mean speedup right but
    // compresses the per-cluster range.
    ValidationDataset sweep =
        v1->runValidation(hwsim::CpuCluster::BigA15);
    WorkloadClustering clusters =
        clusterWorkloads(sweep, 1000.0, 16);
    SpeedupSummary speedup =
        summariseSpeedup(sweep, clusters, 600.0, 1800.0);

    EXPECT_NEAR(speedup.hwMean, 2.85, 0.4);   // paper: 2.7x
    EXPECT_NEAR(speedup.g5Mean, 2.95, 0.4);   // paper: 2.9x
    double hw_range = speedup.hwMax - speedup.hwMin;
    double g5_range = speedup.g5Max - speedup.g5Min;
    EXPECT_GT(hw_range, g5_range);
    EXPECT_EQ(speedup.hwMinCluster, speedup.g5MinCluster);
}
