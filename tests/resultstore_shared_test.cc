/**
 * @file
 * The shared persistent result-store tier: publish/absorb exchange
 * between attached stores, journal semantics, loadCsv compatibility,
 * the only-the-attacher-publishes fork rule, and — the point of the
 * flock discipline — multiple processes hammering one tier file
 * without ever producing a torn, interleaved or duplicated row.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "exec/resultstore.hh"
#include "exec/sharedtier.hh"

using namespace gemstone;
using exec::ResultStore;

namespace {

/** Unique scratch path, removed on destruction. */
struct ScratchFile
{
    std::string path;
    explicit ScratchFile(const std::string &name)
        : path((std::filesystem::temp_directory_path() /
                name).string())
    {
        std::filesystem::remove(path);
    }
    ~ScratchFile() { std::filesystem::remove(path); }
};

ResultStore::Fields
sampleFields(double seed)
{
    return {{"exec_seconds", seed * 0.125},
            {"power_watts", seed + 1.0 / 3.0},
            {"energy_joules", seed * 1e-3}};
}

bool
bitEqual(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

} // namespace

TEST(SharedTier, AttachAbsorbsPreexistingEntries)
{
    ScratchFile file("gs_tier_preexisting.csv");
    {
        ResultStore writer;
        ASSERT_TRUE(writer.attachSharedTier(file.path).ok());
        writer.insert("hw|dhrystone|1000", sampleFields(1.0));
        writer.insert("g5|whets|600", sampleFields(2.0));
    }

    ResultStore reader;
    ASSERT_TRUE(reader.attachSharedTier(file.path).ok());
    ResultStore::Fields out;
    ASSERT_TRUE(reader.lookup("hw|dhrystone|1000", out));
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].first, "exec_seconds");
    EXPECT_TRUE(bitEqual(out[0].second, 0.125));
    ASSERT_TRUE(reader.lookup("g5|whets|600", out));
    EXPECT_TRUE(bitEqual(out[1].second, 2.0 + 1.0 / 3.0));
    // Absorbed entries are found work, not computed work.
    EXPECT_EQ(reader.stats().insertions, 0u);
}

TEST(SharedTier, LateArrivalsAbsorbOnMiss)
{
    ScratchFile file("gs_tier_late.csv");
    ResultStore a;
    ResultStore b;
    ASSERT_TRUE(a.attachSharedTier(file.path).ok());
    ASSERT_TRUE(b.attachSharedTier(file.path).ok());

    // Published by a *after* b attached: b's in-memory tier is stale
    // until a miss sends it back to the file.
    a.insert("late|key", sampleFields(3.0));
    ResultStore::Fields out;
    ASSERT_TRUE(b.lookup("late|key", out));
    EXPECT_EQ(b.stats().sharedHits, 1u);
    EXPECT_EQ(b.stats().hits, 1u);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_TRUE(bitEqual(out[1].second, 3.0 + 1.0 / 3.0));

    // A key nobody published is still a plain miss.
    EXPECT_FALSE(b.lookup("never|published", out));
    EXPECT_EQ(b.stats().misses, 1u);
    EXPECT_EQ(b.stats().sharedHits, 1u);
}

TEST(SharedTier, PublishDeduplicatesAcrossStores)
{
    ScratchFile file("gs_tier_dedup.csv");
    ResultStore a;
    ResultStore b;
    ASSERT_TRUE(a.attachSharedTier(file.path).ok());
    ASSERT_TRUE(b.attachSharedTier(file.path).ok());

    a.insert("shared|key", sampleFields(4.0));
    b.insert("shared|key", sampleFields(4.0));  // same computation

    const exec::SharedTierFile::Stats tier_b = b.sharedTier()->stats();
    EXPECT_EQ(tier_b.deduped, 1u);

    // Exactly one group in the file: a fresh load sees one entry.
    ResultStore fresh;
    EXPECT_EQ(fresh.loadCsv(file.path), 1u);
}

TEST(SharedTier, JournalRecordsOwnInsertsOnly)
{
    ScratchFile file("gs_tier_journal.csv");
    ResultStore a;
    ResultStore b;
    ASSERT_TRUE(a.attachSharedTier(file.path).ok());
    ASSERT_TRUE(b.attachSharedTier(file.path).ok());
    a.insert("foreign|key", sampleFields(5.0));

    b.enableJournal();
    b.insert("own|one", sampleFields(6.0));
    // Absorbing a's entry through a miss is not b's work.
    ResultStore::Fields out;
    ASSERT_TRUE(b.lookup("foreign|key", out));
    b.insert("own|two", sampleFields(7.0));

    auto journal = b.takeJournal();
    ASSERT_EQ(journal.size(), 2u);
    EXPECT_EQ(journal[0].first, "own|one");
    EXPECT_EQ(journal[1].first, "own|two");
    ASSERT_EQ(journal[0].second.size(), 3u);
    EXPECT_TRUE(bitEqual(journal[0].second[0].second, 6.0 * 0.125));

    // takeJournal() stops recording until re-enabled.
    b.insert("own|three", sampleFields(8.0));
    EXPECT_TRUE(b.takeJournal().empty());
}

TEST(SharedTier, TierFileLoadsAsPlainStoreCsv)
{
    // The tier is deliberately loadCsv-compatible: a workerless run
    // pointed at the same --cache path must be able to read it.
    ScratchFile file("gs_tier_compat.csv");
    {
        ResultStore writer;
        ASSERT_TRUE(writer.attachSharedTier(file.path).ok());
        writer.insert("k|one", sampleFields(1.0));
        writer.insert("k|two", sampleFields(2.0));
        writer.insert("k|three", {{"lonely", -0.0}});
    }

    ResultStore plain;
    EXPECT_EQ(plain.loadCsv(file.path), 3u);
    ResultStore::Fields out;
    ASSERT_TRUE(plain.lookup("k|three", out));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].first, "lonely");
    EXPECT_TRUE(bitEqual(out[0].second, -0.0));
}

#if defined(__unix__) || defined(__APPLE__)

TEST(SharedTier, ForkedChildNeverPublishes)
{
    // The fork rule behind crash isolation: a child inheriting the
    // attachment reads the tier but its inserts stay local, so a
    // SIGKILLed worker cannot be holding the write lock mid-append.
    ScratchFile file("gs_tier_forkrule.csv");
    ResultStore store;
    ASSERT_TRUE(store.attachSharedTier(file.path).ok());
    store.insert("parent|key", sampleFields(1.0));

    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        store.insert("child|key", sampleFields(2.0));
        ::_exit(0);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

    ResultStore fresh;
    ASSERT_TRUE(fresh.attachSharedTier(file.path).ok());
    ResultStore::Fields out;
    EXPECT_TRUE(fresh.lookup("parent|key", out));
    EXPECT_FALSE(fresh.lookup("child|key", out));
}

TEST(SharedTier, ConcurrentProcessesNeverTearOrDuplicateRows)
{
    // Four processes, each with its own attachment (so each *is* a
    // publisher), hammer one tier file. The flock discipline must
    // keep every key group whole and unique.
    constexpr int kWriters = 4;
    constexpr int kKeysPerWriter = 25;
    constexpr int kSharedKeys = 5;
    ScratchFile file("gs_tier_hammer.csv");

    std::vector<pid_t> children;
    for (int w = 0; w < kWriters; ++w) {
        pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            // Child: a post-fork attachment makes this pid the
            // tier owner of its own store.
            ResultStore mine;
            if (!mine.attachSharedTier(file.path).ok())
                ::_exit(1);
            for (int k = 0; k < kKeysPerWriter; ++k) {
                mine.insert("w" + std::to_string(w) + "|k" +
                                std::to_string(k),
                            sampleFields(w * 100.0 + k));
            }
            // Contended keys: every writer computes the same value,
            // exactly one copy may land in the file.
            for (int k = 0; k < kSharedKeys; ++k) {
                mine.insert("common|k" + std::to_string(k),
                            sampleFields(k * 1.0));
            }
            ::_exit(0);
        }
        children.push_back(pid);
    }
    for (pid_t pid : children) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
            << "writer process failed";
    }

    // Structural audit of the raw file: every line is a whole
    // 3-cell row (no test key needs quoting), every key group is
    // contiguous with the full field set, and no key repeats.
    std::ifstream in(file.path);
    ASSERT_TRUE(in.good());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "key,field,value");
    std::map<std::string, int> rows_per_key;
    std::vector<std::string> key_run_order;
    while (std::getline(in, line)) {
        std::istringstream cells(line);
        std::string key, field, value;
        ASSERT_TRUE(std::getline(cells, key, ','));
        ASSERT_TRUE(std::getline(cells, field, ','));
        ASSERT_TRUE(std::getline(cells, value)) << "torn row: "
                                                << line;
        EXPECT_FALSE(value.empty());
        char *end = nullptr;
        std::strtod(value.c_str(), &end);
        EXPECT_EQ(*end, '\0') << "unparsable value in: " << line;
        if (key_run_order.empty() || key_run_order.back() != key)
            key_run_order.push_back(key);
        ++rows_per_key[key];
    }
    EXPECT_FALSE(in.bad());

    // No key group was split by an interleaved writer...
    std::map<std::string, int> runs;
    for (const std::string &key : key_run_order)
        ++runs[key];
    for (const auto &[key, count] : runs)
        EXPECT_EQ(count, 1) << "key group split: " << key;
    // ...every key landed exactly once with all its fields...
    ASSERT_EQ(rows_per_key.size(),
              std::size_t(kWriters * kKeysPerWriter + kSharedKeys));
    for (const auto &[key, rows] : rows_per_key)
        EXPECT_EQ(rows, 3) << "partial group: " << key;

    // ...and the whole file round-trips through the plain loader
    // with bit-exact values.
    ResultStore verify;
    ASSERT_EQ(verify.loadCsv(file.path),
              std::size_t(kWriters * kKeysPerWriter + kSharedKeys));
    ResultStore::Fields out;
    ASSERT_TRUE(verify.lookup("w2|k7", out));
    ASSERT_EQ(out.size(), 3u);
    EXPECT_TRUE(bitEqual(out[0].second, (2 * 100.0 + 7) * 0.125));
    ASSERT_TRUE(verify.lookup("common|k3", out));
    EXPECT_TRUE(bitEqual(out[2].second, 3.0 * 1e-3));
}

#endif // unix
