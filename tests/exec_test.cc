/**
 * @file
 * Tests of the execution engine: thread pool scheduling and
 * shutdown, task-graph ordering and failure semantics, and the
 * content-addressed result store.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/resultstore.hh"
#include "exec/taskgraph.hh"
#include "exec/threadpool.hh"

using namespace gemstone;
using namespace gemstone::exec;

namespace {

/** Unique scratch path, removed on destruction. */
struct ScratchFile
{
    std::string path;
    explicit ScratchFile(const std::string &name)
        : path((std::filesystem::temp_directory_path() /
                name).string())
    {
        std::filesystem::remove(path);
    }
    ~ScratchFile() { std::filesystem::remove(path); }
};

} // namespace

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

TEST(ThreadPool, RunsEveryPostedTask)
{
    constexpr int kTasks = 10000;
    std::atomic<int> done{0};
    {
        ThreadPool pool(4, /*queue_capacity=*/64);
        for (int i = 0; i < kTasks; ++i)
            pool.post([&done] { ++done; });
        // Destructor drains the queue before joining.
    }
    EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPool, DrainWaitsForAllQueuedWork)
{
    std::atomic<int> done{0};
    ThreadPool pool(3);
    for (int i = 0; i < 1000; ++i)
        pool.post([&done] { ++done; });
    pool.drain();
    EXPECT_EQ(done.load(), 1000);
}

TEST(ThreadPool, SubmitReturnsResultsThroughFutures)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    int sum = 0;
    for (auto &future : futures)
        sum += future.get();
    // Sum of squares 0..99.
    EXPECT_EQ(sum, 99 * 100 * 199 / 6);
}

TEST(ThreadPool, SubmitPropagatesExceptions)
{
    ThreadPool pool(2);
    auto future = pool.submit([]() -> int {
        throw std::runtime_error("task failed");
    });
    EXPECT_THROW(future.get(), std::runtime_error);
    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, RecursiveSubmissionFromWorkersDoesNotDeadlock)
{
    // Tasks spawned from workers bypass the bounded injection queue,
    // so a tiny capacity cannot deadlock recursive fan-out.
    std::atomic<int> done{0};
    {
        ThreadPool pool(2, /*queue_capacity=*/2);
        for (int i = 0; i < 8; ++i) {
            pool.post([&pool, &done] {
                for (int j = 0; j < 50; ++j)
                    pool.post([&done] { ++done; });
                ++done;
            });
        }
    }
    EXPECT_EQ(done.load(), 8 * 51);
}

TEST(ThreadPool, SingleThreadPoolStillCompletes)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 500; ++i)
            pool.post([&done] { ++done; });
    }
    EXPECT_EQ(done.load(), 500);
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}

// ---------------------------------------------------------------------
// TaskGraph
// ---------------------------------------------------------------------

TEST(TaskGraph, SerialExecutionPicksLowestReadyId)
{
    TaskGraph graph;
    std::vector<int> order;
    auto note = [&order](int id) { return [&order, id] {
        order.push_back(id);
    }; };
    // Diamond: 0 -> {1, 2} -> 3, plus an independent 4.
    auto a = graph.add("a", note(0));
    auto b = graph.add("b", note(1), {a});
    auto c = graph.add("c", note(2), {a});
    graph.add("d", note(3), {b, c});
    graph.add("e", note(4));

    graph.runSerial();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TaskGraph, ParallelRunRespectsDependencies)
{
    TaskGraph graph;
    std::atomic<bool> first_done{false};
    std::atomic<bool> order_ok{false};
    auto first = graph.add("first", [&] { first_done = true; });
    graph.add("second", [&] { order_ok = first_done.load(); },
              {first});

    ThreadPool pool(4);
    graph.run(pool);
    EXPECT_TRUE(order_ok.load());
}

TEST(TaskGraph, ManyIndependentNodesAllRun)
{
    TaskGraph graph;
    std::atomic<int> done{0};
    for (int i = 0; i < 2000; ++i)
        graph.add("n", [&done] { ++done; });
    ThreadPool pool(4);
    graph.run(pool);
    EXPECT_EQ(done.load(), 2000);
    for (TaskGraph::NodeId id = 0; id < 2000; ++id)
        EXPECT_TRUE(graph.succeeded(id));
}

TEST(TaskGraph, CycleIsDetectedBeforeAnythingRuns)
{
    TaskGraph graph;
    std::atomic<int> ran{0};
    auto a = graph.add("a", [&ran] { ++ran; });
    auto b = graph.add("b", [&ran] { ++ran; }, {a});
    graph.addEdge(b, a);  // back edge closes the cycle

    EXPECT_TRUE(graph.hasCycle());
    EXPECT_THROW(graph.runSerial(), std::logic_error);
    EXPECT_EQ(ran.load(), 0);

    ThreadPool pool(2);
    EXPECT_THROW(graph.run(pool), std::logic_error);
    EXPECT_EQ(ran.load(), 0);
}

TEST(TaskGraph, FailedNodeSkipsDependentsAndRethrows)
{
    TaskGraph graph;
    std::atomic<int> ran{0};
    auto bad = graph.add("bad", [] {
        throw std::runtime_error("node failed");
    });
    auto child = graph.add("child", [&ran] { ++ran; }, {bad});
    auto grandchild =
        graph.add("grandchild", [&ran] { ++ran; }, {child});
    auto bystander = graph.add("bystander", [&ran] { ++ran; });

    EXPECT_THROW(graph.runSerial(), std::runtime_error);
    EXPECT_EQ(ran.load(), 1);  // only the bystander
    EXPECT_FALSE(graph.succeeded(bad));
    EXPECT_TRUE(graph.skipped(child));
    EXPECT_TRUE(graph.skipped(grandchild));
    EXPECT_TRUE(graph.succeeded(bystander));
}

TEST(TaskGraph, LowestIdErrorWinsAtAnyThreadCount)
{
    // Two failing nodes: the reported exception must come from the
    // lower id, serial or parallel.
    for (unsigned threads : {0u, 2u, 4u}) {
        TaskGraph graph;
        graph.add("early", [] {
            throw std::runtime_error("early");
        });
        graph.add("late", [] {
            throw std::logic_error("late");
        });
        try {
            if (threads == 0) {
                graph.runSerial();
            } else {
                ThreadPool pool(threads);
                graph.run(pool);
            }
            FAIL() << "expected a rethrown node error";
        } catch (const std::runtime_error &error) {
            EXPECT_STREQ(error.what(), "early");
        } catch (const std::logic_error &) {
            FAIL() << "higher-id error reported";
        }
    }
}

// ---------------------------------------------------------------------
// ResultStore
// ---------------------------------------------------------------------

TEST(ResultStore, Fnv1aMatchesReferenceVectors)
{
    // Published FNV-1a 64-bit test vectors.
    EXPECT_EQ(ResultStore::fnv1a(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(ResultStore::fnv1a("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(ResultStore::fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(ResultStore, HitAfterInsertMissBefore)
{
    ResultStore store(8);
    ResultStore::Fields out;
    EXPECT_FALSE(store.lookup("k1", out));
    store.insert("k1", {{"x", 1.5}, {"y", -2.0}});
    ASSERT_TRUE(store.lookup("k1", out));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].first, "x");
    EXPECT_DOUBLE_EQ(out[0].second, 1.5);
    EXPECT_EQ(out[1].first, "y");

    ResultStore::Stats stats = store.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.insertions, 1u);
}

TEST(ResultStore, LruEvictionDropsColdestEntry)
{
    ResultStore store(2);
    store.insert("a", {{"v", 1.0}});
    store.insert("b", {{"v", 2.0}});
    // Touch "a" so "b" is the LRU victim.
    ResultStore::Fields out;
    ASSERT_TRUE(store.lookup("a", out));
    store.insert("c", {{"v", 3.0}});

    EXPECT_EQ(store.size(), 2u);
    EXPECT_TRUE(store.lookup("a", out));
    EXPECT_FALSE(store.lookup("b", out));
    EXPECT_TRUE(store.lookup("c", out));
    EXPECT_EQ(store.stats().evictions, 1u);
}

TEST(ResultStore, CsvPersistenceRoundTripsBitExactly)
{
    ScratchFile file("gs_resultstore_roundtrip_test.csv");

    // Values chosen to break any lossy formatting: non-terminating
    // binary fractions, denormal-adjacent magnitudes, negatives.
    ResultStore::Fields fields = {{"third", 1.0 / 3.0},
                                  {"tiny", 1.2345678912345e-301},
                                  {"huge", 9.87654321e300},
                                  {"neg", -0.1}};
    ResultStore store(16);
    store.insert("point|a", fields);
    store.insert("point|b", {{"v", 2.0000000000000004}});
    ASSERT_TRUE(store.saveCsv(file.path).ok());

    ResultStore restored(16);
    EXPECT_EQ(restored.loadCsv(file.path), 2u);
    ResultStore::Fields out;
    ASSERT_TRUE(restored.lookup("point|a", out));
    ASSERT_EQ(out.size(), fields.size());
    for (std::size_t i = 0; i < fields.size(); ++i) {
        EXPECT_EQ(out[i].first, fields[i].first);
        // Bit-exact, not approximately equal.
        EXPECT_EQ(out[i].second, fields[i].second);
    }
    ASSERT_TRUE(restored.lookup("point|b", out));
    EXPECT_EQ(out[0].second, 2.0000000000000004);
}

TEST(ResultStore, MissingFileLoadsNothing)
{
    ResultStore store(4);
    EXPECT_EQ(store.loadCsv("/nonexistent/gs_store.csv"), 0u);
    EXPECT_EQ(store.size(), 0u);
}

TEST(ResultStore, ConcurrentMixedUseIsConsistent)
{
    ResultStore store(4096);
    {
        ThreadPool pool(4);
        for (int t = 0; t < 8; ++t) {
            pool.post([&store, t] {
                ResultStore::Fields out;
                for (int i = 0; i < 500; ++i) {
                    std::string key =
                        "k" + std::to_string(i % 64);
                    if (!store.lookup(key, out)) {
                        store.insert(
                            key,
                            {{"v", static_cast<double>(i % 64)}});
                    }
                }
                (void)t;
            });
        }
    }
    // Every surviving entry must carry its own key's value.
    ResultStore::Fields out;
    for (int i = 0; i < 64; ++i) {
        std::string key = "k" + std::to_string(i);
        ASSERT_TRUE(store.lookup(key, out));
        EXPECT_DOUBLE_EQ(out[0].second, static_cast<double>(i));
    }
}
