/**
 * @file
 * Integration tests for the gemstoned campaign service (src/serve/).
 *
 * Each test boots a real Server on a private Unix-domain socket with
 * the event loop on a background thread, and talks to it over actual
 * sockets — the Client class for well-formed exchanges, a RawConn for
 * pipelining, torn input and protocol-error paths. The invariants
 * under test are the ones DESIGN.md §15 promises: daemon-served
 * campaigns are byte-identical to one-shot runs, repeated requests
 * are served from the shared result store, a client disconnect
 * cancels exactly its own work, admission control rejects overload,
 * scheduling is round-robin fair across connections, and SIGTERM
 * drains gracefully with no orphaned socket.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <errno.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/wireproto.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "util/cancellation.hh"
#include "util/logging.hh"
#include "util/signals.hh"

using namespace gemstone;

namespace {

/** A short-lived per-test socket path under /tmp (sun_path limit). */
std::string
freshSocketPath()
{
    static std::atomic<int> counter{0};
    return "/tmp/gs_serve_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".sock";
}

/** A campaign small enough to finish in tens of milliseconds. */
serve::CampaignSpec
smallSpec(std::uint64_t seed = 1)
{
    serve::CampaignSpec spec;
    spec.cluster = hwsim::CpuCluster::LittleA7;
    spec.freqsMhz = {1000.0};
    spec.maxPoints = 4;
    spec.repeats = 2;
    spec.quorum = 1;
    spec.seed = seed;
    return spec;
}

/** The full A7 campaign: long enough (~1s) to cancel mid-flight. */
serve::CampaignSpec
longSpec(std::uint64_t seed = 1)
{
    serve::CampaignSpec spec;
    spec.cluster = hwsim::CpuCluster::LittleA7;
    spec.repeats = 2;
    spec.quorum = 1;
    spec.seed = seed;
    return spec;
}

/** Expected dataset bytes: the same single entry point the daemon
 *  uses, run one-shot with a private store. */
std::string
referenceCsv(const serve::CampaignSpec &spec)
{
    auto store = std::make_shared<exec::ResultStore>();
    serve::CampaignOutcome outcome = serve::runCampaign(
        spec, store, core::CampaignConfig::PointSink(),
        CancellationToken());
    EXPECT_EQ(outcome.outcome, serve::RequestOutcome::Ok);
    return outcome.datasetCsv;
}

/**
 * Raw frame-level connection: what Client does, minus the manners.
 * Lets tests pipeline several submits on one connection, hang up
 * mid-stream, and send hostile bytes.
 */
struct RawConn
{
    int fd = -1;
    exec::FrameDecoder decoder;

    ~RawConn() { close(); }

    void
    connectUnix(const std::string &path)
    {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        struct sockaddr_un addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        ASSERT_EQ(::connect(
                      fd, reinterpret_cast<struct sockaddr *>(&addr),
                      sizeof(addr)),
                  0)
            << std::strerror(errno);
    }

    bool
    send(exec::FrameType type, const std::string &payload)
    {
        return exec::writeFrame(fd, type, payload);
    }

    /** Raw bytes, bypassing the framing layer entirely. */
    bool
    sendBytes(const std::string &bytes)
    {
        return ::write(fd, bytes.data(), bytes.size()) ==
               static_cast<ssize_t>(bytes.size());
    }

    /** Blocking read of one frame; false on EOF/error. */
    bool
    read(exec::Frame &out)
    {
        for (;;) {
            if (decoder.corrupt())
                return false;
            if (decoder.next(out))
                return true;
            char buffer[16384];
            ssize_t n = ::read(fd, buffer, sizeof(buffer));
            if (n > 0) {
                decoder.feed(buffer, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
    }

    /** Read frames until one of @p type arrives (skipping others). */
    bool
    readUntil(exec::FrameType type, exec::Frame &out)
    {
        while (read(out)) {
            if (out.type == type)
                return true;
        }
        return false;
    }

    void
    close()
    {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
};

/** In-process daemon: Server + event loop on a background thread. */
class DaemonFixture
{
  public:
    serve::Server::Config config;
    std::unique_ptr<serve::Server> server;
    std::string socketPath;
    Status runStatus = Status::okStatus();

    DaemonFixture()
    {
        socketPath = freshSocketPath();
        config.socketPath = socketPath;
        // Same policy as gemstoned: a fatal() deep in a request is a
        // request error, not a daemon death.
        setFatalThrows(true);
    }

    ~DaemonFixture()
    {
        stop();
        setFatalThrows(false);
    }

    void
    start()
    {
        server = std::make_unique<serve::Server>(config);
        Status started = server->start();
        ASSERT_TRUE(started.ok()) << started.toString();
        loop = std::thread([this] { runStatus = server->run(); });
    }

    /** Graceful drain; asserts the loop exits cleanly. */
    void
    stop()
    {
        if (!loop.joinable())
            return;
        server->requestDrain();
        loop.join();
        EXPECT_TRUE(runStatus.ok()) << runStatus.toString();
    }

  private:
    std::thread loop;
};

/** Spin until @p predicate or ~2s; true when it held. */
template <typename Predicate>
bool
eventually(Predicate predicate)
{
    for (int i = 0; i < 400; ++i) {
        if (predicate())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return predicate();
}

TEST(ServeTest, ConcurrentClientsByteIdenticalToOneShot)
{
    constexpr int kClients = 4;
    std::vector<serve::CampaignSpec> specs;
    std::vector<std::string> expected;
    for (int i = 0; i < kClients; ++i) {
        specs.push_back(smallSpec(100 + i));
        expected.push_back(referenceCsv(specs.back()));
        ASSERT_FALSE(expected.back().empty());
    }

    DaemonFixture daemon;
    daemon.config.maxActive = kClients;
    daemon.start();

    std::vector<serve::Client::SubmitResult> results(kClients);
    std::vector<Status> statuses(kClients, Status::okStatus());
    std::vector<int> points(kClients, 0);
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
        clients.emplace_back([&, i] {
            serve::Client client;
            Status connected = client.connectUnix(daemon.socketPath);
            if (!connected.ok()) {
                statuses[i] = connected;
                return;
            }
            serve::Client::Callbacks callbacks;
            callbacks.onPoint = [&, i](const serve::PointUpdate &) {
                ++points[i];
            };
            statuses[i] =
                client.submit(specs[i], results[i], callbacks);
        });
    }
    for (std::thread &t : clients)
        t.join();

    for (int i = 0; i < kClients; ++i) {
        ASSERT_TRUE(statuses[i].ok()) << statuses[i].toString();
        ASSERT_TRUE(results[i].accepted);
        EXPECT_EQ(results[i].summary.outcome,
                  serve::RequestOutcome::Ok);
        // The load-bearing claim: daemon-served bytes are identical
        // to a one-shot run of the same spec.
        EXPECT_EQ(results[i].summary.datasetCsv, expected[i]);
        // Every settled point was streamed before the summary.
        EXPECT_EQ(points[i],
                  static_cast<int>(results[i].summary.measuredPoints));
    }
    daemon.stop();
}

TEST(ServeTest, BatchedSubmitDemuxesPerSpecByteIdentically)
{
    // Three OPP-grid specs pipelined over ONE connection, plus one
    // invalid spec wedged into the middle: the in-order admission
    // mapping must bind the rejection to the right slot, and every
    // accepted spec's daemon-served bytes must equal a plain (non
    // OPP-grid) one-shot run of the same campaign — the batched
    // engine's bit-identity contract, end to end through the wire.
    std::vector<serve::CampaignSpec> specs;
    std::vector<std::string> expected;
    for (int i = 0; i < 3; ++i) {
        serve::CampaignSpec plain = smallSpec(300 + i);
        expected.push_back(referenceCsv(plain));
        ASSERT_FALSE(expected.back().empty());
        serve::CampaignSpec submitted = plain;
        submitted.oppGrid = true;
        specs.push_back(submitted);
    }
    serve::CampaignSpec bad = smallSpec(999);
    bad.quorum = 0;
    specs.insert(specs.begin() + 1, bad);
    expected.insert(expected.begin() + 1, "");

    DaemonFixture daemon;
    daemon.start();

    serve::Client client;
    ASSERT_TRUE(client.connectUnix(daemon.socketPath).ok());

    std::vector<int> points(specs.size(), 0);
    serve::Client::BatchCallbacks callbacks;
    callbacks.onPoint = [&](std::size_t idx,
                            const serve::PointUpdate &) {
        ++points[idx];
    };
    std::vector<serve::Client::SubmitResult> results;
    Status status = client.submitMany(specs, results, callbacks);
    ASSERT_TRUE(status.ok()) << status.toString();
    ASSERT_EQ(results.size(), specs.size());

    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (i == 1) {
            EXPECT_FALSE(results[i].accepted);
            EXPECT_EQ(results[i].rejection.reason,
                      serve::RejectReason::BadRequest);
            EXPECT_EQ(points[i], 0);
            continue;
        }
        ASSERT_TRUE(results[i].accepted) << "spec " << i;
        EXPECT_EQ(results[i].summary.outcome,
                  serve::RequestOutcome::Ok);
        EXPECT_EQ(results[i].summary.datasetCsv, expected[i]);
        EXPECT_EQ(points[i],
                  static_cast<int>(results[i].summary.measuredPoints));
    }

    // The campaigns predecoded programs in this process, so the
    // daemon's predecode-cache counters must have moved.
    serve::DaemonStats stats;
    ASSERT_TRUE(client.queryStats(stats).ok());
    EXPECT_GT(stats.predecodeHits + stats.predecodeMisses, 0u);
    EXPECT_GE(stats.predecodeInserts, 1u);
    daemon.stop();
}

TEST(ServeTest, RepeatedRequestServedFromSharedStore)
{
    DaemonFixture daemon;
    daemon.start();

    serve::Client client;
    ASSERT_TRUE(client.connectUnix(daemon.socketPath).ok());

    serve::Client::SubmitResult first;
    ASSERT_TRUE(client.submit(smallSpec(7), first).ok());
    ASSERT_TRUE(first.accepted);
    ASSERT_EQ(first.summary.outcome, serve::RequestOutcome::Ok);
    serve::DaemonStats after_first;
    ASSERT_TRUE(client.queryStats(after_first).ok());
    EXPECT_GT(after_first.storeInsertions, 0u);

    serve::Client::SubmitResult second;
    ASSERT_TRUE(client.submit(smallSpec(7), second).ok());
    ASSERT_TRUE(second.accepted);
    serve::DaemonStats after_second;
    ASSERT_TRUE(client.queryStats(after_second).ok());

    // Identical replay, no re-simulation: everything the repeat
    // needed came out of the shared store.
    EXPECT_EQ(second.summary.datasetCsv, first.summary.datasetCsv);
    EXPECT_EQ(after_second.storeInsertions,
              after_first.storeInsertions);
    EXPECT_GE(after_second.storeHits,
              after_first.storeHits + after_first.storeInsertions);
    daemon.stop();
}

TEST(ServeTest, DisconnectCancelsOnlyThatRequest)
{
    DaemonFixture daemon;
    daemon.config.maxActive = 2;
    daemon.start();

    // A submits the long campaign and hangs up right after Accepted.
    RawConn dropper;
    dropper.connectUnix(daemon.socketPath);
    ASSERT_TRUE(dropper.send(exec::FrameType::SubmitCampaign,
                             serve::encodeCampaignSpec(longSpec())));
    exec::Frame frame;
    ASSERT_TRUE(dropper.readUntil(exec::FrameType::Accepted, frame));
    dropper.close();

    // B's request on the other slot is unaffected.
    serve::Client client;
    ASSERT_TRUE(client.connectUnix(daemon.socketPath).ok());
    serve::Client::SubmitResult result;
    ASSERT_TRUE(client.submit(smallSpec(), result).ok());
    ASSERT_TRUE(result.accepted);
    EXPECT_EQ(result.summary.outcome, serve::RequestOutcome::Ok);

    // The dropped request is reaped as cancelled, not served/failed.
    EXPECT_TRUE(eventually([&] {
        serve::DaemonStats stats = daemon.server->statsSnapshot();
        return stats.requestsCancelled == 1 &&
               stats.requestsServed == 1;
    }));
    EXPECT_EQ(daemon.server->statsSnapshot().requestsFailed, 0u);
    daemon.stop();
}

TEST(ServeTest, CancellingQueuedRequestSettlesImmediately)
{
    DaemonFixture daemon;
    daemon.config.maxActive = 1;
    daemon.config.queueDepth = 4;
    daemon.start();

    RawConn busy;
    busy.connectUnix(daemon.socketPath);
    ASSERT_TRUE(busy.send(exec::FrameType::SubmitCampaign,
                          serve::encodeCampaignSpec(longSpec())));
    exec::Frame frame;
    ASSERT_TRUE(busy.readUntil(exec::FrameType::Accepted, frame));

    // Second request queues behind the long one; cancel it while it
    // waits — it must settle as Cancelled without ever running.
    RawConn waiter;
    waiter.connectUnix(daemon.socketPath);
    ASSERT_TRUE(waiter.send(exec::FrameType::SubmitCampaign,
                            serve::encodeCampaignSpec(smallSpec())));
    ASSERT_TRUE(waiter.readUntil(exec::FrameType::Accepted, frame));
    exec::WireReader reader(frame.payload);
    std::uint64_t queued_id = reader.u64();

    exec::WireWriter writer;
    writer.u64(queued_id);
    ASSERT_TRUE(
        waiter.send(exec::FrameType::CancelRequest, writer.take()));
    ASSERT_TRUE(waiter.readUntil(exec::FrameType::Summary, frame));
    serve::Summary summary;
    ASSERT_TRUE(serve::decodeSummary(frame.payload, summary));
    EXPECT_EQ(summary.requestId, queued_id);
    EXPECT_EQ(summary.outcome, serve::RequestOutcome::Cancelled);
    EXPECT_EQ(summary.measuredPoints, 0u);

    // Unblock the daemon: drop the long request too.
    busy.close();
    waiter.close();
    EXPECT_TRUE(eventually([&] {
        return daemon.server->statsSnapshot().requestsActive == 0;
    }));
    daemon.stop();
}

TEST(ServeTest, AdmissionControlRejectsWhenSaturated)
{
    DaemonFixture daemon;
    daemon.config.maxActive = 1;
    daemon.config.queueDepth = 0;
    daemon.start();

    RawConn busy;
    busy.connectUnix(daemon.socketPath);
    ASSERT_TRUE(busy.send(exec::FrameType::SubmitCampaign,
                          serve::encodeCampaignSpec(longSpec())));
    exec::Frame frame;
    ASSERT_TRUE(busy.readUntil(exec::FrameType::Accepted, frame));

    serve::Client client;
    ASSERT_TRUE(client.connectUnix(daemon.socketPath).ok());
    serve::Client::SubmitResult result;
    ASSERT_TRUE(client.submit(smallSpec(), result).ok());
    EXPECT_FALSE(result.accepted);
    EXPECT_EQ(result.rejection.reason,
              serve::RejectReason::QueueFull);
    EXPECT_EQ(daemon.server->statsSnapshot().requestsRejected, 1u);

    busy.close();
    daemon.stop();
}

TEST(ServeTest, RoundRobinIsFairAcrossConnections)
{
    DaemonFixture daemon;
    daemon.config.maxActive = 1;
    daemon.config.queueDepth = 8;
    daemon.start();

    // Connection A pipelines three campaigns...
    RawConn pipeliner;
    pipeliner.connectUnix(daemon.socketPath);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        ASSERT_TRUE(
            pipeliner.send(exec::FrameType::SubmitCampaign,
                           serve::encodeCampaignSpec(smallSpec(seed))));
    }
    exec::Frame frame;
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(
            pipeliner.readUntil(exec::FrameType::Accepted, frame));

    // ...then connection B submits one. Round-robin hands B the slot
    // after A's *first* campaign, so B's summary returns while A
    // still has work queued. FIFO-by-submit-order would serve B last.
    serve::Client client;
    ASSERT_TRUE(client.connectUnix(daemon.socketPath).ok());
    serve::Client::SubmitResult result;
    ASSERT_TRUE(client.submit(smallSpec(99), result).ok());
    ASSERT_TRUE(result.accepted);
    EXPECT_EQ(result.summary.outcome, serve::RequestOutcome::Ok);
    EXPECT_LE(daemon.server->statsSnapshot().requestsServed, 2u);

    // Let A's remaining campaigns finish and flush.
    int summaries = 0;
    while (summaries < 3 &&
           pipeliner.readUntil(exec::FrameType::Summary, frame))
        ++summaries;
    EXPECT_EQ(summaries, 3);
    pipeliner.close();
    daemon.stop();
}

TEST(ServeTest, PerRequestDeadlineReportsDeadlineOutcome)
{
    DaemonFixture daemon;
    daemon.start();

    serve::CampaignSpec spec = longSpec();
    spec.deadlineSeconds = 0.05;

    serve::Client client;
    ASSERT_TRUE(client.connectUnix(daemon.socketPath).ok());
    serve::Client::SubmitResult result;
    ASSERT_TRUE(client.submit(spec, result).ok());
    ASSERT_TRUE(result.accepted);
    EXPECT_EQ(result.summary.outcome, serve::RequestOutcome::Deadline);
    daemon.stop();
}

TEST(ServeTest, HeartbeatsStreamWhileRunning)
{
    DaemonFixture daemon;
    daemon.config.heartbeatSeconds = 0.02;
    daemon.start();

    std::atomic<int> heartbeats{0};
    serve::Client client;
    ASSERT_TRUE(client.connectUnix(daemon.socketPath).ok());
    serve::Client::Callbacks callbacks;
    callbacks.onProgress = [&](const serve::ProgressUpdate &update) {
        ++heartbeats;
        EXPECT_LE(update.completed, update.total);
    };
    serve::Client::SubmitResult result;
    ASSERT_TRUE(client.submit(longSpec(), result, callbacks).ok());
    ASSERT_TRUE(result.accepted);
    EXPECT_EQ(result.summary.outcome, serve::RequestOutcome::Ok);
    EXPECT_GE(heartbeats.load(), 1);
    daemon.stop();
}

TEST(ServeTest, InvalidSpecRejectedAsBadRequest)
{
    DaemonFixture daemon;
    daemon.start();

    serve::CampaignSpec spec = smallSpec();
    spec.quorum = 0;

    serve::Client client;
    ASSERT_TRUE(client.connectUnix(daemon.socketPath).ok());
    serve::Client::SubmitResult result;
    ASSERT_TRUE(client.submit(spec, result).ok());
    EXPECT_FALSE(result.accepted);
    EXPECT_EQ(result.rejection.reason,
              serve::RejectReason::BadRequest);
    daemon.stop();
}

TEST(ServeTest, RequestFatalBecomesErrorSummaryNotDaemonDeath)
{
    DaemonFixture daemon;
    daemon.start();

    // 12345 MHz passes spec validation (finite, positive) but has no
    // operating point — the platform layer calls fatal(), which the
    // daemon must absorb as a per-request error.
    serve::CampaignSpec spec = smallSpec();
    spec.freqsMhz = {12345.0};

    serve::Client client;
    ASSERT_TRUE(client.connectUnix(daemon.socketPath).ok());
    serve::Client::SubmitResult result;
    ASSERT_TRUE(client.submit(spec, result).ok());
    ASSERT_TRUE(result.accepted);
    EXPECT_EQ(result.summary.outcome, serve::RequestOutcome::Error);
    EXPECT_FALSE(result.summary.error.empty());

    // The daemon survived and still serves.
    serve::Client::SubmitResult ok_result;
    ASSERT_TRUE(client.submit(smallSpec(), ok_result).ok());
    ASSERT_TRUE(ok_result.accepted);
    EXPECT_EQ(ok_result.summary.outcome, serve::RequestOutcome::Ok);
    EXPECT_EQ(daemon.server->statsSnapshot().requestsFailed, 1u);
    daemon.stop();
}

TEST(ServeTest, GarbageInputGetsProtocolErrorThenClose)
{
    DaemonFixture daemon;
    daemon.start();

    // An oversized length prefix latches the decoder corrupt.
    RawConn hostile;
    hostile.connectUnix(daemon.socketPath);
    ASSERT_TRUE(hostile.sendBytes(std::string("\xff\xff\xff\xff", 4)));
    exec::Frame frame;
    ASSERT_TRUE(hostile.read(frame));
    EXPECT_EQ(frame.type, exec::FrameType::ProtocolError);
    EXPECT_FALSE(hostile.read(frame));  // daemon hangs up
    hostile.close();

    // An unknown frame type is equally fatal for the connection.
    RawConn unknown;
    unknown.connectUnix(daemon.socketPath);
    ASSERT_TRUE(
        unknown.send(static_cast<exec::FrameType>(200), "junk"));
    ASSERT_TRUE(unknown.read(frame));
    EXPECT_EQ(frame.type, exec::FrameType::ProtocolError);
    EXPECT_FALSE(unknown.read(frame));
    unknown.close();

    // Neither hostile connection disturbed the service.
    serve::Client client;
    ASSERT_TRUE(client.connectUnix(daemon.socketPath).ok());
    serve::Client::SubmitResult result;
    ASSERT_TRUE(client.submit(smallSpec(), result).ok());
    ASSERT_TRUE(result.accepted);
    EXPECT_EQ(result.summary.outcome, serve::RequestOutcome::Ok);
    daemon.stop();
}

TEST(ServeTest, SigtermDrainsGracefully)
{
    DaemonFixture daemon;
    daemon.config.maxActive = 1;
    // The real signal path: SIGTERM -> cancellation -> drain. raise()
    // exactly once in this binary — the handler's second-signal path
    // force-exits the process.
    installSignalCancellation(daemon.config.drain);
    daemon.start();

    RawConn conn;
    conn.connectUnix(daemon.socketPath);
    ASSERT_TRUE(conn.send(exec::FrameType::SubmitCampaign,
                          serve::encodeCampaignSpec(longSpec())));
    exec::Frame frame;
    ASSERT_TRUE(conn.readUntil(exec::FrameType::Accepted, frame));

    ASSERT_EQ(std::raise(SIGTERM), 0);

    // Draining: the admitted request still finishes and is flushed...
    ASSERT_TRUE(conn.readUntil(exec::FrameType::Summary, frame));
    serve::Summary summary;
    ASSERT_TRUE(serve::decodeSummary(frame.payload, summary));
    EXPECT_EQ(summary.outcome, serve::RequestOutcome::Ok);
    conn.close();

    // ...the loop exits Ok (checked in stop()) and the socket inode
    // is gone: no orphaned sockets after a drain.
    daemon.stop();
    struct stat st;
    EXPECT_NE(::lstat(daemon.socketPath.c_str(), &st), 0);

    // New connections are refused post-drain.
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, daemon.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    EXPECT_NE(::connect(fd,
                        reinterpret_cast<struct sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    ::close(fd);
}

TEST(ServeTest, ProtocolRoundTripsSurviveEncoding)
{
    serve::CampaignSpec spec = longSpec(42);
    spec.deadlineSeconds = 1.5;
    spec.boardVariation = 0.01;
    spec.tag = "round-trip";
    serve::CampaignSpec decoded_spec;
    ASSERT_TRUE(serve::decodeCampaignSpec(
        serve::encodeCampaignSpec(spec), decoded_spec));
    EXPECT_EQ(decoded_spec.cluster, spec.cluster);
    EXPECT_EQ(decoded_spec.seed, spec.seed);
    EXPECT_EQ(decoded_spec.freqsMhz, spec.freqsMhz);
    EXPECT_EQ(decoded_spec.tag, spec.tag);
    EXPECT_EQ(decoded_spec.deadlineSeconds, spec.deadlineSeconds);

    serve::Summary summary;
    summary.requestId = 9;
    summary.outcome = serve::RequestOutcome::Deadline;
    summary.measuredPoints = 3;
    summary.datasetCsv = "a,b\n1,2\n";
    summary.warnings = {"w1", "w2"};
    serve::Summary decoded_summary;
    ASSERT_TRUE(serve::decodeSummary(serve::encodeSummary(summary),
                                     decoded_summary));
    EXPECT_EQ(decoded_summary.requestId, 9u);
    EXPECT_EQ(decoded_summary.outcome,
              serve::RequestOutcome::Deadline);
    EXPECT_EQ(decoded_summary.datasetCsv, summary.datasetCsv);
    EXPECT_EQ(decoded_summary.warnings, summary.warnings);

    // Truncation never decodes: every strict prefix is rejected.
    std::string bytes = serve::encodeSummary(summary);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        serve::Summary partial;
        EXPECT_FALSE(serve::decodeSummary(bytes.substr(0, cut),
                                          partial))
            << "prefix of " << cut << " bytes decoded";
    }
}

TEST(ServeTest, DurabilityPayloadsFailClosedOnTruncation)
{
    // The v2 payloads (resume tokens, Attach, Resumed) obey the same
    // contract as the v1 ones: round-trip exactly, reject every
    // strict prefix, and bound hostile string lengths.
    serve::Accepted accepted;
    accepted.requestId = 77;
    accepted.token = "gst1-" + std::string(32, 'a');
    serve::Accepted accepted_rt;
    ASSERT_TRUE(serve::decodeAccepted(serve::encodeAccepted(accepted),
                                      accepted_rt));
    EXPECT_EQ(accepted_rt.requestId, accepted.requestId);
    EXPECT_EQ(accepted_rt.token, accepted.token);
    std::string bytes = serve::encodeAccepted(accepted);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        serve::Accepted partial;
        EXPECT_FALSE(
            serve::decodeAccepted(bytes.substr(0, cut), partial))
            << "Accepted prefix of " << cut << " bytes decoded";
    }

    serve::AttachRequest attach;
    attach.token = accepted.token;
    serve::AttachRequest attach_rt;
    ASSERT_TRUE(serve::decodeAttachRequest(
        serve::encodeAttachRequest(attach), attach_rt));
    EXPECT_EQ(attach_rt.token, attach.token);
    bytes = serve::encodeAttachRequest(attach);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        serve::AttachRequest partial;
        EXPECT_FALSE(
            serve::decodeAttachRequest(bytes.substr(0, cut), partial))
            << "Attach prefix of " << cut << " bytes decoded";
    }
    // An empty or oversized token never decodes, however framed.
    serve::AttachRequest hostile;
    EXPECT_FALSE(serve::decodeAttachRequest(
        serve::encodeAttachRequest({""}), hostile));
    EXPECT_FALSE(serve::decodeAttachRequest(
        serve::encodeAttachRequest(
            {std::string(serve::kMaxTokenLength + 1, 'x')}),
        hostile));

    serve::ResumeInfo info;
    info.requestId = 88;
    info.token = accepted.token;
    info.finished = true;
    info.replayPoints = 1234;
    serve::ResumeInfo info_rt;
    ASSERT_TRUE(serve::decodeResumeInfo(serve::encodeResumeInfo(info),
                                        info_rt));
    EXPECT_EQ(info_rt.requestId, info.requestId);
    EXPECT_EQ(info_rt.token, info.token);
    EXPECT_EQ(info_rt.finished, info.finished);
    EXPECT_EQ(info_rt.replayPoints, info.replayPoints);
    bytes = serve::encodeResumeInfo(info);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        serve::ResumeInfo partial;
        EXPECT_FALSE(
            serve::decodeResumeInfo(bytes.substr(0, cut), partial))
            << "Resumed prefix of " << cut << " bytes decoded";
    }
}

TEST(ServeTest, TruncatedAttachGetsProtocolErrorThenClose)
{
    DaemonFixture daemon;
    daemon.start();

    // A torn Attach payload (valid frame, half a token inside) is a
    // protocol error and a hangup — never a crash, never a bind.
    std::string payload = serve::encodeAttachRequest(
        {"gst1-" + std::string(32, 'b')});
    RawConn torn;
    torn.connectUnix(daemon.socketPath);
    ASSERT_TRUE(torn.send(exec::FrameType::Attach,
                          payload.substr(0, payload.size() / 2)));
    exec::Frame frame;
    ASSERT_TRUE(torn.read(frame));
    EXPECT_EQ(frame.type, exec::FrameType::ProtocolError);
    EXPECT_FALSE(torn.read(frame));  // daemon hangs up
    torn.close();

    // The daemon is unharmed and still serves.
    serve::Client client;
    ASSERT_TRUE(client.connectUnix(daemon.socketPath).ok());
    serve::Client::SubmitResult result;
    ASSERT_TRUE(client.submit(smallSpec(), result).ok());
    ASSERT_TRUE(result.accepted);
    EXPECT_EQ(result.summary.outcome, serve::RequestOutcome::Ok);
    daemon.stop();
}

} // namespace
