/**
 * @file
 * Unit tests for the branch predictors, including the v1/v2 bug
 * semantics the paper's Section VII hinges on.
 */

#include <gtest/gtest.h>

#include "uarch/branch.hh"

using namespace gemstone::uarch;

namespace {

/**
 * Drive one conditional branch at a fixed pc through a predictor with
 * a repeating taken-pattern; returns the direction accuracy over the
 * last `measure` iterations.
 */
double
driveConditional(BranchPredictor &bp, std::uint32_t pc,
                 const std::vector<bool> &pattern, int warmup,
                 int measure)
{
    BranchInfo info;
    info.isCond = true;
    int correct = 0;
    int total = warmup + measure;
    for (int i = 0; i < total; ++i) {
        bool taken = pattern[i % pattern.size()];
        BranchPrediction p = bp.predict(pc, info);
        bp.update(pc, info, taken, taken ? pc + 10 : pc + 1, p);
        bp.recordOutcome(info, taken, taken ? pc + 10 : pc + 1, p);
        if (i >= warmup && p.taken == taken)
            ++correct;
    }
    return static_cast<double>(correct) / measure;
}

} // namespace

// ---------------------------------------------------------------------
// TournamentBp
// ---------------------------------------------------------------------

TEST(Tournament, LearnsAlwaysTaken)
{
    TournamentBp bp;
    double acc = driveConditional(bp, 100, {true}, 32, 500);
    EXPECT_GT(acc, 0.99);
}

TEST(Tournament, LearnsAlwaysNotTaken)
{
    TournamentBp bp;
    double acc = driveConditional(bp, 100, {false}, 32, 500);
    EXPECT_GT(acc, 0.99);
}

TEST(Tournament, LearnsShortPeriodicPattern)
{
    TournamentBp bp;
    // Period-4 pattern T T T N: local history nails it.
    double acc = driveConditional(
        bp, 100, {true, true, true, false}, 200, 1000);
    EXPECT_GT(acc, 0.95);
}

TEST(Tournament, BtbProvidesTargets)
{
    TournamentBp bp;
    BranchInfo info;  // unconditional
    BranchPrediction cold = bp.predict(200, info);
    EXPECT_FALSE(cold.fromBtb);
    bp.update(200, info, true, 4242, cold);
    BranchPrediction warm = bp.predict(200, info);
    EXPECT_TRUE(warm.fromBtb);
    EXPECT_EQ(warm.target, 4242u);
    EXPECT_TRUE(warm.taken);
}

TEST(Tournament, RasPredictsNestedReturns)
{
    TournamentBp bp;
    BranchInfo call;
    call.isCall = true;
    BranchInfo ret;
    ret.isReturn = true;
    ret.isIndirect = true;

    // call at 10 -> call at 20 -> return to 21 -> return to 11.
    bp.predict(10, call);
    bp.predict(20, call);
    BranchPrediction first = bp.predict(30, ret);
    EXPECT_TRUE(first.usedRas);
    EXPECT_EQ(first.target, 21u);
    BranchPrediction second = bp.predict(40, ret);
    EXPECT_TRUE(second.usedRas);
    EXPECT_EQ(second.target, 11u);
}

TEST(Tournament, StatsAccuracyComputation)
{
    TournamentBp bp;
    driveConditional(bp, 100, {true}, 16, 100);
    EXPECT_GT(bp.stats().accuracy(), 0.85);
    EXPECT_EQ(bp.stats().condLookups, 116u);
}

TEST(Tournament, ResetClearsState)
{
    TournamentBp bp;
    driveConditional(bp, 100, {true}, 0, 50);
    bp.reset();
    EXPECT_EQ(bp.stats().lookups, 0u);
    EXPECT_EQ(bp.stats().condIncorrect, 0u);
}

// ---------------------------------------------------------------------
// GshareBp: version semantics
// ---------------------------------------------------------------------

TEST(Gshare, V2LearnsPeriodicPattern)
{
    GshareBpConfig cfg;
    cfg.version = 2;
    GshareBp bp(cfg);
    double acc = driveConditional(
        bp, 100, {true, true, true, false}, 400, 2000);
    EXPECT_GT(acc, 0.9);
}

TEST(Gshare, V1CollapsesOnPeriodicPattern)
{
    // The headline bug: on a strictly periodic, rarely-taken pattern
    // the unrepaired speculative history causes mispredict storms.
    GshareBpConfig v1_cfg;
    v1_cfg.version = 1;
    GshareBp v1(v1_cfg);
    GshareBpConfig v2_cfg;
    v2_cfg.version = 2;
    GshareBp v2(v2_cfg);

    std::vector<bool> pattern = {false, false, false, true};
    double acc_v1 = driveConditional(v1, 100, pattern, 400, 4000);
    double acc_v2 = driveConditional(v2, 100, pattern, 400, 4000);
    EXPECT_GT(acc_v2, 0.9);
    EXPECT_LT(acc_v1, acc_v2 - 0.1);  // the storm costs >10 points
}

TEST(Gshare, V1AndV2AgreeBeforeAnyMisprediction)
{
    // Until the first misprediction the histories are in sync, so
    // both versions behave identically on an always-taken branch
    // once the BTB is warm.
    GshareBpConfig v1_cfg;
    v1_cfg.version = 1;
    GshareBpConfig v2_cfg;
    v2_cfg.version = 2;
    GshareBp v1(v1_cfg);
    GshareBp v2(v2_cfg);
    double acc_v1 = driveConditional(v1, 100, {true}, 64, 1000);
    double acc_v2 = driveConditional(v2, 100, {true}, 64, 1000);
    EXPECT_NEAR(acc_v1, acc_v2, 0.02);
}

TEST(Gshare, DrainResyncBoundsStorms)
{
    // With a short drain period, even version 1 recovers.
    GshareBpConfig stormy;
    stormy.version = 1;
    stormy.drainResyncPeriod = 0;
    GshareBpConfig drained;
    drained.version = 1;
    drained.drainResyncPeriod = 64;

    GshareBp bp_stormy(stormy);
    GshareBp bp_drained(drained);
    std::vector<bool> pattern = {false, false, false, true};
    double acc_stormy =
        driveConditional(bp_stormy, 100, pattern, 400, 4000);
    double acc_drained =
        driveConditional(bp_drained, 100, pattern, 400, 4000);
    EXPECT_GT(acc_drained, acc_stormy);
}

TEST(Gshare, InvalidVersionFatals)
{
    GshareBpConfig cfg;
    cfg.version = 3;
    EXPECT_EXIT(GshareBp bp(cfg), ::testing::ExitedWithCode(1),
                "version");
}

TEST(Gshare, RasOverflowWrapsOnSmallStack)
{
    GshareBpConfig cfg;
    cfg.rasEntries = 2;  // tiny RAS
    GshareBp bp(cfg);
    BranchInfo call;
    call.isCall = true;
    BranchInfo ret;
    ret.isReturn = true;
    ret.isIndirect = true;

    // Three nested calls overflow the 2-entry stack.
    bp.predict(10, call);
    bp.predict(20, call);
    bp.predict(30, call);
    BranchPrediction r1 = bp.predict(40, ret);
    EXPECT_EQ(r1.target, 31u);  // innermost still correct
    BranchPrediction r2 = bp.predict(50, ret);
    EXPECT_EQ(r2.target, 21u);
    // The third return's entry was overwritten by the wrap: the
    // predictor returns a stale value (11 was lost).
    BranchPrediction r3 = bp.predict(60, ret);
    EXPECT_NE(r3.target, 11u);
}

TEST(Gshare, BtbColdUnconditionalPredictsNotTaken)
{
    GshareBp bp;
    BranchInfo info;  // unconditional
    BranchPrediction cold = bp.predict(77, info);
    EXPECT_FALSE(cold.taken);  // no target available yet
    bp.update(77, info, true, 1234, cold);
    BranchPrediction warm = bp.predict(77, info);
    EXPECT_TRUE(warm.taken);
    EXPECT_EQ(warm.target, 1234u);
}

TEST(Gshare, NoisyInitFractionControlsStormSeverity)
{
    // After one misprediction ignites a v1 storm on an always-taken
    // branch, the storm's severity depends on how many of the
    // untrained counters the diverged lookups land on predict
    // not-taken. With an all-taken init the storm is harmless; with
    // heavy NT seeding it bites.
    std::vector<bool> pattern(128, true);
    pattern[0] = false;  // one igniting misprediction per cycle

    GshareBpConfig clean_cfg;
    clean_cfg.version = 1;
    clean_cfg.noisyInitFraction = 0.0;
    GshareBp clean(clean_cfg);
    double acc_clean =
        driveConditional(clean, 100, pattern, 128, 4000);

    GshareBpConfig noisy_cfg;
    noisy_cfg.version = 1;
    noisy_cfg.noisyInitFraction = 0.45;
    GshareBp noisy(noisy_cfg);
    double acc_noisy =
        driveConditional(noisy, 100, pattern, 128, 4000);

    EXPECT_GT(acc_clean, 0.95);
    EXPECT_LT(acc_noisy, acc_clean);
}

// ---------------------------------------------------------------------
// recordOutcome bookkeeping
// ---------------------------------------------------------------------

TEST(BranchStats, OutcomeCountsAreConsistent)
{
    TournamentBp bp;
    BranchInfo cond;
    cond.isCond = true;
    std::uint64_t branches = 400;
    for (std::uint64_t i = 0; i < branches; ++i) {
        bool taken = (i % 3) != 0;
        BranchPrediction p = bp.predict(1000, cond);
        bp.update(1000, cond, taken, taken ? 1100 : 1001, p);
        bp.recordOutcome(cond, taken, taken ? 1100 : 1001, p);
    }
    const BranchStats &s = bp.stats();
    EXPECT_EQ(s.lookups, branches);
    EXPECT_EQ(s.condLookups, branches);
    EXPECT_LE(s.condIncorrect, s.lookups);
    EXPECT_LE(s.mispredicts, s.lookups);
    EXPECT_GE(s.mispredicts, s.condIncorrect);
    EXPECT_LE(s.predictedTakenIncorrect, s.predictedTaken);
    EXPECT_GE(s.accuracy(), 0.0);
    EXPECT_LE(s.accuracy(), 1.0);
}

TEST(BranchStats, IndirectMispredictTracking)
{
    TournamentBp bp;
    BranchInfo ind;
    ind.isIndirect = true;
    // Alternate between two targets: the last-target table misses
    // half the time.
    for (int i = 0; i < 100; ++i) {
        std::uint32_t target = (i % 2) ? 500 : 600;
        BranchPrediction p = bp.predict(2000, ind);
        bp.update(2000, ind, true, target, p);
        bp.recordOutcome(ind, true, target, p);
    }
    const BranchStats &s = bp.stats();
    EXPECT_EQ(s.indirectLookups, 100u);
    EXPECT_GT(s.indirectMispredicts, 90u);
}
