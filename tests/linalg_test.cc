/**
 * @file
 * Unit tests for the dense linear algebra kernel.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.hh"
#include "util/random.hh"

using namespace gemstone;
using linalg::Matrix;

TEST(Matrix, ConstructZeroed)
{
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_EQ(m.at(r, c), 0.0);
}

TEST(Matrix, FromRowsAndTranspose)
{
    Matrix m = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_EQ(t.at(2, 1), 6.0);
    EXPECT_EQ(t.at(0, 0), 1.0);
}

TEST(Matrix, RaggedRowsPanic)
{
    EXPECT_DEATH(Matrix::fromRows({{1, 2}, {3}}), "ragged");
}

TEST(Matrix, OutOfRangePanics)
{
    Matrix m(2, 2);
    EXPECT_DEATH(m.at(2, 0), "out of range");
}

TEST(Matrix, IdentityMultiply)
{
    Matrix m = Matrix::fromRows({{1, 2}, {3, 4}});
    Matrix i = Matrix::identity(2);
    Matrix p = m.multiply(i);
    EXPECT_EQ(p.at(0, 0), 1.0);
    EXPECT_EQ(p.at(1, 1), 4.0);
}

TEST(Matrix, ProductKnown)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    Matrix b = Matrix::fromRows({{5, 6}, {7, 8}});
    Matrix p = a.multiply(b);
    EXPECT_EQ(p.at(0, 0), 19.0);
    EXPECT_EQ(p.at(0, 1), 22.0);
    EXPECT_EQ(p.at(1, 0), 43.0);
    EXPECT_EQ(p.at(1, 1), 50.0);
}

TEST(Matrix, ShapeMismatchPanics)
{
    Matrix a(2, 3);
    Matrix b(2, 3);
    EXPECT_DEATH(a.multiply(b), "shape mismatch");
}

TEST(Matrix, MatrixVector)
{
    Matrix a = Matrix::fromRows({{1, 0, 2}, {0, 3, 0}});
    std::vector<double> v = {1, 2, 3};
    std::vector<double> out = a.multiply(v);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 7.0);
    EXPECT_EQ(out[1], 6.0);
}

TEST(Matrix, GramEqualsTransposeTimesSelf)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
    Matrix g = a.gram();
    Matrix ref = a.transposed().multiply(a);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            EXPECT_DOUBLE_EQ(g.at(r, c), ref.at(r, c));
}

TEST(Matrix, TransposeMultiply)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
    std::vector<double> v = {1, 1, 1};
    std::vector<double> out = a.transposeMultiply(v);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 9.0);
    EXPECT_EQ(out[1], 12.0);
}

TEST(Matrix, ColumnRoundTrip)
{
    Matrix m(3, 2);
    m.setColumn(1, {7, 8, 9});
    std::vector<double> col = m.column(1);
    EXPECT_EQ(col[0], 7.0);
    EXPECT_EQ(col[2], 9.0);
    EXPECT_EQ(m.column(0)[0], 0.0);
}

TEST(Cholesky, FactorKnownSpd)
{
    // A = [[4, 2], [2, 3]] has L = [[2, 0], [1, sqrt(2)]].
    Matrix a = Matrix::fromRows({{4, 2}, {2, 3}});
    Matrix l;
    ASSERT_TRUE(linalg::choleskyFactor(a, l));
    EXPECT_DOUBLE_EQ(l.at(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(l.at(1, 0), 1.0);
    EXPECT_NEAR(l.at(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(Cholesky, RejectsIndefinite)
{
    Matrix a = Matrix::fromRows({{1, 2}, {2, 1}});  // eigenvalue -1
    Matrix l;
    EXPECT_FALSE(linalg::choleskyFactor(a, l));
}

TEST(Cholesky, SolveKnownSystem)
{
    Matrix a = Matrix::fromRows({{4, 2}, {2, 3}});
    Matrix l;
    ASSERT_TRUE(linalg::choleskyFactor(a, l));
    // A x = [8, 7] -> x = [1.25, 1.5].
    std::vector<double> x = linalg::choleskySolve(l, {8, 7});
    EXPECT_NEAR(x[0], 1.25, 1e-12);
    EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(Cholesky, InvertSpd)
{
    Matrix a = Matrix::fromRows({{2, 1}, {1, 2}});
    Matrix inv;
    ASSERT_TRUE(linalg::invertSpd(a, inv));
    Matrix prod = a.multiply(inv);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            EXPECT_NEAR(prod.at(r, c), r == c ? 1.0 : 0.0, 1e-12);
}

TEST(LeastSquares, ExactSquareSystem)
{
    Matrix x = Matrix::fromRows({{1, 0}, {0, 1}});
    std::vector<double> beta;
    ASSERT_TRUE(linalg::leastSquaresQr(x, {3, -2}, beta));
    EXPECT_NEAR(beta[0], 3.0, 1e-12);
    EXPECT_NEAR(beta[1], -2.0, 1e-12);
}

TEST(LeastSquares, OverdeterminedRecoversTruth)
{
    // y = 2 + 3 x over a grid, with an intercept column.
    constexpr int n = 50;
    Matrix x(n, 2);
    std::vector<double> y(n);
    for (int i = 0; i < n; ++i) {
        double t = i * 0.1;
        x.at(i, 0) = 1.0;
        x.at(i, 1) = t;
        y[i] = 2.0 + 3.0 * t;
    }
    std::vector<double> beta;
    ASSERT_TRUE(linalg::leastSquaresQr(x, y, beta));
    EXPECT_NEAR(beta[0], 2.0, 1e-9);
    EXPECT_NEAR(beta[1], 3.0, 1e-9);
}

TEST(LeastSquares, NoisyRecovery)
{
    Rng rng(5);
    constexpr int n = 400;
    Matrix x(n, 3);
    std::vector<double> y(n);
    for (int i = 0; i < n; ++i) {
        double a = rng.gaussian();
        double b = rng.gaussian();
        x.at(i, 0) = 1.0;
        x.at(i, 1) = a;
        x.at(i, 2) = b;
        y[i] = 1.0 - 2.0 * a + 0.5 * b + 0.01 * rng.gaussian();
    }
    std::vector<double> beta;
    ASSERT_TRUE(linalg::leastSquaresQr(x, y, beta));
    EXPECT_NEAR(beta[0], 1.0, 0.01);
    EXPECT_NEAR(beta[1], -2.0, 0.01);
    EXPECT_NEAR(beta[2], 0.5, 0.01);
}

TEST(LeastSquares, DetectsRankDeficiency)
{
    // Second column is a copy of the first.
    Matrix x = Matrix::fromRows({{1, 1}, {2, 2}, {3, 3}});
    std::vector<double> beta;
    EXPECT_FALSE(linalg::leastSquaresQr(x, {1, 2, 3}, beta));
}

TEST(LeastSquares, UnderdeterminedRejected)
{
    Matrix x(1, 2);
    x.at(0, 0) = 1.0;
    x.at(0, 1) = 2.0;
    std::vector<double> beta;
    EXPECT_FALSE(linalg::leastSquaresQr(x, {1}, beta));
}

TEST(Dot, KnownValue)
{
    EXPECT_DOUBLE_EQ(linalg::dot({1, 2, 3}, {4, 5, 6}), 32.0);
}

TEST(Dot, MismatchPanics)
{
    EXPECT_DEATH(linalg::dot({1.0}, {1.0, 2.0}), "shape mismatch");
}
