#!/usr/bin/env bash
# Crash-restart chaos test of the campaign service daemon, with the
# shipped binaries: submit a durable campaign, SIGKILL gemstoned
# mid-campaign, restart it on the same socket and journal directory,
# and require (a) the daemon to re-admit the request from its journal
# and resume from the campaign checkpoint, (b) the self-healing client
# to reconnect and re-attach by resume token on its own, and (c) the
# final dataset CSV to be byte-identical to an uninterrupted one-shot
# run. A second phase kills the *client* instead, lets the detached
# campaign finish, and late-attaches with `ctl attach`.
#
# Usage: tests/serve_chaos.sh [BUILD_DIR]   (default: build)

set -euo pipefail

BUILD_DIR="${1:-build}"
TOOL="$BUILD_DIR/examples/gemstone_tool"
DAEMON="$BUILD_DIR/examples/gemstoned"
WORK="$(mktemp -d)"
SOCK="$WORK/gemstoned.sock"
JOURNAL="$WORK/journal"

# The full A7 campaign (~1s of simulation): long enough that SIGKILL
# reliably lands mid-campaign with points already settled.
SPEC=(--cluster a7 --repeats 2 --quorum 1 --seed 5)

fail() { echo "serve_chaos: FAIL: $*" >&2; exit 1; }

cleanup() {
    [[ -n "${DAEMON_PID:-}" ]] && kill -9 "$DAEMON_PID" 2>/dev/null
    [[ -n "${CLIENT_PID:-}" ]] && kill -9 "$CLIENT_PID" 2>/dev/null
    rm -rf "$WORK"
    return 0
}
trap cleanup EXIT

[[ -x "$TOOL" && -x "$DAEMON" ]] || fail "build $TOOL and $DAEMON first"

wait_for_sock() {
    for _ in $(seq 100); do [[ -S "$SOCK" ]] && return 0; sleep 0.1; done
    fail "daemon never bound $SOCK"
}

# Reference bytes: the one-shot CLI, never interrupted.
"$TOOL" campaign "${SPEC[@]}" --quiet --out "$WORK/ref.csv"

# ---- Phase 1: SIGKILL the daemon mid-campaign --------------------

"$DAEMON" --socket "$SOCK" --journal "$JOURNAL" --max-active 2 \
    >"$WORK/daemon1.log" 2>&1 &
DAEMON_PID=$!
wait_for_sock

# Durable submit in the background; the client owns reconnection.
"$TOOL" ctl --socket "$SOCK" submit "${SPEC[@]}" --durable \
    --token-file "$WORK/token" --retries 40 --timeout 30 \
    --out "$WORK/served.csv" 2>"$WORK/client.log" &
CLIENT_PID=$!

# Let the campaign settle a few points first, so the kill is genuinely
# mid-flight and the restart genuinely resumes (not restarts).
for _ in $(seq 300); do
    points=$(grep -c '^point ' "$WORK/client.log" 2>/dev/null || true)
    [[ "${points:-0}" -ge 3 ]] && break
    kill -0 "$CLIENT_PID" 2>/dev/null || fail "client died early:
$(cat "$WORK/client.log")"
    sleep 0.1
done
[[ "${points:-0}" -ge 3 ]] || fail "no points settled before the kill"
[[ -s "$WORK/token" ]] || fail "no resume token written"

kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
echo "serve_chaos: daemon SIGKILLed after $points settled points"

# Restart on the same socket and journal dir. The client is still
# alive, backing off and redialling.
"$DAEMON" --socket "$SOCK" --journal "$JOURNAL" --max-active 2 \
    >"$WORK/daemon2.log" 2>&1 &
DAEMON_PID=$!
wait_for_sock
grep -q "recovered in-flight request" "$WORK/daemon2.log" ||
    { sleep 1; grep -q "recovered in-flight request" "$WORK/daemon2.log"; } ||
    fail "restarted daemon did not recover the journaled request:
$(cat "$WORK/daemon2.log")"

client_rc=0
wait "$CLIENT_PID" || client_rc=$?
CLIENT_PID=""
[[ "$client_rc" -eq 0 ]] ||
    { cat "$WORK/client.log" >&2; fail "client exit code $client_rc"; }
grep -q "self-healed" "$WORK/client.log" ||
    fail "client never reconnected — the kill missed the stream"
cmp "$WORK/ref.csv" "$WORK/served.csv" ||
    fail "dataset after crash+restart differs from one-shot run"
echo "serve_chaos: client self-healed across the restart," \
     "dataset byte-identical to one-shot"

stats=$("$TOOL" ctl --socket "$SOCK" --timeout 10 stats)
grep -q "1 recovered at boot" <<<"$stats" ||
    fail "stats do not report the boot recovery: $stats"

# ---- Phase 2: SIGKILL the client, late-attach when done ----------

"$TOOL" ctl --socket "$SOCK" submit "${SPEC[@]}" --seed 6 --durable \
    --token-file "$WORK/token2" --retries 0 --timeout 30 \
    --out "$WORK/served2.csv" 2>"$WORK/client2.log" &
CLIENT_PID=$!
for _ in $(seq 300); do
    points=$(grep -c '^point ' "$WORK/client2.log" 2>/dev/null || true)
    [[ "${points:-0}" -ge 3 ]] && break
    sleep 0.1
done
[[ "${points:-0}" -ge 3 ]] || fail "phase-2 campaign streamed no points"
{ kill -9 "$CLIENT_PID" && wait "$CLIENT_PID"; } 2>/dev/null || true
CLIENT_PID=""

# The daemon detaches (not cancels) and finishes the campaign alone.
for _ in $(seq 300); do
    grep -q "detached req.*finished (ok)" "$WORK/daemon2.log" && break
    sleep 0.1
done
grep -q "detached req.*finished (ok)" "$WORK/daemon2.log" ||
    fail "detached campaign never finished:
$(tail -20 "$WORK/daemon2.log")"

"$TOOL" ctl --socket "$SOCK" attach --token-file "$WORK/token2" \
    --timeout 30 --out "$WORK/attached.csv" 2>>"$WORK/client2.log" ||
    fail "late attach failed:
$(tail -5 "$WORK/client2.log")"
"$TOOL" campaign "${SPEC[@]}" --seed 6 --quiet --out "$WORK/ref2.csv"
cmp "$WORK/ref2.csv" "$WORK/attached.csv" ||
    fail "late-attach dataset differs from one-shot run"
echo "serve_chaos: killed client's campaign finished detached," \
     "late attach replayed byte-identical bytes"

# A delivered durable request retires its journal artifacts.
token2=$(head -1 "$WORK/token2")
for _ in $(seq 100); do
    [[ ! -e "$JOURNAL/req_$token2.journal" ]] && break
    sleep 0.1
done
[[ ! -e "$JOURNAL/req_$token2.journal" ]] ||
    fail "delivered request left its journal behind"

# Graceful goodbye: SIGTERM -> exit 0.
kill -TERM "$DAEMON_PID"
drain_rc=0
wait "$DAEMON_PID" || drain_rc=$?
[[ "$drain_rc" -eq 0 ]] ||
    { cat "$WORK/daemon2.log" >&2; fail "drain exit code $drain_rc"; }
DAEMON_PID=""
echo "serve_chaos: PASS"
