/**
 * @file
 * Tests of the workload suite: registry invariants and the
 * functional correctness of every kernel (parameterised over the
 * full 65-workload set).
 */

#include <gtest/gtest.h>

#include <set>

#include "hwsim/platform.hh"
#include "uarch/system.hh"
#include "workload/microbench.hh"
#include "workload/workload.hh"

using namespace gemstone;
using workload::Suite;
using workload::Workload;

TEST(SuiteRegistry, HasExactly65Workloads)
{
    EXPECT_EQ(Suite::all().size(), 65u);
}

TEST(SuiteRegistry, ValidationSetHas45)
{
    EXPECT_EQ(Suite::validationSet().size(), 45u);
}

TEST(SuiteRegistry, NamesAreUnique)
{
    std::set<std::string> names;
    for (const Workload &w : Suite::all())
        EXPECT_TRUE(names.insert(w.name).second)
            << "duplicate name " << w.name;
}

TEST(SuiteRegistry, SuitesPartitionTheSet)
{
    std::size_t total = 0;
    for (const std::string &suite : Suite::suiteNames())
        total += Suite::bySuite(suite).size();
    EXPECT_EQ(total, 65u);
}

TEST(SuiteRegistry, PaperSuiteComposition)
{
    EXPECT_EQ(Suite::bySuite("mibench").size(), 17u);
    EXPECT_EQ(Suite::bySuite("parmibench").size(), 10u);
    EXPECT_EQ(Suite::bySuite("parsec").size(), 16u);
    EXPECT_EQ(Suite::bySuite("lmbench").size(), 10u);
    EXPECT_EQ(Suite::bySuite("roy").size(), 10u);
    EXPECT_EQ(Suite::bySuite("dhrystone").size(), 1u);
    EXPECT_EQ(Suite::bySuite("whetstone").size(), 1u);
}

TEST(SuiteRegistry, ByNameFindsAndFatalsOnUnknown)
{
    EXPECT_EQ(Suite::byName("mi-crc32").name, "mi-crc32");
    EXPECT_EXIT(Suite::byName("no-such-workload"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(SuiteRegistry, ParsecHasSingleAndQuadVariants)
{
    for (const Workload *w : Suite::bySuite("parsec")) {
        bool one = w->name.ends_with("-1");
        bool four = w->name.ends_with("-4");
        EXPECT_TRUE(one || four) << w->name;
        EXPECT_EQ(w->numThreads, one ? 1u : 4u) << w->name;
    }
}

TEST(SuiteRegistry, PathologicalWorkloadPresent)
{
    const Workload &w = Suite::byName("par-basicmath-rad2deg");
    EXPECT_EQ(w.suite, "parmibench");
}

// ---------------------------------------------------------------------
// Every workload must run to completion on both platform models with
// identical architectural behaviour.
// ---------------------------------------------------------------------

class EveryWorkload : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(EveryWorkload, RunsToCompletionOnBothModels)
{
    const Workload &w = Suite::all()[GetParam()];

    uarch::ClusterConfig hw_cfg = hwsim::trueBigConfig();
    hw_cfg.memBytes = std::max<std::uint64_t>(w.memBytes, 64 * 1024);
    uarch::ClusterModel hw(hw_cfg);
    w.prepareMemory(hw.memory());
    uarch::RunResult hw_run = hw.run(w.program, w.numThreads, 1.0);

    // A meaningful dynamic length, bounded above for test time.
    EXPECT_GT(hw_run.instructions, 10000u) << w.name;
    EXPECT_LT(hw_run.instructions, 60'000'000u) << w.name;
    EXPECT_GT(hw_run.cycles, 0.0);

    // The committed instruction count is an architectural property:
    // any config of the same ISA must reproduce it exactly (the
    // paper's Fig. 6 shows event 0x08 matching across platforms).
    uarch::ClusterConfig other_cfg = hwsim::trueLittleConfig();
    other_cfg.memBytes = hw_cfg.memBytes;
    uarch::ClusterModel other(other_cfg);
    w.prepareMemory(other.memory());
    uarch::RunResult other_run =
        other.run(w.program, w.numThreads, 1.0);
    EXPECT_EQ(other_run.instructions, hw_run.instructions) << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    All, EveryWorkload, ::testing::Range<std::size_t>(0, 65),
    [](const ::testing::TestParamInfo<std::size_t> &info) {
        std::string name = Suite::all()[info.param].name;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

// ---------------------------------------------------------------------
// Micro-benchmarks
// ---------------------------------------------------------------------

TEST(Microbench, LatMemRdSizesSweepFourKToSixtyFourM)
{
    auto sizes = workload::latMemRdSizes();
    ASSERT_FALSE(sizes.empty());
    EXPECT_EQ(sizes.front(), 4u * 1024u);
    EXPECT_EQ(sizes.back(), 64u * 1024u * 1024u);
    for (std::size_t i = 1; i < sizes.size(); ++i)
        EXPECT_EQ(sizes[i], sizes[i - 1] * 2);
}

TEST(Microbench, LatencyGrowsWithWorkingSet)
{
    hwsim::OdroidXu3Platform board;
    workload::Workload small =
        workload::makeLatMemRd(8 * 1024, 256, 20000);
    workload::Workload large =
        workload::makeLatMemRd(16 * 1024 * 1024, 256, 20000);
    auto m_small = board.measure(
        small, hwsim::CpuCluster::BigA15, 1000.0, 1);
    auto m_large = board.measure(
        large, hwsim::CpuCluster::BigA15, 1000.0, 1);
    // The DRAM-resident chase must be several times slower per hop.
    EXPECT_GT(m_large.execSeconds, 5.0 * m_small.execSeconds);
}
