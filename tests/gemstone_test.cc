/**
 * @file
 * Tests of the GemStone core: datasets, runner, and the Section IV
 * analyses, on a reduced (single-frequency) validation run.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "gemstone/analysis.hh"
#include "gemstone/powereval.hh"
#include "gemstone/runner.hh"
#include "powmon/builder.hh"

using namespace gemstone;
using namespace gemstone::core;

namespace {

/** Shared expensive fixtures: one validation run at 1 GHz. */
class GemstoneFlow : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        RunnerConfig config;
        config.g5Version = 1;
        runner = new ExperimentRunner(config);
        dataset = new ValidationDataset(runner->runValidation(
            hwsim::CpuCluster::BigA15, {1000.0}));
        clustering = new WorkloadClustering(
            clusterWorkloads(*dataset, 1000.0, 16));
    }
    static void TearDownTestSuite()
    {
        delete clustering;
        delete dataset;
        delete runner;
    }

    static ExperimentRunner *runner;
    static ValidationDataset *dataset;
    static WorkloadClustering *clustering;
};

ExperimentRunner *GemstoneFlow::runner = nullptr;
ValidationDataset *GemstoneFlow::dataset = nullptr;
WorkloadClustering *GemstoneFlow::clustering = nullptr;

} // namespace

// ---------------------------------------------------------------------
// Runner and dataset
// ---------------------------------------------------------------------

TEST_F(GemstoneFlow, DatasetCoversValidationSet)
{
    EXPECT_EQ(dataset->records.size(), 45u);
    EXPECT_EQ(dataset->workloadNames().size(), 45u);
    EXPECT_EQ(dataset->atFrequency(1000.0).size(), 45u);
    EXPECT_TRUE(dataset->atFrequency(600.0).empty());
}

TEST_F(GemstoneFlow, FindLocatesRecords)
{
    const ValidationRecord *r = dataset->find("mi-crc32", 1000.0);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->work->name, "mi-crc32");
    EXPECT_EQ(dataset->find("mi-crc32", 600.0), nullptr);
    EXPECT_EQ(dataset->find("nothing", 1000.0), nullptr);
}

TEST_F(GemstoneFlow, MpeSignConvention)
{
    // A record whose simulated time exceeds the hardware time must
    // have a negative MPE.
    for (const ValidationRecord &r : dataset->records) {
        if (r.g5.simSeconds > r.hw.execSeconds)
            EXPECT_LT(r.execMpe(), 0.0);
        else
            EXPECT_GE(r.execMpe(), 0.0);
        EXPECT_GE(r.execApe(), 0.0);
        EXPECT_DOUBLE_EQ(r.execApe(), std::fabs(r.execMpe()));
    }
}

TEST_F(GemstoneFlow, AggregatesAreConsistent)
{
    EXPECT_GE(dataset->execMape(),
              std::fabs(dataset->execMpe()));
    EXPECT_DOUBLE_EQ(dataset->execMape(),
                     dataset->execMapeAt(1000.0));
    // Suite filters partition the mean.
    double parsec = dataset->execMapeSuite("parsec");
    EXPECT_GT(parsec, 0.0);
}

TEST(RunnerStatics, FrequencyTablesMatchPaper)
{
    const auto &little = ExperimentRunner::frequenciesFor(
        hwsim::CpuCluster::LittleA7);
    const auto &big = ExperimentRunner::frequenciesFor(
        hwsim::CpuCluster::BigA15);
    EXPECT_EQ(little, (std::vector<double>{200, 600, 1000, 1400}));
    EXPECT_EQ(big, (std::vector<double>{600, 1000, 1400, 1800}));
}

TEST(RunnerStatics, ModelMapping)
{
    EXPECT_EQ(ExperimentRunner::modelFor(hwsim::CpuCluster::BigA15),
              g5::G5Model::Ex5Big);
    EXPECT_EQ(
        ExperimentRunner::modelFor(hwsim::CpuCluster::LittleA7),
        g5::G5Model::Ex5Little);
}

// ---------------------------------------------------------------------
// Workload clustering (Fig. 3 machinery)
// ---------------------------------------------------------------------

TEST_F(GemstoneFlow, ClusteringCoversAllWorkloads)
{
    EXPECT_EQ(clustering->workloads.size(), 45u);
    std::size_t total = 0;
    for (const auto &[label, size] : clustering->clusterSizes)
        total += size;
    EXPECT_EQ(total, 45u);
}

TEST_F(GemstoneFlow, ClusterLabelsAreOneToK)
{
    std::set<std::size_t> labels;
    for (const ClusteredWorkload &w : clustering->workloads)
        labels.insert(w.cluster);
    EXPECT_EQ(labels.size(), 16u);
    EXPECT_EQ(*labels.begin(), 1u);
    EXPECT_EQ(*labels.rbegin(), 16u);
}

TEST_F(GemstoneFlow, DendrogramOrderGroupsClusters)
{
    // In leaf order, each cluster appears as one contiguous block.
    std::set<std::size_t> closed;
    std::size_t current = 0;
    for (const ClusteredWorkload &w : clustering->workloads) {
        if (w.cluster != current) {
            EXPECT_EQ(closed.count(w.cluster), 0u)
                << "cluster " << w.cluster << " reopened";
            closed.insert(current);
            current = w.cluster;
        }
    }
}

TEST_F(GemstoneFlow, ClusterOfFindsWorkloads)
{
    std::size_t c = clustering->clusterOf("mi-crc32");
    EXPECT_GE(c, 1u);
    EXPECT_LE(c, 16u);
    EXPECT_EQ(clustering->clusterOf("unknown"), 0u);
}

TEST_F(GemstoneFlow, ClusterMeansMatchMembers)
{
    for (const auto &[label, mean_mpe] : clustering->clusterMeanMpe) {
        double sum = 0.0;
        std::size_t n = 0;
        for (const ClusteredWorkload &w : clustering->workloads) {
            if (w.cluster == label) {
                sum += w.mpe;
                ++n;
            }
        }
        ASSERT_GT(n, 0u);
        EXPECT_NEAR(mean_mpe, sum / n, 1e-12);
    }
}

// ---------------------------------------------------------------------
// Correlation analyses (Fig. 5 / Section IV-C machinery)
// ---------------------------------------------------------------------

TEST_F(GemstoneFlow, PmcCorrelationsBounded)
{
    CorrelationAnalysis analysis =
        correlatePmcEvents(*dataset, 1000.0, 24);
    EXPECT_GT(analysis.events.size(), 20u);
    for (const EventCorrelation &e : analysis.events) {
        EXPECT_GE(e.correlation, -1.0);
        EXPECT_LE(e.correlation, 1.0);
        EXPECT_GE(e.cluster, 1u);
    }
    // Sorted ascending.
    for (std::size_t i = 1; i < analysis.events.size(); ++i)
        EXPECT_LE(analysis.events[i - 1].correlation,
                  analysis.events[i].correlation);
}

TEST_F(GemstoneFlow, BranchEventsMostNegative)
{
    // The paper's key Fig. 5 signal: branch-rate events correlate
    // most negatively with the error on the v1 model.
    CorrelationAnalysis analysis =
        correlatePmcEvents(*dataset, 1000.0, 24);
    auto corr_of = [&](const std::string &key) {
        for (const EventCorrelation &e : analysis.events)
            if (e.name == key)
                return e.correlation;
        return 0.0;
    };
    EXPECT_LT(corr_of("0x12"), -0.2);
    EXPECT_LT(corr_of("0x76"), -0.2);
    // Exclusive/barrier events sit on the positive side.
    EXPECT_GT(corr_of("0x6C"), 0.0);
    EXPECT_GT(corr_of("0x7E"), 0.0);
}

TEST_F(GemstoneFlow, G5EventCorrelationFindsManyStatistics)
{
    CorrelationAnalysis analysis =
        correlateG5Events(*dataset, 1000.0, 0.3, 10);
    // The paper found 94 statistics above the threshold.
    EXPECT_GE(analysis.events.size(), 25u);
    for (const EventCorrelation &e : analysis.events)
        EXPECT_GE(std::fabs(e.correlation), 0.3);
    // Branch-related statistics must be among the most negative.
    bool found_branch = false;
    for (std::size_t i = 0;
         i < std::min<std::size_t>(12, analysis.events.size()); ++i) {
        const std::string &name = analysis.events[i].name;
        if (name.find("ranch") != std::string::npos ||
            name.find("squash") != std::string::npos ||
            name.find("Incorrect") != std::string::npos) {
            found_branch = true;
        }
    }
    EXPECT_TRUE(found_branch);
}

// ---------------------------------------------------------------------
// Regression analysis (Section IV-D machinery)
// ---------------------------------------------------------------------

TEST_F(GemstoneFlow, PmcRegressionExplainsError)
{
    ErrorRegression regression =
        regressErrorOnPmcs(*dataset, 1000.0, 7);
    EXPECT_GE(regression.selectedNames.size(), 2u);
    EXPECT_LE(regression.selectedNames.size(), 7u);
    EXPECT_GT(regression.r2, 0.5);  // paper: 0.97
    EXPECT_LE(regression.r2, 1.0);
    EXPECT_LE(regression.adjustedR2, regression.r2 + 1e-12);
}

TEST_F(GemstoneFlow, G5RegressionExplainsErrorBetter)
{
    ErrorRegression on_pmcs =
        regressErrorOnPmcs(*dataset, 1000.0, 7);
    ErrorRegression on_g5 =
        regressErrorOnG5Stats(*dataset, 1000.0, 8);
    // The simulator's own statistics see its error mechanisms
    // directly, so the fit is at least as good (paper: 0.99 vs 0.97).
    EXPECT_GE(on_g5.r2, on_pmcs.r2 - 0.05);
}

// ---------------------------------------------------------------------
// Event comparison (Fig. 6 machinery)
// ---------------------------------------------------------------------

TEST_F(GemstoneFlow, EventComparisonDirections)
{
    std::size_t pathological =
        clustering->clusterOf("par-basicmath-rad2deg");
    auto rows =
        compareEvents(*dataset, 1000.0, *clustering, pathological);
    ASSERT_FALSE(rows.empty());

    auto row_of = [&](const std::string &key)
        -> const EventComparisonRow * {
        for (const EventComparisonRow &row : rows)
            if (row.key == key)
                return &row;
        return nullptr;
    };

    // The paper's Fig. 6 directions.
    EXPECT_NEAR(row_of("0x08")->meanRatio, 1.0, 0.05);   // ~1.0x
    EXPECT_LT(row_of("0x02")->meanRatio, 0.6);           // 0.06x
    EXPECT_GT(row_of("0x10")->meanRatio, 5.0);           // 21x
    EXPECT_GT(row_of("0x14")->meanRatio, 1.5);           // >2x
    EXPECT_GT(row_of("0x43")->meanRatio, 2.0);           // 9.9x
    EXPECT_GT(row_of("0x15")->meanRatio, 2.0);           // 19x
}

TEST_F(GemstoneFlow, BpAccuracySummaryMatchesShape)
{
    BpAccuracySummary bp = summariseBpAccuracy(*dataset, 1000.0);
    EXPECT_GT(bp.hwMean, 0.93);           // paper: 96%
    EXPECT_LT(bp.g5Mean, bp.hwMean - 0.03);
    EXPECT_LT(bp.g5Worst, 0.75);
    EXPECT_FALSE(bp.g5WorstWorkload.empty());
    EXPECT_LT(bp.g5WorstMpe, -0.5);       // a storm victim
}

// ---------------------------------------------------------------------
// Power/energy evaluation (Fig. 7 machinery)
// ---------------------------------------------------------------------

TEST_F(GemstoneFlow, EnergyErrorExceedsPowerError)
{
    // Build a quick model on the big cluster and evaluate: the
    // paper's core Section VI message is that a small power error
    // coexists with a large energy error on the v1 model.
    auto observations = runner->runPowerCharacterisation(
        hwsim::CpuCluster::BigA15);
    powmon::PowerModelBuilder builder(observations, "a15");
    powmon::SelectionConfig sel;
    sel.maxEvents = 6;
    sel.requireG5Equivalent = true;
    for (int id : powmon::EventSpecTable::knownBadForG5())
        sel.excluded.insert(id);
    sel.composites.push_back(
        powmon::EventSpecTable::difference(0x1B, 0x73));
    powmon::PowerModel model =
        builder.build(builder.selectEvents(sel).events);

    PowerEnergyEvaluation eval =
        evaluatePowerEnergy(*dataset, 1000.0, model, *clustering);

    EXPECT_LT(eval.powerMape, 0.25);
    EXPECT_GT(eval.energyMape, eval.powerMape * 2.0);
    EXPECT_LT(eval.energyMpe, 0.0);  // time overestimated overall
    EXPECT_EQ(eval.perWorkload.size(), 45u);
    EXPECT_EQ(eval.componentLabels.size(), model.events.size() + 1);

    // Per-record energies follow P x t on both sides.
    const PowerEnergyRecord &rec = eval.perWorkload.front();
    EXPECT_NEAR(rec.hwEnergy / rec.hwPower,
                dataset->find(rec.workload, 1000.0)->hw.execSeconds,
                1e-9);
}
