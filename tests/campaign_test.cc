/**
 * @file
 * Tests of the resilient campaign engine: quorum collation, retry
 * accounting, graceful degradation, and checkpoint/resume.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gemstone/campaign.hh"
#include "gemstone/runner.hh"
#include "hwsim/faults.hh"
#include "util/logging.hh"

using namespace gemstone;
using namespace gemstone::core;

namespace {

constexpr double kFreq = 1000.0;

/** A fresh runner; optionally on a different simulated board. */
ExperimentRunner makeRunner(std::uint64_t seed = RunnerConfig{}.seed)
{
    RunnerConfig config;
    config.seed = seed;
    return ExperimentRunner(config);
}

/** Unique scratch path, removed on destruction. */
struct ScratchFile
{
    std::string path;
    explicit ScratchFile(const std::string &name)
        : path((std::filesystem::temp_directory_path() /
                name).string())
    {
        std::filesystem::remove(path);
    }
    ~ScratchFile() { std::filesystem::remove(path); }
};

/** Clean single-frequency A15 dataset, shared across tests. */
class CampaignFlow : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        cleanRunner = new ExperimentRunner(RunnerConfig{});
        cleanDataset = new ValidationDataset(
            cleanRunner->runValidation(hwsim::CpuCluster::BigA15,
                                       {kFreq}));
    }
    static void TearDownTestSuite()
    {
        delete cleanDataset;
        delete cleanRunner;
    }

    static ExperimentRunner *cleanRunner;
    static ValidationDataset *cleanDataset;
};

ExperimentRunner *CampaignFlow::cleanRunner = nullptr;
ValidationDataset *CampaignFlow::cleanDataset = nullptr;

} // namespace

// ---------------------------------------------------------------------
// Fault-free behaviour
// ---------------------------------------------------------------------

TEST_F(CampaignFlow, FaultFreeCampaignMatchesNaiveRunner)
{
    ExperimentRunner runner = makeRunner();
    CampaignEngine engine(runner, CampaignConfig{});
    CampaignResult result =
        engine.runValidation(hwsim::CpuCluster::BigA15, {kFreq});

    ASSERT_EQ(result.dataset.records.size(),
              cleanDataset->records.size());
    EXPECT_EQ(result.totalFailures, 0u);
    EXPECT_EQ(result.totalRejected, 0u);
    EXPECT_EQ(result.excludedPoints, 0u);
    EXPECT_TRUE(result.warnings.empty());
    EXPECT_TRUE(result.complete);
    for (const CampaignPoint &point : result.points)
        EXPECT_EQ(point.status, PointStatus::Clean);

    // The platform's noise is a pure function of the point, so the
    // quorum repeats are identical and the median collation must
    // reproduce the naive runner bit for bit.
    for (const ValidationRecord &r : result.dataset.records) {
        const ValidationRecord *clean =
            cleanDataset->find(r.work->name, kFreq);
        ASSERT_NE(clean, nullptr);
        EXPECT_DOUBLE_EQ(r.hw.execSeconds, clean->hw.execSeconds);
        EXPECT_DOUBLE_EQ(r.hw.powerWatts, clean->hw.powerWatts);
        EXPECT_DOUBLE_EQ(r.g5.simSeconds, clean->g5.simSeconds);
    }
    EXPECT_NEAR(result.dataset.execMpe(), cleanDataset->execMpe(),
                1e-12);
}

// ---------------------------------------------------------------------
// Faulted campaigns
// ---------------------------------------------------------------------

TEST_F(CampaignFlow, LabMixCampaignReproducesCleanMpe)
{
    ExperimentRunner runner = makeRunner();
    runner.platform().injectFaults(hwsim::FaultConfig::labMix());
    CampaignEngine engine(runner, CampaignConfig{});
    CampaignResult result =
        engine.runValidation(hwsim::CpuCluster::BigA15, {kFreq});

    // The fault mix must actually have bitten...
    EXPECT_GT(result.totalFailures + result.totalRejected, 0u);
    // ...while the resilient policy keeps nearly every point and
    // reproduces the clean error metric within one percentage point.
    EXPECT_GE(result.dataset.records.size(),
              cleanDataset->records.size() - 3);
    EXPECT_NEAR(result.dataset.execMpe() * 100.0,
                cleanDataset->execMpe() * 100.0, 1.0);

    for (const CampaignPoint &point : result.points) {
        if (point.converged() &&
            (point.failures > 0 || point.rejected > 0)) {
            EXPECT_EQ(point.status, PointStatus::Recovered);
        }
    }
}

TEST_F(CampaignFlow, RetryAccountingIsDeterministic)
{
    hwsim::FaultConfig always_fail;
    always_fail.enabled = true;
    always_fail.runFailureProb = 1.0;

    CampaignConfig policy;
    policy.quorum = 1;
    policy.maxAttempts = 3;

    auto campaign = [&]() {
        ExperimentRunner runner = makeRunner();
        runner.platform().injectFaults(always_fail);
        CampaignEngine engine(runner, policy);
        return engine.runValidation(hwsim::CpuCluster::BigA15,
                                    {kFreq});
    };
    CampaignResult first = campaign();
    CampaignResult second = campaign();

    // Every point burns the full attempt budget, is excluded, and
    // leaves a structured warning.
    ASSERT_EQ(first.points.size(), 45u);
    EXPECT_TRUE(first.dataset.records.empty());
    EXPECT_EQ(first.excludedPoints, 45u);
    EXPECT_EQ(first.totalAttempts, 45u * policy.maxAttempts);
    EXPECT_EQ(first.totalFailures, 45u * policy.maxAttempts);
    EXPECT_EQ(first.warnings.size(), 45u);
    for (const CampaignPoint &point : first.points)
        EXPECT_EQ(point.status, PointStatus::Failed);

    // Backoff is ledgered, bounded and seed-derived: identical
    // campaigns book identical (positive, finite) waits.
    EXPECT_GT(first.backoffSeconds, 0.0);
    double cap_per_failure =
        policy.backoffCapSeconds * 1.25;  // cap plus max jitter
    EXPECT_LE(first.backoffSeconds,
              first.totalFailures * cap_per_failure);
    EXPECT_DOUBLE_EQ(first.backoffSeconds, second.backoffSeconds);
}

TEST_F(CampaignFlow, BudgetExhaustionDegradesGracefully)
{
    // Fail often enough that some points cannot fill a large quorum
    // within the attempt budget, without failing everywhere.
    hwsim::FaultConfig flaky;
    flaky.enabled = true;
    flaky.runFailureProb = 0.5;

    CampaignConfig policy;
    policy.quorum = 3;
    policy.maxAttempts = 4;

    ExperimentRunner runner = makeRunner();
    runner.platform().injectFaults(flaky);
    CampaignEngine engine(runner, policy);
    CampaignResult result =
        engine.runValidation(hwsim::CpuCluster::BigA15, {kFreq});

    unsigned degraded = 0, failed = 0, converged = 0;
    for (const CampaignPoint &point : result.points) {
        switch (point.status) {
          case PointStatus::Degraded:
            ++degraded;
            break;
          case PointStatus::Failed:
            ++failed;
            break;
          default:
            ++converged;
        }
    }
    EXPECT_GT(degraded, 0u);
    EXPECT_GT(converged, 0u);
    EXPECT_EQ(result.excludedPoints, degraded + failed);
    EXPECT_EQ(result.dataset.records.size(), converged);
    // Each excluded point leaves exactly one structured warning.
    EXPECT_EQ(result.warnings.size(), degraded + failed);
}

// ---------------------------------------------------------------------
// Checkpoint / resume
// ---------------------------------------------------------------------

TEST_F(CampaignFlow, KilledCampaignResumesWithoutRemeasuring)
{
    ScratchFile checkpoint("gs_campaign_resume_test.csv");

    CampaignConfig policy;
    policy.checkpointPath = checkpoint.path;

    // First campaign dies after 10 points (emulating a kill: the
    // checkpoint is appended and flushed per point).
    CampaignConfig partial = policy;
    partial.maxPoints = 10;
    ExperimentRunner first = makeRunner();
    first.platform().injectFaults(hwsim::FaultConfig::labMix());
    CampaignResult before =
        CampaignEngine(first, partial)
            .runValidation(hwsim::CpuCluster::BigA15, {kFreq});
    ASSERT_FALSE(before.complete);
    ASSERT_EQ(before.points.size(), 10u);
    ASSERT_TRUE(std::filesystem::exists(checkpoint.path));

    // Second campaign runs on a *different simulated board* (other
    // seed): if it re-measured the finished points they could not
    // match the checkpoint.
    ExperimentRunner second = makeRunner(0xd1ffe4ULL);
    second.platform().injectFaults(hwsim::FaultConfig::labMix());
    CampaignResult after =
        CampaignEngine(second, policy)
            .runValidation(hwsim::CpuCluster::BigA15, {kFreq});

    EXPECT_TRUE(after.complete);
    EXPECT_EQ(after.resumedPoints, 10u);
    EXPECT_EQ(after.measuredPoints, 45u - 10u);
    ASSERT_EQ(after.points.size(), 45u);

    for (std::size_t i = 0; i < before.points.size(); ++i) {
        const CampaignPoint &done = before.points[i];
        const CampaignPoint &restored = after.points[i];
        EXPECT_EQ(restored.workload, done.workload);
        if (done.converged()) {
            EXPECT_EQ(restored.status, PointStatus::Resumed);
        }
        // The scalars came from the CSV, not from a re-measurement
        // (formatDouble rounds to nanoseconds in the checkpoint).
        EXPECT_NEAR(restored.execSeconds, done.execSeconds, 1e-8);
        EXPECT_NEAR(restored.powerWatts, done.powerWatts, 1e-5);
        EXPECT_EQ(restored.attempts, done.attempts);
        EXPECT_EQ(restored.failures, done.failures);

        if (done.converged()) {
            const ValidationRecord *record =
                after.dataset.find(done.workload, kFreq);
            ASSERT_NE(record, nullptr);
            EXPECT_NEAR(record->hw.execSeconds, done.execSeconds,
                        1e-8);
        }
    }
}

TEST_F(CampaignFlow, CorruptCheckpointIsReportedAndRerun)
{
    ScratchFile checkpoint("gs_campaign_corrupt_test.csv");
    {
        std::ofstream out(checkpoint.path);
        out << "workload,cluster,freq_mhz,status,attempts,failures,"
               "rejected,backoff_s,exec_seconds,power_watts,"
               "temperature_c,voltage,throttled,repeats,pmc,error\n";
        // Bad status tag and bad numeric: both rows must be rejected
        // with a warning, then re-measured.
        out << "mi-crc32,a15,1000.000,meh,1,0,0,0,0.5,1,60,1.1,0,"
               "0.5,,ok\n";
        out << "mi-dijkstra,a15,1000.000,clean,1,0,0,0,oops,1,60,"
               "1.1,0,oops,,ok\n";
    }

    CampaignConfig policy;
    policy.checkpointPath = checkpoint.path;
    ExperimentRunner runner = makeRunner();
    CampaignResult result =
        CampaignEngine(runner, policy)
            .runValidation(hwsim::CpuCluster::BigA15, {kFreq});

    EXPECT_EQ(result.resumedPoints, 0u);
    EXPECT_EQ(result.measuredPoints, 45u);
    EXPECT_EQ(result.dataset.records.size(), 45u);
    EXPECT_GE(result.warnings.size(), 2u);
}

TEST_F(CampaignFlow, NaivePolicyAcceptsFirstMeasurement)
{
    CampaignConfig naive = CampaignConfig::naive();
    EXPECT_EQ(naive.quorum, 1u);

    ExperimentRunner runner = makeRunner();
    runner.platform().injectFaults(hwsim::FaultConfig::labMix());
    CampaignEngine engine(runner, naive);
    CampaignResult result =
        engine.runValidation(hwsim::CpuCluster::BigA15, {kFreq});

    // The naive flow retries crashes but rejects nothing, so faulty
    // measurements land in the dataset and drag the error metric
    // outside the resilient campaign's one-point tolerance.
    EXPECT_EQ(result.totalRejected, 0u);
    EXPECT_GT(std::abs(result.dataset.execMpe() -
                       cleanDataset->execMpe()) * 100.0,
              1.0);
}
