/**
 * @file
 * Unit tests for the ISA: builder, memory, executor semantics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "isa/executor.hh"
#include "isa/memory.hh"
#include "isa/program.hh"

using namespace gemstone;
using namespace gemstone::isa;

namespace {

/** Run a program on one thread and return the final state. */
CpuState
runProgram(const Program &program, Memory &memory)
{
    ExclusiveMonitor monitor;
    ExecContext context{&memory, &monitor, 0};
    CpuState state;
    state.reset(0);
    runToHalt(state, program, context, 1 << 20);
    return state;
}

} // namespace

// ---------------------------------------------------------------------
// Opcode classification
// ---------------------------------------------------------------------

TEST(Inst, OpClassMapping)
{
    EXPECT_EQ(opClassOf(Opcode::Add), OpClass::IntAlu);
    EXPECT_EQ(opClassOf(Opcode::Mul), OpClass::IntMul);
    EXPECT_EQ(opClassOf(Opcode::Div), OpClass::IntDiv);
    EXPECT_EQ(opClassOf(Opcode::Fadd), OpClass::FpAlu);
    EXPECT_EQ(opClassOf(Opcode::Fdiv), OpClass::FpDiv);
    EXPECT_EQ(opClassOf(Opcode::Vadd), OpClass::SimdAlu);
    EXPECT_EQ(opClassOf(Opcode::Ldr), OpClass::Load);
    EXPECT_EQ(opClassOf(Opcode::Fldr), OpClass::Load);
    EXPECT_EQ(opClassOf(Opcode::Str), OpClass::Store);
    EXPECT_EQ(opClassOf(Opcode::Fstr), OpClass::Store);
    EXPECT_EQ(opClassOf(Opcode::Beq), OpClass::Branch);
    EXPECT_EQ(opClassOf(Opcode::Ldrex), OpClass::Sync);
    EXPECT_EQ(opClassOf(Opcode::Dmb), OpClass::Sync);
    EXPECT_EQ(opClassOf(Opcode::Halt), OpClass::Halt);
}

TEST(Inst, Predicates)
{
    EXPECT_TRUE(isMemOp(Opcode::Ldr));
    EXPECT_TRUE(isMemOp(Opcode::Strex));
    EXPECT_FALSE(isMemOp(Opcode::Add));
    EXPECT_TRUE(isBranchOp(Opcode::Bl));
    EXPECT_TRUE(isCondBranch(Opcode::Blt));
    EXPECT_FALSE(isCondBranch(Opcode::B));
    EXPECT_TRUE(isIndirectBranch(Opcode::Ret));
    EXPECT_TRUE(isIndirectBranch(Opcode::Bidx));
    EXPECT_FALSE(isIndirectBranch(Opcode::Bl));
}

TEST(Inst, MnemonicsDistinct)
{
    EXPECT_EQ(mnemonic(Opcode::Fsqrt), "fsqrt");
    EXPECT_EQ(mnemonic(Opcode::Strex), "strex");
    EXPECT_NE(mnemonic(Opcode::Ldr), mnemonic(Opcode::Ldrb));
}

// ---------------------------------------------------------------------
// Memory
// ---------------------------------------------------------------------

TEST(Memory, RoundsUpToPowerOfTwo)
{
    Memory m(3000);
    EXPECT_EQ(m.size(), 4096u);
}

TEST(Memory, ReadWriteRoundTrip)
{
    Memory m(4096);
    m.write64(128, 0x0123456789abcdefULL);
    EXPECT_EQ(m.read64(128), 0x0123456789abcdefULL);
    m.write(5, 0xff, 1);
    EXPECT_EQ(m.read(5, 1), 0xffu);
}

TEST(Memory, LittleEndianLayout)
{
    Memory m(4096);
    m.write64(0, 0x1122334455667788ULL);
    EXPECT_EQ(m.read(0, 1), 0x88u);
    EXPECT_EQ(m.read(7, 1), 0x11u);
}

TEST(Memory, AddressWraps)
{
    Memory m(4096);
    m.write64(4096 + 8, 77);  // wraps to address 8
    EXPECT_EQ(m.read64(8), 77u);
}

TEST(Memory, ClearZeroes)
{
    Memory m(4096);
    m.write64(0, 1);
    m.clear();
    EXPECT_EQ(m.read64(0), 0u);
}

TEST(ExclusiveMonitorTest, ReserveAndStore)
{
    ExclusiveMonitor monitor;
    monitor.setReservation(0, 64);
    EXPECT_TRUE(monitor.holds(0));
    EXPECT_TRUE(monitor.tryStore(0, 64));
    EXPECT_FALSE(monitor.holds(0));
    // Reservation consumed: second store fails.
    EXPECT_FALSE(monitor.tryStore(0, 64));
}

TEST(ExclusiveMonitorTest, WrongAddressFails)
{
    ExclusiveMonitor monitor;
    monitor.setReservation(0, 64);
    EXPECT_FALSE(monitor.tryStore(0, 128));
}

TEST(ExclusiveMonitorTest, RemoteStoreInvalidates)
{
    ExclusiveMonitor monitor;
    monitor.setReservation(0, 64);
    monitor.observeStore(1, 64);  // another thread stores
    EXPECT_FALSE(monitor.tryStore(0, 64));
}

TEST(ExclusiveMonitorTest, SuccessfulStrexInvalidatesOthers)
{
    ExclusiveMonitor monitor;
    monitor.setReservation(0, 64);
    monitor.setReservation(1, 64);
    EXPECT_TRUE(monitor.tryStore(0, 64));
    EXPECT_FALSE(monitor.tryStore(1, 64));
}

TEST(ExclusiveMonitorTest, UnrelatedAddressKeepsReservation)
{
    ExclusiveMonitor monitor;
    monitor.setReservation(0, 64);
    monitor.observeStore(1, 4096);
    EXPECT_TRUE(monitor.tryStore(0, 64));
}

// ---------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------

TEST(Builder, ForwardLabelResolution)
{
    ProgramBuilder b("fwd");
    b.b("end");
    b.movi(0, 99);  // skipped
    b.label("end");
    b.halt();
    Program p = b.build();
    EXPECT_EQ(p.code[0].target, 2u);
}

TEST(Builder, UndefinedLabelPanics)
{
    ProgramBuilder b("bad");
    b.b("nowhere");
    b.halt();
    EXPECT_DEATH(b.build(), "undefined label");
}

TEST(Builder, DuplicateLabelPanics)
{
    ProgramBuilder b("dup");
    b.label("x");
    b.nop();
    EXPECT_DEATH(b.label("x"), "duplicate label");
}

TEST(Builder, EmptyProgramPanics)
{
    ProgramBuilder b("empty");
    EXPECT_DEATH(b.build(), "empty program");
}

TEST(Builder, StaticMixSums)
{
    ProgramBuilder b("mix");
    b.movi(0, 1);
    b.fadd(0, 0, 0);
    b.ldr(1, 0, 0);
    b.halt();
    Program p = b.build();
    auto mix = p.staticMix();
    double total = 0.0;
    for (const auto &[cls, fraction] : mix)
        total += fraction;
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_NEAR(mix[OpClass::FpAlu], 0.25, 1e-12);
}

// ---------------------------------------------------------------------
// Executor: integer and FP semantics
// ---------------------------------------------------------------------

TEST(Executor, IntegerAluOps)
{
    ProgramBuilder b("alu");
    b.movi(1, 12);
    b.movi(2, 5);
    b.add(3, 1, 2);    // 17
    b.sub(4, 1, 2);    // 7
    b.andr(5, 1, 2);   // 4
    b.orr(6, 1, 2);    // 13
    b.eor(7, 1, 2);    // 9
    b.lsl(8, 2, 3);    // 40
    b.lsr(9, 1, 2);    // 3
    b.mul(10, 1, 2);   // 60
    b.divr(11, 1, 2);  // 2
    b.halt();
    Memory m(4096);
    CpuState s = runProgram(b.build(), m);
    EXPECT_EQ(s.intRegs[3], 17);
    EXPECT_EQ(s.intRegs[4], 7);
    EXPECT_EQ(s.intRegs[5], 4);
    EXPECT_EQ(s.intRegs[6], 13);
    EXPECT_EQ(s.intRegs[7], 9);
    EXPECT_EQ(s.intRegs[8], 40);
    EXPECT_EQ(s.intRegs[9], 3);
    EXPECT_EQ(s.intRegs[10], 60);
    EXPECT_EQ(s.intRegs[11], 2);
}

TEST(Executor, DivisionByZeroYieldsZero)
{
    ProgramBuilder b("div0");
    b.movi(1, 10);
    b.movi(2, 0);
    b.divr(3, 1, 2);
    b.halt();
    Memory m(4096);
    CpuState s = runProgram(b.build(), m);
    EXPECT_EQ(s.intRegs[3], 0);
}

TEST(Executor, AsrIsArithmetic)
{
    ProgramBuilder b("asr");
    b.movi(1, -8);
    b.asr(2, 1, 1);
    b.lsr(3, 1, 1);
    b.halt();
    Memory m(4096);
    CpuState s = runProgram(b.build(), m);
    EXPECT_EQ(s.intRegs[2], -4);
    EXPECT_GT(s.intRegs[3], 0);  // logical shift clears the sign
}

TEST(Executor, CompareOps)
{
    ProgramBuilder b("cmp");
    b.movi(1, 3);
    b.movi(2, 5);
    b.cmplt(3, 1, 2);  // 1
    b.cmplt(4, 2, 1);  // 0
    b.cmpeq(5, 1, 1);  // 1
    b.cmpeq(6, 1, 2);  // 0
    b.halt();
    Memory m(4096);
    CpuState s = runProgram(b.build(), m);
    EXPECT_EQ(s.intRegs[3], 1);
    EXPECT_EQ(s.intRegs[4], 0);
    EXPECT_EQ(s.intRegs[5], 1);
    EXPECT_EQ(s.intRegs[6], 0);
}

TEST(Executor, FpArithmetic)
{
    ProgramBuilder b("fp");
    b.fmovi(0, 2.0);
    b.fmovi(1, 0.5);
    b.fadd(2, 0, 1);   // 2.5
    b.fsub(3, 0, 1);   // 1.5
    b.fmul(4, 0, 1);   // 1.0
    b.fdiv(5, 0, 1);   // 4.0
    b.fsqrt(6, 0);     // sqrt(2)
    b.halt();
    Memory m(4096);
    CpuState s = runProgram(b.build(), m);
    EXPECT_DOUBLE_EQ(s.fpRegs[2], 2.5);
    EXPECT_DOUBLE_EQ(s.fpRegs[3], 1.5);
    EXPECT_DOUBLE_EQ(s.fpRegs[4], 1.0);
    EXPECT_DOUBLE_EQ(s.fpRegs[5], 4.0);
    EXPECT_NEAR(s.fpRegs[6], std::sqrt(2.0), 1e-15);
}

TEST(Executor, FpDivisionByZeroYieldsZero)
{
    ProgramBuilder b("fdiv0");
    b.fmovi(0, 1.0);
    b.fmovi(1, 0.0);
    b.fdiv(2, 0, 1);
    b.fsqrt(3, 1);
    b.halt();
    Memory m(4096);
    CpuState s = runProgram(b.build(), m);
    EXPECT_DOUBLE_EQ(s.fpRegs[2], 0.0);
    EXPECT_DOUBLE_EQ(s.fpRegs[3], 0.0);
}

TEST(Executor, Conversions)
{
    ProgramBuilder b("cvt");
    b.movi(1, 7);
    b.fcvt(0, 1);      // f0 = 7.0
    b.fmovi(1, 3.9);
    b.ficvt(2, 1);     // r2 = 3 (truncation)
    b.halt();
    Memory m(4096);
    CpuState s = runProgram(b.build(), m);
    EXPECT_DOUBLE_EQ(s.fpRegs[0], 7.0);
    EXPECT_EQ(s.intRegs[2], 3);
}

TEST(Executor, SimdPairSemantics)
{
    ProgramBuilder b("simd");
    b.fmovi(0, 1.0);
    b.fmovi(1, 2.0);
    b.fmovi(2, 10.0);
    b.fmovi(3, 20.0);
    b.vadd(4, 0, 2);   // f4 = 11, f5 = 22
    b.vmul(6, 0, 2);   // f6 = 10, f7 = 40
    b.halt();
    Memory m(4096);
    CpuState s = runProgram(b.build(), m);
    EXPECT_DOUBLE_EQ(s.fpRegs[4], 11.0);
    EXPECT_DOUBLE_EQ(s.fpRegs[5], 22.0);
    EXPECT_DOUBLE_EQ(s.fpRegs[6], 10.0);
    EXPECT_DOUBLE_EQ(s.fpRegs[7], 40.0);
}

// ---------------------------------------------------------------------
// Executor: memory operations
// ---------------------------------------------------------------------

TEST(Executor, LoadStoreRoundTrip)
{
    ProgramBuilder b("mem");
    b.movi(1, 0xdead);
    b.movi(2, 256);
    b.str(1, 2, 0);
    b.ldr(3, 2, 0);
    b.halt();
    Memory m(4096);
    CpuState s = runProgram(b.build(), m);
    EXPECT_EQ(s.intRegs[3], 0xdead);
    EXPECT_EQ(m.read64(256), 0xdeadu);
}

TEST(Executor, ByteOps)
{
    ProgramBuilder b("byte");
    b.movi(1, 0x1FF);   // > 1 byte
    b.movi(2, 100);
    b.strb(1, 2, 0);    // stores 0xFF
    b.ldrb(3, 2, 0);
    b.halt();
    Memory m(4096);
    CpuState s = runProgram(b.build(), m);
    EXPECT_EQ(s.intRegs[3], 0xFF);
}

TEST(Executor, DisplacementAddressing)
{
    ProgramBuilder b("disp");
    b.movi(1, 41);
    b.movi(2, 200);
    b.str(1, 2, 56);
    b.ldr(3, 2, 56);
    b.halt();
    Memory m(4096);
    CpuState s = runProgram(b.build(), m);
    EXPECT_EQ(s.intRegs[3], 41);
    EXPECT_EQ(m.read64(256), 41u);
}

TEST(Executor, FpLoadStorePreservesBits)
{
    ProgramBuilder b("fmem");
    b.fmovi(0, 3.141592653589793);
    b.movi(1, 512);
    b.fstr(0, 1, 0);
    b.fldr(2, 1, 0);
    b.halt();
    Memory m(4096);
    CpuState s = runProgram(b.build(), m);
    EXPECT_DOUBLE_EQ(s.fpRegs[2], 3.141592653589793);
}

TEST(Executor, UnalignedFlagged)
{
    ProgramBuilder b("unaligned");
    b.movi(1, 3);
    b.ldr(2, 1, 0);
    b.halt();
    Program p = b.build();
    Memory m(4096);
    ExclusiveMonitor monitor;
    ExecContext context{&m, &monitor, 0};
    CpuState s;
    s.reset(0);
    step(s, p, context);                       // movi
    StepResult sr = step(s, p, context);       // ldr
    EXPECT_TRUE(sr.isMem);
    EXPECT_TRUE(sr.unaligned);
    EXPECT_EQ(sr.memAddr, 3u);
}

// ---------------------------------------------------------------------
// Executor: control flow
// ---------------------------------------------------------------------

TEST(Executor, CountedLoopExecutesExactly)
{
    ProgramBuilder b("loop");
    b.movi(1, 10);
    b.movi(2, 0);
    b.label("top");
    b.addi(2, 2, 1);
    b.subi(1, 1, 1);
    b.bne(1, "top");
    b.halt();
    Memory m(4096);
    CpuState s = runProgram(b.build(), m);
    EXPECT_EQ(s.intRegs[2], 10);
}

TEST(Executor, ConditionalVariants)
{
    ProgramBuilder b("cond");
    b.movi(1, -5);
    b.movi(2, 0);
    b.blt(1, "neg");
    b.movi(2, 111);  // skipped
    b.label("neg");
    b.movi(3, 0);
    b.bge(3, "ge");
    b.movi(2, 222);  // skipped (0 >= 0 taken)
    b.label("ge");
    b.movi(4, 7);
    b.beq(4, "never");
    b.movi(5, 33);   // executed: r4 != 0
    b.label("never");
    b.halt();
    Memory m(4096);
    CpuState s = runProgram(b.build(), m);
    EXPECT_EQ(s.intRegs[2], 0);
    EXPECT_EQ(s.intRegs[5], 33);
}

TEST(Executor, CallAndReturn)
{
    ProgramBuilder b("call");
    b.movi(1, 0);
    b.bl("func");
    b.addi(1, 1, 100);  // after return
    b.halt();
    b.label("func");
    b.addi(1, 1, 1);
    b.ret();
    Memory m(4096);
    CpuState s = runProgram(b.build(), m);
    EXPECT_EQ(s.intRegs[1], 101);
}

TEST(Executor, IndirectBranchViaRegister)
{
    ProgramBuilder b("bidx");
    b.movi(1, 4);   // index of the target instruction
    b.bidx(1);
    b.movi(2, 1);   // skipped
    b.halt();       // skipped
    b.movi(2, 42);  // index 4: landed here
    b.halt();
    Memory m(4096);
    CpuState s = runProgram(b.build(), m);
    EXPECT_EQ(s.intRegs[2], 42);
}

TEST(Executor, StepResultBranchMetadata)
{
    ProgramBuilder b("meta");
    b.movi(1, 0);
    b.beq(1, "t");
    b.label("t");
    b.halt();
    Program p = b.build();
    Memory m(4096);
    ExclusiveMonitor monitor;
    ExecContext context{&m, &monitor, 0};
    CpuState s;
    s.reset(0);
    step(s, p, context);
    StepResult sr = step(s, p, context);
    EXPECT_TRUE(sr.isBranch);
    EXPECT_TRUE(sr.isCond);
    EXPECT_TRUE(sr.taken);
    EXPECT_EQ(sr.branchTarget, 2u);
}

// ---------------------------------------------------------------------
// Executor: synchronisation
// ---------------------------------------------------------------------

TEST(Executor, LdrexStrexSuccess)
{
    ProgramBuilder b("lock");
    b.movi(1, 128);
    b.ldrex(2, 1);
    b.addi(2, 2, 1);
    b.strex(3, 2, 1);  // r3 = 0 on success
    b.halt();
    Memory m(4096);
    m.write64(128, 41);
    ExclusiveMonitor monitor;
    ExecContext context{&m, &monitor, 0};
    CpuState s;
    s.reset(0);
    runToHalt(s, b.build(), context);
    EXPECT_EQ(s.intRegs[3], 0);
    EXPECT_EQ(m.read64(128), 42u);
}

TEST(Executor, StrexFailsAfterInterveningStore)
{
    ProgramBuilder b("fail");
    b.movi(1, 128);
    b.ldrex(2, 1);
    b.movi(4, 9);
    b.str(4, 1, 0);    // plain store to the same address
    b.strex(3, 2, 1);  // must fail: r3 = 1
    b.halt();
    Memory m(4096);
    ExclusiveMonitor monitor;
    ExecContext context{&m, &monitor, 0};
    CpuState s;
    s.reset(0);
    runToHalt(s, b.build(), context);
    EXPECT_EQ(s.intRegs[3], 1);
    EXPECT_EQ(m.read64(128), 9u);  // failed strex wrote nothing
}

TEST(Executor, BarrierFlags)
{
    ProgramBuilder b("dmb");
    b.dmb();
    b.isb();
    b.halt();
    Program p = b.build();
    Memory m(4096);
    ExclusiveMonitor monitor;
    ExecContext context{&m, &monitor, 0};
    CpuState s;
    s.reset(0);
    StepResult first = step(s, p, context);
    StepResult second = step(s, p, context);
    EXPECT_TRUE(first.isBarrier);
    EXPECT_TRUE(second.isBarrier);
}

TEST(Executor, ThreadIdRegisterSet)
{
    CpuState s;
    s.reset(3);
    EXPECT_EQ(s.intRegs[threadIdReg], 3);
    EXPECT_EQ(s.pc, 0u);
    EXPECT_FALSE(s.halted);
}

TEST(Executor, RunawayProgramPanics)
{
    ProgramBuilder b("spin");
    b.label("forever");
    b.b("forever");
    Program p = b.build();
    Memory m(4096);
    ExclusiveMonitor monitor;
    ExecContext context{&m, &monitor, 0};
    CpuState s;
    s.reset(0);
    EXPECT_DEATH(runToHalt(s, p, context, 1000), "exceeded");
}

TEST(Executor, SteppingHaltedThreadPanics)
{
    ProgramBuilder b("halted");
    b.halt();
    Program p = b.build();
    Memory m(4096);
    ExclusiveMonitor monitor;
    ExecContext context{&m, &monitor, 0};
    CpuState s;
    s.reset(0);
    step(s, p, context);
    EXPECT_DEATH(step(s, p, context), "halted");
}
