/**
 * @file
 * Tests of the reference-platform model: PMU, power, thermal, DVFS
 * and the measurement harness.
 */

#include <gtest/gtest.h>

#include <set>

#include "hwsim/faults.hh"
#include "hwsim/platform.hh"
#include "hwsim/pmu.hh"
#include "hwsim/power.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

using namespace gemstone;
using namespace gemstone::hwsim;

// ---------------------------------------------------------------------
// PMU event table
// ---------------------------------------------------------------------

TEST(Pmu, EventIdsUnique)
{
    std::set<int> ids;
    for (const PmcEvent &event : PmuEventTable::events())
        EXPECT_TRUE(ids.insert(event.id).second)
            << "duplicate id " << event.id;
}

TEST(Pmu, TableHasPaperEventCount)
{
    // The paper's Experiment 1 captured 68 PMC events; our table
    // provides a comparable set (at least 55).
    EXPECT_GE(PmuEventTable::events().size(), 55u);
}

TEST(Pmu, CoreArchitecturalEventsPresent)
{
    for (int id : {0x02, 0x08, 0x10, 0x11, 0x12, 0x15, 0x16, 0x1B,
                   0x43, 0x6C, 0x6D, 0x7E, 0x73, 0x75, 0x76}) {
        EXPECT_NE(PmuEventTable::find(id), nullptr)
            << "missing " << pmcIdString(id);
    }
}

TEST(Pmu, FindByNameWorks)
{
    const PmcEvent *cycles = PmuEventTable::findByName("CPU_CYCLES");
    ASSERT_NE(cycles, nullptr);
    EXPECT_EQ(cycles->id, 0x11);
    EXPECT_EQ(PmuEventTable::findByName("NO_SUCH_EVENT"), nullptr);
}

TEST(Pmu, IdStringFormat)
{
    EXPECT_EQ(pmcIdString(0x02), "0x02");
    EXPECT_EQ(pmcIdString(0x6C), "0x6C");
    EXPECT_EQ(pmcIdString(0xC0), "0xC0");
}

TEST(Pmu, ExtractorsProduceConsistentValues)
{
    uarch::EventCounts e;
    e.instructions = 1000;
    e.cycles = 2000;
    e.branches = 100;
    e.branchMispredicts = 7;
    e.loadOps = 50;
    e.storeOps = 30;
    EXPECT_DOUBLE_EQ(PmuEventTable::find(0x08)->extract(e), 1000.0);
    EXPECT_DOUBLE_EQ(PmuEventTable::find(0x11)->extract(e), 2000.0);
    EXPECT_DOUBLE_EQ(PmuEventTable::find(0x10)->extract(e), 7.0);
    EXPECT_DOUBLE_EQ(PmuEventTable::find(0x06)->extract(e), 50.0);
    EXPECT_DOUBLE_EQ(PmuEventTable::find(0x07)->extract(e), 30.0);
    // 0x72 = loads + stores.
    EXPECT_DOUBLE_EQ(PmuEventTable::find(0x72)->extract(e), 80.0);
}

// ---------------------------------------------------------------------
// PMU multiplexed sampling
// ---------------------------------------------------------------------

TEST(PmuSamplerTest, RunsNeededCeils)
{
    PmuSampler sampler(6, 0.0);
    EXPECT_EQ(sampler.runsNeeded(6), 1u);
    EXPECT_EQ(sampler.runsNeeded(7), 2u);
    EXPECT_EQ(sampler.runsNeeded(68), 12u);
}

TEST(PmuSamplerTest, NoiselessCaptureIsExact)
{
    PmuSampler sampler(6, 0.0);
    uarch::EventCounts truth;
    truth.instructions = 123456;
    truth.cycles = 234567;
    Rng rng(1);
    auto counts = sampler.capture({0x08, 0x11}, truth, rng);
    EXPECT_DOUBLE_EQ(counts.at(0x08), 123456.0);
    EXPECT_DOUBLE_EQ(counts.at(0x11), 234567.0);
}

TEST(PmuSamplerTest, NoisyCaptureWithinTolerance)
{
    PmuSampler sampler(6, 0.005);
    uarch::EventCounts truth;
    truth.instructions = 1000000;
    Rng rng(2);
    auto counts = sampler.capture({0x08}, truth, rng);
    EXPECT_NEAR(counts.at(0x08), 1e6, 1e6 * 0.05);
    EXPECT_NE(counts.at(0x08), 1e6);  // but not exact
}

TEST(PmuSamplerTest, SameRunGroupSharesPerturbation)
{
    // Events captured in the same multiplexing group see the same
    // run, so their ratio is exact even under noise.
    PmuSampler sampler(6, 0.01);
    uarch::EventCounts truth;
    truth.loadOps = 600000;
    truth.storeOps = 300000;
    Rng rng(3);
    auto counts = sampler.capture({0x06, 0x07}, truth, rng);
    EXPECT_NEAR(counts.at(0x06) / counts.at(0x07), 2.0, 1e-9);
}

// ---------------------------------------------------------------------
// Power / thermal
// ---------------------------------------------------------------------

TEST(Power, MoreActivityMorePower)
{
    GroundTruthPower gtp(bigCoefficients());
    uarch::EventCounts idle;
    idle.cycles = 1e9;
    uarch::EventCounts busy = idle;
    busy.instSpec = 2'000'000'000;
    busy.fpOps = 500'000'000;
    double p_idle = gtp.meanPower(idle, 1.0, 1.0, 1.0, 40.0);
    double p_busy = gtp.meanPower(busy, 1.0, 1.0, 1.0, 40.0);
    EXPECT_GT(p_busy, p_idle * 1.5);
}

TEST(Power, VoltageScalesQuadratically)
{
    GroundTruthPower gtp(bigCoefficients());
    uarch::EventCounts e;
    e.cycles = 1e9;
    e.instSpec = 1'000'000'000;
    double p1 = gtp.meanPower(e, 1.0, 1.0, 1.0, 25.0);
    double p2 = gtp.meanPower(e, 1.0, 1.25, 1.0, 25.0);
    // The dynamic part scales with V^2 (about 1.56x).
    EXPECT_GT(p2, p1 * 1.4);
    EXPECT_LT(p2, p1 * 1.7);
}

TEST(Power, LittleCoefficientsAreSmaller)
{
    PowerCoefficients big = bigCoefficients();
    PowerCoefficients little = littleCoefficients();
    EXPECT_LT(little.energyCycle, big.energyCycle);
    EXPECT_LT(little.energyFp, big.energyFp);
    EXPECT_LT(little.staticBase, big.staticBase);
    // DRAM energy is a property of the DRAM, not the core.
    EXPECT_DOUBLE_EQ(little.energyDram, big.energyDram);
}

TEST(Power, SensorNoiseShrinksWithWindow)
{
    PowerSensor sensor(3.8, 0.05);
    Rng rng(7);
    double spread_short = 0.0;
    double spread_long = 0.0;
    for (int i = 0; i < 300; ++i) {
        spread_short +=
            std::fabs(sensor.measure(1.0, 0.5, rng) - 1.0);
        spread_long +=
            std::fabs(sensor.measure(1.0, 120.0, rng) - 1.0);
    }
    EXPECT_LT(spread_long, spread_short * 0.5);
}

TEST(Thermal, SteadyStateAndTrip)
{
    ThermalModel thermal(24.0, 9.0, 85.0);
    EXPECT_DOUBLE_EQ(thermal.steadyTemperature(0.0), 24.0);
    EXPECT_DOUBLE_EQ(thermal.steadyTemperature(4.0), 60.0);
    EXPECT_FALSE(thermal.throttles(80.0));
    EXPECT_TRUE(thermal.throttles(90.0));
}

// ---------------------------------------------------------------------
// Platform configuration
// ---------------------------------------------------------------------

TEST(Platform, OppTablesMatchPaper)
{
    const auto &little = OdroidXu3Platform::oppTable(
        CpuCluster::LittleA7);
    const auto &big = OdroidXu3Platform::oppTable(
        CpuCluster::BigA15);
    EXPECT_EQ(little.front().freqMhz, 200.0);
    EXPECT_EQ(little.back().freqMhz, 1400.0);
    EXPECT_EQ(big.back().freqMhz, 2000.0);  // exists but throttles
    // Voltage rises with frequency.
    for (std::size_t i = 1; i < big.size(); ++i)
        EXPECT_GT(big[i].voltage, big[i - 1].voltage);
}

TEST(Platform, VoltageLookup)
{
    EXPECT_DOUBLE_EQ(
        OdroidXu3Platform::voltageFor(CpuCluster::BigA15, 1000.0),
        1.0);
    EXPECT_EXIT(OdroidXu3Platform::voltageFor(CpuCluster::BigA15,
                                              1234.0),
                ::testing::ExitedWithCode(1), "no operating point");
}

TEST(Platform, TrueConfigsMatchTrm)
{
    uarch::ClusterConfig big = trueBigConfig();
    EXPECT_EQ(big.core.itlb.entries, 32u);   // A15 TRM value
    EXPECT_TRUE(big.core.unifiedL2Tlb);
    EXPECT_EQ(big.core.l2TlbUnified.entries, 512u);
    EXPECT_EQ(big.core.l2TlbUnified.assoc, 4u);
    EXPECT_TRUE(big.core.l1d.writeStreaming);
    EXPECT_EQ(big.l2.sizeBytes, 2u * 1024u * 1024u);

    uarch::ClusterConfig little = trueLittleConfig();
    EXPECT_EQ(little.l2.sizeBytes, 512u * 1024u);
    EXPECT_LT(little.core.issueWidth, big.core.issueWidth);
    EXPECT_GT(little.core.depStallFactor, big.core.depStallFactor);
}

// ---------------------------------------------------------------------
// Measurement harness
// ---------------------------------------------------------------------

class PlatformMeasure : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        board = new OdroidXu3Platform(42);
        work = &workload::Suite::byName("mi-crc32");
    }
    static void TearDownTestSuite()
    {
        delete board;
        board = nullptr;
    }
    static OdroidXu3Platform *board;
    static const workload::Workload *work;
};

OdroidXu3Platform *PlatformMeasure::board = nullptr;
const workload::Workload *PlatformMeasure::work = nullptr;

TEST_F(PlatformMeasure, MedianOfRepeats)
{
    HwMeasurement m =
        board->measure(*work, CpuCluster::BigA15, 1000.0, 5);
    ASSERT_EQ(m.repeatSeconds.size(), 5u);
    std::vector<double> sorted = m.repeatSeconds;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_DOUBLE_EQ(m.execSeconds, sorted[2]);
}

TEST_F(PlatformMeasure, CapturesFullPmuSet)
{
    HwMeasurement m =
        board->measure(*work, CpuCluster::BigA15, 1000.0, 1);
    EXPECT_EQ(m.pmc.size(), PmuEventTable::events().size());
    EXPECT_GT(m.pmcValue(0x08), 100000.0);
    EXPECT_GT(m.pmcValue(0x11), m.pmcValue(0x08) * 0.2);
    EXPECT_GT(m.powerWatts, 0.05);
    EXPECT_GT(m.temperatureC, 20.0);
}

TEST_F(PlatformMeasure, DeterministicForSameSeed)
{
    OdroidXu3Platform a(99);
    OdroidXu3Platform b(99);
    HwMeasurement ma =
        a.measure(*work, CpuCluster::BigA15, 1400.0, 3);
    HwMeasurement mb =
        b.measure(*work, CpuCluster::BigA15, 1400.0, 3);
    EXPECT_DOUBLE_EQ(ma.execSeconds, mb.execSeconds);
    EXPECT_DOUBLE_EQ(ma.powerWatts, mb.powerWatts);
    EXPECT_DOUBLE_EQ(ma.pmcValue(0x11), mb.pmcValue(0x11));
}

TEST_F(PlatformMeasure, HigherFrequencyFasterAndHotter)
{
    HwMeasurement slow =
        board->measure(*work, CpuCluster::BigA15, 600.0, 1);
    HwMeasurement fast =
        board->measure(*work, CpuCluster::BigA15, 1800.0, 1);
    EXPECT_GT(slow.execSeconds, fast.execSeconds);
    EXPECT_GT(fast.powerWatts, slow.powerWatts);
    EXPECT_GT(fast.temperatureC, slow.temperatureC);
    EXPECT_DOUBLE_EQ(fast.voltage, 1.25);
}

TEST_F(PlatformMeasure, ThermalThrottleAtTwoGigahertz)
{
    // The paper had to cap the A15 at 1.8 GHz because 2 GHz
    // throttled. A sustained heavy workload reproduces this.
    const workload::Workload &heavy =
        workload::Suite::byName("parsec-streamcluster-4");
    HwMeasurement m =
        board->measure(heavy, CpuCluster::BigA15, 2000.0, 1);
    EXPECT_TRUE(m.throttled);
}

TEST_F(PlatformMeasure, LittleClusterSlowerAndCooler)
{
    HwMeasurement big =
        board->measure(*work, CpuCluster::BigA15, 1000.0, 1);
    HwMeasurement little =
        board->measure(*work, CpuCluster::LittleA7, 1000.0, 1);
    EXPECT_GT(little.execSeconds, big.execSeconds);
    EXPECT_LT(little.powerWatts, big.powerWatts);
}

TEST_F(PlatformMeasure, BoardVariationChangesPowerOnly)
{
    OdroidXu3Platform reference(1234, 0.0);
    OdroidXu3Platform other(1234, 0.10);
    HwMeasurement ma =
        reference.measure(*work, CpuCluster::BigA15, 1000.0, 1);
    HwMeasurement mb =
        other.measure(*work, CpuCluster::BigA15, 1000.0, 1);
    // Timing and events are properties of the silicon design...
    EXPECT_DOUBLE_EQ(ma.pmcValue(0x08), mb.pmcValue(0x08));
    // ...but the power characteristics differ between boards.
    EXPECT_NE(ma.powerWatts, mb.powerWatts);
}

TEST_F(PlatformMeasure, GroundTruthMatchesPmcScale)
{
    HwMeasurement m =
        board->measure(*work, CpuCluster::BigA15, 1000.0, 1);
    // The noisy PMC value sits within a percent of the ground truth.
    EXPECT_NEAR(m.pmcValue(0x08),
                static_cast<double>(m.groundTruth.instructions),
                m.pmcValue(0x08) * 0.02);
}

// ---------------------------------------------------------------------
// Sensor and thermal edge cases that matter under faults
// ---------------------------------------------------------------------

TEST(Power, SensorWindowShorterThanOneSamplePeriod)
{
    // Below one 3.8 Hz sample period the sensor has exactly one
    // sample to report, so every sub-period duration behaves the
    // same (n clamps to 1 — the noise cannot shrink further).
    PowerSensor sensor(3.8, 0.05);
    Rng a(11), b(11), c(11);
    double one_period = 1.0 / 3.8;
    double tiny = sensor.measure(2.0, 0.001, a);
    double short_win = sensor.measure(2.0, one_period * 0.5, b);
    double full = sensor.measure(2.0, one_period, c);
    EXPECT_DOUBLE_EQ(tiny, short_win);
    EXPECT_DOUBLE_EQ(short_win, full);
    EXPECT_GT(tiny, 0.0);
}

TEST(Power, SensorNeverReportsNegativePower)
{
    // Huge single-sample noise must clamp at zero, not go negative.
    PowerSensor sensor(3.8, 5.0);
    Rng rng(3);
    for (int i = 0; i < 200; ++i)
        EXPECT_GE(sensor.measure(0.5, 0.1, rng), 0.0);
}

TEST(Power, DegradedSensorIsNoisierAndFractionZeroExact)
{
    PowerSensor sensor(3.8, 0.05);
    {
        Rng a(21), b(21);
        EXPECT_DOUBLE_EQ(sensor.measure(1.0, 60.0, a),
                         sensor.measureDegraded(1.0, 60.0, 0.0, b));
    }
    Rng a(22), b(22);
    double spread_full = 0.0, spread_degraded = 0.0;
    for (int i = 0; i < 300; ++i) {
        spread_full += std::fabs(sensor.measure(1.0, 60.0, a) - 1.0);
        spread_degraded +=
            std::fabs(sensor.measureDegraded(1.0, 60.0, 0.9, b) - 1.0);
    }
    EXPECT_GT(spread_degraded, spread_full * 1.5);
}

TEST(Thermal, TripPointBoundaryIsExclusive)
{
    ThermalModel thermal(24.0, 9.0, 85.0);
    // Exactly at the trip point the governor has not yet tripped;
    // any excursion beyond it throttles.
    EXPECT_FALSE(thermal.throttles(thermal.tripPoint()));
    EXPECT_TRUE(thermal.throttles(
        std::nextafter(thermal.tripPoint(), 1e9)));
    EXPECT_FALSE(thermal.throttles(
        std::nextafter(thermal.tripPoint(), -1e9)));
    // The power that lands exactly on the trip point: 24 + 9p = 85.
    double trip_power = (85.0 - 24.0) / 9.0;
    EXPECT_FALSE(
        thermal.throttles(thermal.steadyTemperature(trip_power)));
    EXPECT_TRUE(thermal.throttles(
        thermal.steadyTemperature(trip_power + 1e-6)));
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

TEST(Faults, DisabledConfigIsInactive)
{
    FaultConfig config;
    EXPECT_FALSE(config.active());
    // Enabled but with every probability zero is still inactive.
    config.enabled = true;
    EXPECT_FALSE(config.active());
    config.runFailureProb = 0.5;
    EXPECT_TRUE(config.active());
    config.enabled = false;
    EXPECT_FALSE(config.active());
}

TEST(Faults, DisabledInjectorKeepsPlatformBitIdentical)
{
    const workload::Workload &work =
        workload::Suite::byName("mi-crc32");
    OdroidXu3Platform clean(4242);
    OdroidXu3Platform armed(4242);
    armed.injectFaults(FaultConfig{});  // disabled master switch

    HwMeasurement a =
        clean.measure(work, CpuCluster::BigA15, 1400.0, 5);
    HwMeasurement b =
        armed.measure(work, CpuCluster::BigA15, 1400.0, 5);
    EXPECT_DOUBLE_EQ(a.execSeconds, b.execSeconds);
    EXPECT_DOUBLE_EQ(a.powerWatts, b.powerWatts);
    ASSERT_EQ(a.pmc.size(), b.pmc.size());
    for (const auto &[id, count] : a.pmc)
        EXPECT_DOUBLE_EQ(count, b.pmc.at(id));
    EXPECT_EQ(a.repeatSeconds, b.repeatSeconds);
}

TEST(Faults, PlansArePureFunctionsOfPointAndAttempt)
{
    FaultInjector injector(FaultConfig::labMix(77));
    auto p1 = injector.plan("w", "a15", 1800.0, 3);
    auto p2 = injector.plan("w", "a15", 1800.0, 3);
    EXPECT_EQ(p1.runFails, p2.runFails);
    EXPECT_EQ(p1.thermalEpisode, p2.thermalEpisode);
    EXPECT_EQ(p1.sensorStuck, p2.sensorStuck);
    EXPECT_DOUBLE_EQ(p1.sensorStuckScale, p2.sensorStuckScale);
    EXPECT_EQ(p1.lostGroup, p2.lostGroup);

    // Interleaving other plan() calls must not disturb a point's
    // stream — the property resume depends on.
    FaultInjector other(FaultConfig::labMix(77));
    other.plan("x", "a7", 200.0, 0);
    other.plan("y", "a15", 600.0, 1);
    auto p3 = other.plan("w", "a15", 1800.0, 3);
    EXPECT_EQ(p1.runFails, p3.runFails);
    EXPECT_EQ(p1.thermalEpisode, p3.thermalEpisode);
    EXPECT_DOUBLE_EQ(p1.sensorStuckScale, p3.sensorStuckScale);
}

TEST(Faults, AttemptsSeeDifferentDraws)
{
    FaultConfig config;
    config.enabled = true;
    config.thermalEpisodeProb = 0.5;
    FaultInjector injector(config);
    bool saw_episode = false, saw_clean = false;
    for (unsigned attempt = 0; attempt < 32; ++attempt) {
        auto plan = injector.plan("w", "a15", 1000.0, attempt);
        (plan.thermalEpisode ? saw_episode : saw_clean) = true;
    }
    EXPECT_TRUE(saw_episode);
    EXPECT_TRUE(saw_clean);
    EXPECT_EQ(injector.tally().plans, 32u);
}

TEST(Faults, RunFailureSurfacesAsRunError)
{
    const workload::Workload &work =
        workload::Suite::byName("mi-crc32");
    OdroidXu3Platform board(7);
    FaultConfig config;
    config.enabled = true;
    config.runFailureProb = 1.0;
    board.injectFaults(config);
    try {
        board.measure(work, CpuCluster::BigA15, 1000.0, 1);
        FAIL() << "expected RunError";
    } catch (const RunError &error) {
        EXPECT_TRUE(error.kind() == "hung-run" ||
                    error.kind() == "crashed-run");
        EXPECT_NE(std::string(error.what()).find("mi-crc32"),
                  std::string::npos);
    }
    EXPECT_EQ(board.faults().tally().runFailures, 1u);
}

TEST(Faults, ThermalEpisodeInflatesTimeDeterministically)
{
    setQuiet(true);
    const workload::Workload &work =
        workload::Suite::byName("mi-crc32");
    OdroidXu3Platform clean(123);
    OdroidXu3Platform faulty(123);
    FaultConfig config;
    config.enabled = true;
    config.thermalEpisodeProb = 1.0;
    config.thermalSlowdown = 0.35;
    faulty.injectFaults(config);

    HwMeasurement a =
        clean.measure(work, CpuCluster::BigA15, 1000.0, 3);
    HwMeasurement b =
        faulty.measure(work, CpuCluster::BigA15, 1000.0, 3);
    // Attempt 0 shares the clean noise stream, so the inflation is
    // exactly the configured slowdown.
    EXPECT_NEAR(b.execSeconds / a.execSeconds, 1.35, 1e-9);
    EXPECT_TRUE(b.throttled);
    EXPECT_GE(b.temperatureC, faulty.thermal().tripPoint());
    // The work done is unchanged — only the wall clock stretched.
    EXPECT_EQ(b.groundTruth.instructions, a.groundTruth.instructions);
    setQuiet(false);
}

TEST(Faults, StuckSensorReadsFarBelowTruth)
{
    setQuiet(true);
    const workload::Workload &work =
        workload::Suite::byName("mi-crc32");
    OdroidXu3Platform clean(55);
    OdroidXu3Platform faulty(55);
    FaultConfig config;
    config.enabled = true;
    config.sensorStuckProb = 1.0;
    faulty.injectFaults(config);

    HwMeasurement a =
        clean.measure(work, CpuCluster::BigA15, 1400.0, 1);
    HwMeasurement b =
        faulty.measure(work, CpuCluster::BigA15, 1400.0, 1);
    // The latched sample dates from an idle stretch: 15-45% of the
    // true power, far outside sensor noise.
    EXPECT_LT(b.powerWatts, a.powerWatts * 0.6);
    EXPECT_GT(b.powerWatts, 0.0);
    setQuiet(false);
}

TEST(Faults, PmcGroupLossDropsEvents)
{
    setQuiet(true);
    const workload::Workload &work =
        workload::Suite::byName("mi-crc32");
    OdroidXu3Platform board(99);
    FaultConfig config;
    config.enabled = true;
    config.pmcGroupLossProb = 1.0;
    board.injectFaults(config);

    HwMeasurement m =
        board.measure(work, CpuCluster::BigA15, 1000.0, 1);
    std::size_t full = PmuEventTable::events().size();
    EXPECT_LT(m.pmc.size(), full);
    EXPECT_GE(m.pmc.size(), full - 6);  // one group of six lost
    setQuiet(false);
}

TEST(Faults, PmcOverflowWrapsAt32Bits)
{
    PmuSampler sampler(6, 0.0);
    uarch::EventCounts truth;
    truth.cycles = 5e9;          // above 2^32: wraps
    truth.instructions = 1000;   // below: untouched
    Rng rng(1);
    PmuSampler::CaptureFaults faults;
    faults.overflow = true;
    auto counts =
        sampler.captureFaulty({0x11, 0x08}, truth, rng, faults);
    EXPECT_DOUBLE_EQ(counts.at(0x11),
                     5e9 - 4294967296.0);
    EXPECT_DOUBLE_EQ(counts.at(0x08), 1000.0);
}

TEST(Faults, CaptureFaultyDefaultIsCaptureExactly)
{
    PmuSampler sampler(6, 0.01);
    uarch::EventCounts truth;
    truth.instructions = 123456;
    truth.cycles = 777777;
    Rng a(5), b(5);
    auto plain = sampler.capture({0x08, 0x11}, truth, a);
    auto faulty = sampler.captureFaulty({0x08, 0x11}, truth, b,
                                        PmuSampler::CaptureFaults{});
    EXPECT_EQ(plain, faulty);
}

TEST(Faults, LabMixEnablesEveryMode)
{
    FaultConfig mix = FaultConfig::labMix();
    EXPECT_TRUE(mix.active());
    EXPECT_GT(mix.runFailureProb, 0.0);
    EXPECT_GT(mix.thermalEpisodeProb, 0.0);
    EXPECT_GT(mix.sensorDropoutProb, 0.0);
    EXPECT_GT(mix.sensorStuckProb, 0.0);
    EXPECT_GT(mix.pmcGroupLossProb, 0.0);
    EXPECT_GT(mix.pmcOverflowProb, 0.0);
}
