/**
 * @file
 * Durability tests for the gemstoned campaign service (src/serve/).
 *
 * DESIGN.md §16 promises that a durable request outlives both its
 * client connection and the daemon process: disconnects detach
 * instead of cancelling, Attach by resume token replays the settled
 * PointResult frames byte-identically before the live stream
 * continues, identical durable specs coalesce onto one request, a
 * restarted daemon re-admits journaled requests, and the self-healing
 * client reconnects with backoff and re-attaches on its own. Each of
 * those claims gets a test against a real in-process Server on real
 * sockets; the full SIGKILL crash path runs in tests/serve_chaos.sh
 * against the shipped binaries.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <errno.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/wireproto.hh"
#include "serve/client.hh"
#include "serve/journal.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "util/cancellation.hh"
#include "util/logging.hh"

using namespace gemstone;

namespace {

/** A short-lived per-test socket path under /tmp (sun_path limit). */
std::string
freshSocketPath()
{
    static std::atomic<int> counter{0};
    return "/tmp/gs_durable_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".sock";
}

/** A per-test scratch directory, removed on destruction. */
struct ScratchDir
{
    std::string path;

    ScratchDir()
    {
        static std::atomic<int> counter{0};
        path = "/tmp/gs_durable_dir_" + std::to_string(::getpid()) +
               "_" + std::to_string(counter.fetch_add(1));
        std::filesystem::create_directories(path);
    }

    ~ScratchDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
};

/** A durable campaign small enough to finish in tens of ms. */
serve::CampaignSpec
smallSpec(std::uint64_t seed = 1)
{
    serve::CampaignSpec spec;
    spec.cluster = hwsim::CpuCluster::LittleA7;
    spec.freqsMhz = {1000.0};
    spec.maxPoints = 4;
    spec.repeats = 2;
    spec.quorum = 1;
    spec.seed = seed;
    spec.durable = true;
    return spec;
}

/** The full A7 campaign (~1s): long enough to hang up mid-flight. */
serve::CampaignSpec
longSpec(std::uint64_t seed = 1)
{
    serve::CampaignSpec spec;
    spec.cluster = hwsim::CpuCluster::LittleA7;
    spec.repeats = 2;
    spec.quorum = 1;
    spec.seed = seed;
    spec.durable = true;
    return spec;
}

/** Expected dataset bytes: the same spec, run one-shot. */
std::string
referenceCsv(const serve::CampaignSpec &spec)
{
    auto store = std::make_shared<exec::ResultStore>();
    serve::CampaignOutcome outcome = serve::runCampaign(
        spec, store, core::CampaignConfig::PointSink(),
        CancellationToken());
    EXPECT_EQ(outcome.outcome, serve::RequestOutcome::Ok);
    return outcome.datasetCsv;
}

/** Raw frame-level connection (see serve_test.cc). */
struct RawConn
{
    int fd = -1;
    exec::FrameDecoder decoder;

    ~RawConn() { close(); }

    void
    connectUnix(const std::string &path)
    {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        struct sockaddr_un addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        ASSERT_EQ(::connect(
                      fd, reinterpret_cast<struct sockaddr *>(&addr),
                      sizeof(addr)),
                  0)
            << std::strerror(errno);
    }

    bool
    send(exec::FrameType type, const std::string &payload)
    {
        return exec::writeFrame(fd, type, payload);
    }

    bool
    read(exec::Frame &out)
    {
        for (;;) {
            if (decoder.corrupt())
                return false;
            if (decoder.next(out))
                return true;
            char buffer[16384];
            ssize_t n = ::read(fd, buffer, sizeof(buffer));
            if (n > 0) {
                decoder.feed(buffer, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
    }

    bool
    readUntil(exec::FrameType type, exec::Frame &out)
    {
        while (read(out)) {
            if (out.type == type)
                return true;
        }
        return false;
    }

    void
    close()
    {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
};

/** In-process daemon: Server + event loop on a background thread. */
class DaemonFixture
{
  public:
    serve::Server::Config config;
    std::unique_ptr<serve::Server> server;
    std::string socketPath;
    Status runStatus = Status::okStatus();

    DaemonFixture()
    {
        socketPath = freshSocketPath();
        config.socketPath = socketPath;
        setFatalThrows(true);
    }

    ~DaemonFixture()
    {
        stop();
        setFatalThrows(false);
    }

    void
    start()
    {
        server = std::make_unique<serve::Server>(config);
        Status started = server->start();
        ASSERT_TRUE(started.ok()) << started.toString();
        loop = std::thread([this] { runStatus = server->run(); });
    }

    void
    stop()
    {
        if (!loop.joinable())
            return;
        server->requestDrain();
        loop.join();
        EXPECT_TRUE(runStatus.ok()) << runStatus.toString();
    }

  private:
    std::thread loop;
};

/** Spin until @p predicate or ~10s; true when it held. */
template <typename Predicate>
bool
eventually(Predicate predicate)
{
    for (int i = 0; i < 2000; ++i) {
        if (predicate())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return predicate();
}

TEST(ServeDurableTest, JournalCodecRoundTripsAndFailsClosed)
{
    // Hex codec is exact and rejects junk.
    std::string bytes("\x00\x01\xfe\xff ok", 7);
    std::string decoded;
    ASSERT_TRUE(serve::hexDecode(serve::hexEncode(bytes), decoded));
    EXPECT_EQ(decoded, bytes);
    EXPECT_FALSE(serve::hexDecode("abc", decoded));   // odd length
    EXPECT_FALSE(serve::hexDecode("zz", decoded));    // non-hex
    EXPECT_TRUE(serve::hexDecode("", decoded));
    EXPECT_TRUE(decoded.empty());

    // Tokens are fresh, well-formed and filesystem-safe.
    std::string token = serve::makeResumeToken(7);
    EXPECT_TRUE(serve::validResumeToken(token));
    EXPECT_NE(token, serve::makeResumeToken(7));
    EXPECT_FALSE(serve::validResumeToken(""));
    EXPECT_FALSE(serve::validResumeToken("../../etc/passwd"));
    EXPECT_FALSE(serve::validResumeToken("gst1-NOTHEX"));

    serve::RequestJournal journal;
    journal.requestId = 42;
    journal.token = token;
    journal.specBytes = serve::encodeCampaignSpec(smallSpec(3));
    journal.finished = true;
    journal.points = {std::string("\x01\x02", 2), "payload"};
    journal.summary = std::string("\x00summary", 8);

    std::string content = serve::encodeRequestJournal(journal) +
                          std::string(serve::kJournalMarker) + "\n";
    serve::RequestJournal parsed;
    ASSERT_TRUE(serve::decodeRequestJournal(content, parsed));
    EXPECT_EQ(parsed.requestId, journal.requestId);
    EXPECT_EQ(parsed.token, journal.token);
    EXPECT_EQ(parsed.specBytes, journal.specBytes);
    EXPECT_EQ(parsed.finished, journal.finished);
    EXPECT_EQ(parsed.points, journal.points);
    EXPECT_EQ(parsed.summary, journal.summary);

    // A journal torn at any byte offset never decodes: the integrity
    // marker is the last line, so every strict prefix fails closed.
    for (std::size_t cut = 0; cut < content.size(); ++cut) {
        serve::RequestJournal partial;
        EXPECT_FALSE(serve::decodeRequestJournal(
            content.substr(0, cut), partial))
            << "prefix of " << cut << " bytes decoded";
    }
    // Unknown keys are a format change, not noise to skip.
    serve::RequestJournal rejected;
    EXPECT_FALSE(serve::decodeRequestJournal(
        "gemstone-journal v1\nrequest 1\ntoken " + token +
            "\nstatus running\nspec 00\nfuturekey 1\n#end\n",
        rejected));

    // Save / scan round trip; a corrupt sibling is skipped with a
    // warning, never trusted and never fatal.
    ScratchDir dir;
    journal.finished = false;
    journal.summary.clear();
    ASSERT_TRUE(serve::saveRequestJournal(dir.path, journal).ok());
    std::string bad_token = serve::makeResumeToken(43);
    std::ofstream(serve::journalPath(dir.path, bad_token))
        << "gemstone-journal v1\nrequest 43\ngarbage";
    std::vector<std::string> warnings;
    Result<std::vector<serve::RequestJournal>> loaded =
        serve::loadJournalDir(dir.path, warnings);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    ASSERT_EQ(loaded.value().size(), 1u);
    EXPECT_EQ(loaded.value()[0].requestId, 42u);
    EXPECT_EQ(loaded.value()[0].points, journal.points);
    EXPECT_EQ(warnings.size(), 1u);

    // Retire removes the journal and its checkpoint artifacts.
    ASSERT_TRUE(
        serve::removeRequestJournal(dir.path, journal.token).ok());
    EXPECT_FALSE(std::filesystem::exists(
        serve::journalPath(dir.path, journal.token)));
}

TEST(ServeDurableTest, DisconnectDetachesAndAttachReplaysBytes)
{
    serve::CampaignSpec spec = longSpec(11);
    std::string expected = referenceCsv(spec);
    ASSERT_FALSE(expected.empty());

    DaemonFixture daemon;
    daemon.start();

    // Submit durable, take the first two streamed points, hang up.
    RawConn first;
    first.connectUnix(daemon.socketPath);
    ASSERT_TRUE(first.send(exec::FrameType::SubmitCampaign,
                           serve::encodeCampaignSpec(spec)));
    exec::Frame frame;
    ASSERT_TRUE(first.readUntil(exec::FrameType::Accepted, frame));
    serve::Accepted accepted;
    ASSERT_TRUE(serve::decodeAccepted(frame.payload, accepted));
    ASSERT_FALSE(accepted.token.empty());
    std::vector<std::string> streamed;
    for (int i = 0; i < 2; ++i) {
        ASSERT_TRUE(
            first.readUntil(exec::FrameType::PointResult, frame));
        streamed.push_back(frame.payload);
    }
    first.close();

    // The request kept running detached — not cancelled.
    RawConn second;
    second.connectUnix(daemon.socketPath);
    ASSERT_TRUE(second.send(
        exec::FrameType::Attach,
        serve::encodeAttachRequest({accepted.token})));
    ASSERT_TRUE(second.readUntil(exec::FrameType::Resumed, frame));
    serve::ResumeInfo info;
    ASSERT_TRUE(serve::decodeResumeInfo(frame.payload, info));
    EXPECT_EQ(info.requestId, accepted.requestId);
    EXPECT_EQ(info.token, accepted.token);

    // Replay prefix is byte-identical to the original stream, and
    // the stream then continues (or replays through) to the Summary.
    std::vector<std::string> replayed;
    serve::Summary summary;
    for (;;) {
        ASSERT_TRUE(second.read(frame));
        if (frame.type == exec::FrameType::PointResult) {
            replayed.push_back(frame.payload);
            continue;
        }
        if (frame.type == exec::FrameType::Summary) {
            ASSERT_TRUE(serve::decodeSummary(frame.payload, summary));
            break;
        }
        ASSERT_EQ(frame.type, exec::FrameType::Progress);
    }
    second.close();

    ASSERT_GE(replayed.size(), streamed.size());
    EXPECT_GE(replayed.size(),
              static_cast<std::size_t>(info.replayPoints));
    for (std::size_t i = 0; i < streamed.size(); ++i)
        EXPECT_EQ(replayed[i], streamed[i]) << "replayed point " << i;

    EXPECT_EQ(summary.requestId, accepted.requestId);
    EXPECT_EQ(summary.outcome, serve::RequestOutcome::Ok);
    EXPECT_EQ(summary.datasetCsv, expected);

    serve::DaemonStats stats = daemon.server->statsSnapshot();
    EXPECT_EQ(stats.requestsCancelled, 0u);
    EXPECT_EQ(stats.requestsReattached, 1u);
    daemon.stop();
}

TEST(ServeDurableTest, UnknownTokenIsRejectedNotFatal)
{
    DaemonFixture daemon;
    daemon.start();

    serve::Client client;
    ASSERT_TRUE(client.connectUnix(daemon.socketPath).ok());
    serve::Client::SubmitResult result;
    std::string bogus = "gst1-" + std::string(32, 'f');
    ASSERT_TRUE(client.attach(bogus, result).ok());
    EXPECT_FALSE(result.accepted);
    EXPECT_EQ(result.rejection.reason,
              serve::RejectReason::UnknownToken);

    // The daemon survived and still serves the same connection's
    // follow-up submit.
    serve::Client::SubmitResult ok_result;
    ASSERT_TRUE(client.submit(smallSpec(5), ok_result).ok());
    ASSERT_TRUE(ok_result.accepted);
    EXPECT_EQ(ok_result.summary.outcome, serve::RequestOutcome::Ok);
    daemon.stop();
}

TEST(ServeDurableTest, IdempotentResubmitCoalescesOntoOneRequest)
{
    serve::CampaignSpec spec = longSpec(23);
    std::string expected = referenceCsv(spec);
    std::string spec_bytes = serve::encodeCampaignSpec(spec);

    DaemonFixture daemon;
    daemon.config.maxActive = 1;
    daemon.start();

    RawConn first;
    first.connectUnix(daemon.socketPath);
    ASSERT_TRUE(first.send(exec::FrameType::SubmitCampaign,
                           spec_bytes));
    exec::Frame frame;
    ASSERT_TRUE(first.readUntil(exec::FrameType::Accepted, frame));
    serve::Accepted original;
    ASSERT_TRUE(serve::decodeAccepted(frame.payload, original));

    // Byte-identical durable re-submit from another connection lands
    // on the same request — same id, same token — and the stream
    // re-binds there (latest wins).
    RawConn second;
    second.connectUnix(daemon.socketPath);
    ASSERT_TRUE(second.send(exec::FrameType::SubmitCampaign,
                            spec_bytes));
    ASSERT_TRUE(second.readUntil(exec::FrameType::Accepted, frame));
    serve::Accepted coalesced;
    ASSERT_TRUE(serve::decodeAccepted(frame.payload, coalesced));
    EXPECT_EQ(coalesced.requestId, original.requestId);
    EXPECT_EQ(coalesced.token, original.token);
    first.close();

    ASSERT_TRUE(second.readUntil(exec::FrameType::Summary, frame));
    serve::Summary summary;
    ASSERT_TRUE(serve::decodeSummary(frame.payload, summary));
    EXPECT_EQ(summary.requestId, original.requestId);
    EXPECT_EQ(summary.outcome, serve::RequestOutcome::Ok);
    EXPECT_EQ(summary.datasetCsv, expected);
    second.close();

    // One campaign ran; the coalesced submit was not a second one.
    // (The Summary frame can reach the client a beat before the loop
    // processes the finish event, so poll rather than assert once.)
    EXPECT_TRUE(eventually([&] {
        return daemon.server->statsSnapshot().requestsServed == 1;
    }));
    daemon.stop();
}

TEST(ServeDurableTest, FinishedRequestSurvivesRestartForLateAttach)
{
    serve::CampaignSpec spec = smallSpec(31);
    std::string expected = referenceCsv(spec);
    ScratchDir journal_dir;
    std::string token;

    {
        DaemonFixture daemon;
        daemon.config.journalDir = journal_dir.path;
        daemon.start();

        // Submit durable and vanish before a single reply frame.
        RawConn conn;
        conn.connectUnix(daemon.socketPath);
        ASSERT_TRUE(conn.send(exec::FrameType::SubmitCampaign,
                              serve::encodeCampaignSpec(spec)));
        exec::Frame frame;
        ASSERT_TRUE(conn.readUntil(exec::FrameType::Accepted, frame));
        serve::Accepted accepted;
        ASSERT_TRUE(serve::decodeAccepted(frame.payload, accepted));
        token = accepted.token;
        conn.close();

        // The detached campaign finishes and settles its journal.
        ASSERT_TRUE(eventually([&] {
            return daemon.server->statsSnapshot().requestsServed == 1;
        }));
        daemon.stop();
    }
    // The daemon is gone; the finished journal is the survivor.
    EXPECT_TRUE(std::filesystem::exists(
        serve::journalPath(journal_dir.path, token)));

    DaemonFixture restarted;
    restarted.config.journalDir = journal_dir.path;
    restarted.start();

    serve::Client client;
    ASSERT_TRUE(client.connectUnix(restarted.socketPath).ok());
    int points = 0;
    serve::Client::Callbacks callbacks;
    callbacks.onPoint = [&](const serve::PointUpdate &) { ++points; };
    serve::Client::SubmitResult result;
    ASSERT_TRUE(client.attach(token, result, callbacks).ok());
    ASSERT_TRUE(result.accepted);
    EXPECT_EQ(result.summary.outcome, serve::RequestOutcome::Ok);
    EXPECT_EQ(result.summary.datasetCsv, expected);
    EXPECT_EQ(points,
              static_cast<int>(result.summary.measuredPoints));
    EXPECT_EQ(restarted.server->statsSnapshot().requestsReattached,
              1u);

    // Delivery retires the journal artifacts.
    EXPECT_TRUE(eventually([&] {
        return !std::filesystem::exists(
            serve::journalPath(journal_dir.path, token));
    }));
    restarted.stop();
}

TEST(ServeDurableTest, UnfinishedJournalIsReadmittedAtBoot)
{
    serve::CampaignSpec spec = smallSpec(37);
    std::string expected = referenceCsv(spec);
    ScratchDir journal_dir;

    // A journal exactly as a killed daemon leaves one: admitted,
    // running, no settled points yet.
    serve::RequestJournal journal;
    journal.requestId = 7;
    journal.token = serve::makeResumeToken(7);
    journal.specBytes = serve::encodeCampaignSpec(spec);
    ASSERT_TRUE(
        serve::saveRequestJournal(journal_dir.path, journal).ok());

    DaemonFixture daemon;
    daemon.config.journalDir = journal_dir.path;
    daemon.start();
    EXPECT_EQ(daemon.server->statsSnapshot().requestsRecovered, 1u);

    // The recovered campaign runs with no client at all; a late
    // attach under the original token gets the full stream.
    serve::Client client;
    ASSERT_TRUE(client.connectUnix(daemon.socketPath).ok());
    serve::Client::SubmitResult result;
    ASSERT_TRUE(client.attach(journal.token, result).ok());
    ASSERT_TRUE(result.accepted);
    EXPECT_EQ(result.requestId, journal.requestId);
    EXPECT_EQ(result.summary.outcome, serve::RequestOutcome::Ok);
    EXPECT_EQ(result.summary.datasetCsv, expected);
    daemon.stop();
}

TEST(ServeDurableTest, RetentionSweepRetiresUnclaimedResults)
{
    DaemonFixture daemon;
    daemon.config.retainFinishedSeconds = 0.0;
    daemon.config.heartbeatSeconds = 0.02;
    daemon.start();

    RawConn conn;
    conn.connectUnix(daemon.socketPath);
    ASSERT_TRUE(conn.send(exec::FrameType::SubmitCampaign,
                          serve::encodeCampaignSpec(smallSpec(41))));
    exec::Frame frame;
    ASSERT_TRUE(conn.readUntil(exec::FrameType::Accepted, frame));
    serve::Accepted accepted;
    ASSERT_TRUE(serve::decodeAccepted(frame.payload, accepted));
    conn.close();

    ASSERT_TRUE(eventually([&] {
        return daemon.server->statsSnapshot().requestsServed == 1;
    }));

    // With zero retention the unclaimed result is swept on the next
    // tick; the token then attaches to nothing.
    EXPECT_TRUE(eventually([&] {
        serve::Client client;
        if (!client.connectUnix(daemon.socketPath).ok())
            return false;
        serve::Client::SubmitResult result;
        if (!client.attach(accepted.token, result).ok())
            return false;
        return !result.accepted &&
               result.rejection.reason ==
                   serve::RejectReason::UnknownToken;
    }));
    daemon.stop();
}

TEST(ServeDurableTest, QueuedRequestsHeartbeatWhileWaiting)
{
    DaemonFixture daemon;
    daemon.config.maxActive = 1;
    daemon.config.heartbeatSeconds = 0.02;
    daemon.start();

    // Occupy the only slot with a long non-durable campaign (so a
    // later hangup frees the slot by cancelling it)...
    serve::CampaignSpec blocker = longSpec(43);
    blocker.durable = false;
    RawConn busy;
    busy.connectUnix(daemon.socketPath);
    ASSERT_TRUE(busy.send(exec::FrameType::SubmitCampaign,
                          serve::encodeCampaignSpec(blocker)));
    exec::Frame frame;
    ASSERT_TRUE(busy.readUntil(exec::FrameType::Accepted, frame));

    // ...so this one queues. The daemon must heartbeat it while it
    // waits — sustained silence is how the self-healing client
    // detects a dead daemon, so waiting must not look like death.
    std::atomic<int> queued_beats{0};
    serve::Client client;
    ASSERT_TRUE(client.connectUnix(daemon.socketPath).ok());
    serve::Client::Callbacks callbacks;
    callbacks.onProgress = [&](const serve::ProgressUpdate &update) {
        if (update.total == 0 && update.completed == 0)
            ++queued_beats;
    };
    serve::Client::SubmitResult result;
    std::thread waiter([&] {
        client.submit(smallSpec(44), result, callbacks);
    });
    EXPECT_TRUE(eventually([&] { return queued_beats.load() >= 2; }));
    busy.close();  // cancels the blocker, freeing the slot
    waiter.join();
    ASSERT_TRUE(result.accepted);
    EXPECT_EQ(result.summary.outcome, serve::RequestOutcome::Ok);
    daemon.stop();
}

TEST(ServeDurableTest, QueryTimesOutAgainstSilentServer)
{
    // A listener that accepts and never replies: the client's I/O
    // timeout must turn that into DeadlineExceeded, not a hang.
    std::string path = freshSocketPath();
    int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(listener, 0);
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::bind(listener,
                     reinterpret_cast<struct sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(listener, 4), 0);

    serve::Client client;
    client.setIoTimeout(0.2);
    ASSERT_TRUE(client.connectUnix(path).ok());
    serve::DaemonStats stats;
    Status status = client.queryStats(stats);
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::DeadlineExceeded);

    ::close(listener);
    ::unlink(path.c_str());
}

TEST(ServeDurableTest, ClientSelfHealsAcrossEndpointOutage)
{
    serve::CampaignSpec spec = smallSpec(53);
    std::string expected = referenceCsv(spec);

    // Phase 1: the client dials a daemon-shaped black hole — it
    // accepts the connection and then says nothing, like a daemon
    // wedged right before being SIGKILLed.
    std::string path = freshSocketPath();
    int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(listener, 0);
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::bind(listener,
                     reinterpret_cast<struct sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(listener, 4), 0);

    serve::Client client;
    serve::Client::ReconnectPolicy policy;
    policy.maxAttempts = 8;
    policy.backoffBaseSeconds = 0.05;
    policy.backoffCapSeconds = 0.2;
    policy.heartbeatTimeoutSeconds = 0.3;
    client.setReconnectPolicy(policy);
    ASSERT_TRUE(client.connectUnix(path).ok());

    serve::Client::SubmitResult result;
    Status submit_status = Status::okStatus();
    std::thread streamer([&] {
        submit_status = client.submit(spec, result);
    });

    // Phase 2: while the client is waiting out the heartbeat
    // timeout, the black hole dies and a real daemon boots on the
    // same path. The client must notice the silence, back off,
    // redial and land the request — all without help.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ::close(listener);
    ::unlink(path.c_str());

    DaemonFixture daemon;
    daemon.config.socketPath = path;
    daemon.socketPath = path;
    daemon.start();

    streamer.join();
    ASSERT_TRUE(submit_status.ok()) << submit_status.toString();
    ASSERT_TRUE(result.accepted);
    EXPECT_GE(result.reconnects, 1u);
    EXPECT_EQ(result.summary.outcome, serve::RequestOutcome::Ok);
    EXPECT_EQ(result.summary.datasetCsv, expected);
    daemon.stop();
}

} // namespace
