/**
 * @file
 * Unit tests for the gem5-style statistics framework.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

using namespace gemstone::stats;

TEST(Stats, ScalarRegistersWithQualifiedName)
{
    Group root;
    Group cpu(root, "system.cpu");
    Scalar cycles(cpu, "numCycles", "total cycles");
    EXPECT_EQ(cycles.name(), "system.cpu.numCycles");
    EXPECT_EQ(cycles.desc(), "total cycles");
}

TEST(Stats, ScalarArithmetic)
{
    Group root;
    Scalar s(root, "counter", "");
    ++s;
    s += 2.5;
    s.inc();
    s.inc(0.5);
    EXPECT_DOUBLE_EQ(s.value(), 5.0);
    s.set(10.0);
    EXPECT_DOUBLE_EQ(s.value(), 10.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, GroupHierarchyPrefixes)
{
    Group root;
    Group system(root, "system");
    Group cpu(system, "cpu");
    Group icache(cpu, "icache");
    Scalar misses(icache, "overall_misses", "");
    EXPECT_EQ(misses.name(), "system.cpu.icache.overall_misses");
}

TEST(Stats, DumpCollectsWholeTree)
{
    Group root;
    Group a(root, "a");
    Group b(root, "b");
    Scalar x(a, "x", "");
    Scalar y(b, "y", "");
    x.inc(3);
    y.inc(7);
    auto dump = root.dump();
    ASSERT_EQ(dump.size(), 2u);
    EXPECT_DOUBLE_EQ(dump.at("a.x"), 3.0);
    EXPECT_DOUBLE_EQ(dump.at("b.y"), 7.0);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    Group root;
    Scalar hits(root, "hits", "");
    Scalar accesses(root, "accesses", "");
    Formula rate(root, "hit_rate", "hits per access", [&]() {
        return hits.value() / accesses.value();
    });
    hits.inc(3);
    accesses.inc(4);
    EXPECT_DOUBLE_EQ(rate.value(), 0.75);
    hits.inc(1);
    EXPECT_DOUBLE_EQ(rate.value(), 1.0);
}

TEST(Stats, FormulaDivisionByZeroDumpsAsZero)
{
    Group root;
    Scalar denom(root, "denom", "");
    Formula bad(root, "bad", "", [&]() {
        return 1.0 / denom.value();  // inf
    });
    auto dump = root.dump();
    EXPECT_DOUBLE_EQ(dump.at("bad"), 0.0);  // sanitised
}

TEST(Stats, ResetAllRecurses)
{
    Group root;
    Group child(root, "child");
    Scalar a(root, "a", "");
    Scalar b(child, "b", "");
    a.inc(5);
    b.inc(6);
    root.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(Stats, WriteTextContainsNamesValuesDescriptions)
{
    Group root;
    Group cpu(root, "cpu");
    Scalar insts(cpu, "committedInsts", "committed instructions");
    insts.inc(42);
    std::ostringstream os;
    root.writeText(os);
    std::string text = os.str();
    EXPECT_NE(text.find("cpu.committedInsts"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
    EXPECT_NE(text.find("committed instructions"),
              std::string::npos);
    EXPECT_NE(text.find("Begin Simulation Statistics"),
              std::string::npos);
}

TEST(Stats, EmptyGroupNamePanics)
{
    Group root;
    EXPECT_DEATH(Group(root, ""), "must not be empty");
}
