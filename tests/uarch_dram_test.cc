/**
 * @file
 * Unit tests for the DRAM model and the event/retiming machinery.
 */

#include <gtest/gtest.h>

#include "uarch/dram.hh"
#include "uarch/events.hh"

using namespace gemstone::uarch;

TEST(Dram, RowHitFasterThanRowMiss)
{
    DramConfig cfg;
    Dram dram(cfg);
    CacheAccessResult first = dram.access(0, false, false);
    CacheAccessResult second = dram.access(64, false, false);
    EXPECT_DOUBLE_EQ(first.dramNs, cfg.rowMissNs);   // row opened
    EXPECT_DOUBLE_EQ(second.dramNs, cfg.rowHitNs);   // same row
    EXPECT_DOUBLE_EQ(first.latency, 0.0);  // all cost is wall-clock
}

TEST(Dram, DifferentRowsMiss)
{
    DramConfig cfg;
    Dram dram(cfg);
    dram.access(0, false, false);
    CacheAccessResult far = dram.access(
        std::uint64_t(cfg.rowBytes) * cfg.banks, false, false);
    EXPECT_DOUBLE_EQ(far.dramNs, cfg.rowMissNs);  // same bank, new row
}

TEST(Dram, BanksTrackIndependentRows)
{
    DramConfig cfg;
    Dram dram(cfg);
    dram.access(0, false, false);                 // bank 0 row 0
    dram.access(cfg.rowBytes, false, false);      // bank 1 row 1
    // Returning to bank 0's open row still hits.
    CacheAccessResult back = dram.access(32, false, false);
    EXPECT_DOUBLE_EQ(back.dramNs, cfg.rowHitNs);
}

TEST(Dram, StatsCountReadsWritesAndRowOutcomes)
{
    DramConfig cfg;
    Dram dram(cfg);
    dram.access(0, false, false);
    dram.access(8, true, false);
    dram.access(cfg.rowBytes * cfg.banks, false, false);
    const DramStats &s = dram.stats();
    EXPECT_EQ(s.reads, 2u);
    EXPECT_EQ(s.writes, 1u);
    EXPECT_EQ(s.rowHits + s.rowMisses, 3u);
    EXPECT_EQ(s.rowMisses, 2u);
}

TEST(Dram, FlushClosesRows)
{
    DramConfig cfg;
    Dram dram(cfg);
    dram.access(0, false, false);
    dram.flush();
    CacheAccessResult after = dram.access(0, false, false);
    EXPECT_DOUBLE_EQ(after.dramNs, cfg.rowMissNs);
}

TEST(Dram, InvalidBankCountFatals)
{
    DramConfig cfg;
    cfg.banks = 3;
    EXPECT_EXIT({ Dram bad(cfg); }, ::testing::ExitedWithCode(1),
                "power of two");
}

// ---------------------------------------------------------------------
// EventCounts
// ---------------------------------------------------------------------

TEST(EventCountsTest, MergeSumsCountsAndMaxesCycles)
{
    EventCounts a;
    a.cycles = 100.0;
    a.instructions = 10;
    a.l1dMisses = 3;
    EventCounts b;
    b.cycles = 250.0;
    b.instructions = 20;
    b.l1dMisses = 4;

    EventCounts total;
    total.merge(a);
    total.merge(b);
    EXPECT_DOUBLE_EQ(total.cycles, 250.0);  // parallel cores: max
    EXPECT_EQ(total.instructions, 30u);     // counts: sum
    EXPECT_EQ(total.l1dMisses, 7u);
}

TEST(EventCountsTest, ToMapRoundTripsKeyFields)
{
    EventCounts e;
    e.cycles = 123.0;
    e.instructions = 456;
    e.branchMispredicts = 7;
    e.dramStallNs = 89.5;
    auto m = e.toMap();
    EXPECT_DOUBLE_EQ(m.at("cycles"), 123.0);
    EXPECT_DOUBLE_EQ(m.at("instructions"), 456.0);
    EXPECT_DOUBLE_EQ(m.at("branchMispredicts"), 7.0);
    EXPECT_DOUBLE_EQ(m.at("dramStallNs"), 89.5);
    EXPECT_GT(m.size(), 50u);  // the record is comprehensive
}

TEST(EventCountsTest, DerivedMetrics)
{
    EventCounts e;
    e.cycles = 200.0;
    e.instructions = 100;
    e.branches = 50;
    e.branchMispredicts = 5;
    EXPECT_DOUBLE_EQ(e.ipc(), 0.5);
    EXPECT_DOUBLE_EQ(e.branchAccuracy(), 0.9);

    EventCounts empty;
    EXPECT_DOUBLE_EQ(empty.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(empty.branchAccuracy(), 1.0);
}
