/**
 * @file
 * Tests of graceful cancellation, deadlines and crash-safe
 * persistence: the Status taxonomy, cooperative scopes, signal
 * handling, the atomic write/recover helpers, checkpoints truncated
 * at every byte offset, and byte-identical campaign resume after a
 * mid-flight interruption.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/taskgraph.hh"
#include "gemstone/campaign.hh"
#include "gemstone/runner.hh"
#include "hwsim/faults.hh"
#include "util/atomicfile.hh"
#include "util/cancellation.hh"
#include "util/csv.hh"
#include "util/logging.hh"
#include "util/signals.hh"
#include "util/status.hh"

using namespace gemstone;
using namespace gemstone::core;

namespace {

constexpr double kFreq = 1000.0;

/** Unique scratch path, removed (with sidecars) on destruction. */
struct ScratchFile
{
    std::string path;
    explicit ScratchFile(const std::string &name)
        : path((std::filesystem::temp_directory_path() /
                name).string())
    {
        cleanup();
    }
    ~ScratchFile() { cleanup(); }
    void
    cleanup() const
    {
        std::filesystem::remove(path);
        std::filesystem::remove(path + ".corrupt");
        std::filesystem::remove(path + ".tmp");
    }
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFileRaw(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
}

ExperimentRunner
makeFaultedRunner()
{
    ExperimentRunner runner{RunnerConfig{}};
    runner.platform().injectFaults(hwsim::FaultConfig::labMix());
    return runner;
}

} // namespace

// ---------------------------------------------------------------------
// Status taxonomy
// ---------------------------------------------------------------------

TEST(StatusTaxonomy, TagsRoundTrip)
{
    for (StatusCode code :
         {StatusCode::Ok, StatusCode::Cancelled,
          StatusCode::DeadlineExceeded, StatusCode::IoError,
          StatusCode::CorruptData, StatusCode::FaultInjected,
          StatusCode::Internal}) {
        StatusCode parsed = StatusCode::Internal;
        ASSERT_TRUE(parseStatusCode(statusCodeTag(code), parsed))
            << statusCodeTag(code);
        EXPECT_EQ(parsed, code);
    }
    StatusCode ignored;
    EXPECT_FALSE(parseStatusCode("segfault", ignored));
}

TEST(StatusTaxonomy, StatusCarriesCodeAndMessage)
{
    EXPECT_TRUE(Status().ok());
    EXPECT_TRUE(Status::okStatus().ok());

    Status failed = Status::error(StatusCode::IoError, "rename lost");
    EXPECT_FALSE(failed.ok());
    EXPECT_EQ(failed.code(), StatusCode::IoError);
    EXPECT_NE(failed.toString().find("io_error"), std::string::npos);
    EXPECT_NE(failed.toString().find("rename lost"),
              std::string::npos);
}

TEST(StatusTaxonomy, StatusErrorUnwindsWithItsCode)
{
    try {
        throw DeadlineError("run overran");
    } catch (const StatusError &e) {
        EXPECT_EQ(e.code(), StatusCode::DeadlineExceeded);
        EXPECT_NE(std::string(e.what()).find("deadline_exceeded"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------
// Cancellation primitives
// ---------------------------------------------------------------------

TEST(Cancellation, TokenCopiesShareOneFlag)
{
    CancellationToken token;
    CancellationToken copy = token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_NO_THROW(copy.throwIfCancelled());

    copy.requestCancel();
    EXPECT_TRUE(token.cancelled());
    EXPECT_THROW(token.throwIfCancelled(), CancelledError);

    // A fresh token is a fresh flag.
    EXPECT_FALSE(CancellationToken().cancelled());
}

TEST(Cancellation, DeadlineExpiry)
{
    EXPECT_FALSE(Deadline().limited());
    EXPECT_FALSE(Deadline().expired());
    EXPECT_NO_THROW(Deadline().throwIfExpired());

    Deadline immediate = Deadline::after(0.0);
    EXPECT_TRUE(immediate.limited());
    EXPECT_TRUE(immediate.expired());
    EXPECT_THROW(immediate.throwIfExpired(), DeadlineError);
    EXPECT_TRUE(Deadline::after(-5.0).expired());

    EXPECT_FALSE(Deadline::after(3600.0).expired());
}

TEST(Cancellation, CoopScopePollsTheWholeChain)
{
    // No scope: a checkpoint is a no-op.
    EXPECT_FALSE(coopScopeActive());
    EXPECT_NO_THROW(coopCheckpoint());

    CancellationToken outer_token;
    {
        CoopScope outer(outer_token, Deadline(), "outer");
        EXPECT_TRUE(coopScopeActive());
        EXPECT_NO_THROW(coopCheckpoint());

        // An inner inert scope must not mask the outer armed one.
        outer_token.requestCancel();
        CoopScope inner(CancellationToken(), Deadline(), "inner");
        EXPECT_THROW(coopCheckpoint(), CancelledError);
    }
    EXPECT_FALSE(coopScopeActive());
    EXPECT_NO_THROW(coopCheckpoint());

    {
        CoopScope timed(CancellationToken(), Deadline::after(0.0),
                        "timed");
        EXPECT_THROW(coopCheckpoint(), DeadlineError);
    }
}

TEST(Cancellation, SignalHandlerCancelsTheToken)
{
    EXPECT_EQ(kExitCancelled, 130);
    EXPECT_EQ(kExitDeadline, 124);

    CancellationToken token;
    installSignalCancellation(token);
    EXPECT_FALSE(token.cancelled());

    // One signal requests graceful cancellation. (A second would
    // _exit the process, so this test raises exactly once.)
    ASSERT_EQ(std::raise(SIGTERM), 0);
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(cancellationSignalCount(), 1u);
}

TEST(Cancellation, FatalHandlerThrowsUnderTest)
{
    setFatalThrows(true);
    EXPECT_THROW(fatal("synthetic fatal"), FatalError);
    try {
        fatal("synthetic fatal message");
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("synthetic fatal"),
                  std::string::npos);
    }
    setFatalThrows(false);
}

// ---------------------------------------------------------------------
// Crash-safe persistence
// ---------------------------------------------------------------------

TEST(AtomicFile, WritesContentAndMarker)
{
    ScratchFile file("gs_atomicfile_test.txt");

    ASSERT_TRUE(atomicWriteFile(file.path, "alpha\nbeta\n").ok());
    EXPECT_EQ(readFile(file.path), "alpha\nbeta\n");
    EXPECT_FALSE(std::filesystem::exists(file.path + ".tmp"));

    // Overwrite with a marker; the marker becomes the last line.
    ASSERT_TRUE(atomicWriteFile(file.path, "gamma\n",
                                kCsvIntegrityMarker).ok());
    EXPECT_EQ(readFile(file.path),
              std::string("gamma\n") + kCsvIntegrityMarker + "\n");
}

TEST(AtomicFile, ReportsIoErrorsAsStatus)
{
    Status status = atomicWriteFile(
        "/nonexistent-dir-gemstone/impossible.txt", "x");
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::IoError);
}

TEST(AtomicFile, RecoverCsvTailQuarantinesPartialRecord)
{
    ScratchFile file("gs_recover_tail_test.csv");

    // A missing file recovers to nothing.
    Result<TailRecovery> missing = recoverCsvTail(file.path);
    ASSERT_TRUE(missing.ok());
    EXPECT_FALSE(missing.value().recovered);

    const std::string good = "a,b\n1,2\n3,4\n";
    writeFileRaw(file.path, good + "5,\"torn in ha");
    Result<TailRecovery> torn = recoverCsvTail(file.path);
    ASSERT_TRUE(torn.ok());
    EXPECT_TRUE(torn.value().recovered);
    EXPECT_EQ(torn.value().quarantinedBytes,
              std::string("5,\"torn in ha").size());
    EXPECT_EQ(readFile(file.path), good);
    // The sidecar holds the quarantined bytes, newline-terminated
    // (it is an append-mode log across recoveries).
    EXPECT_EQ(readFile(torn.value().corruptPath), "5,\"torn in ha\n");

    // Idempotent: the recovered file has nothing left to quarantine.
    Result<TailRecovery> again = recoverCsvTail(file.path);
    ASSERT_TRUE(again.ok());
    EXPECT_FALSE(again.value().recovered);
    EXPECT_EQ(readFile(file.path), good);
}

TEST(AtomicFile, TruncationAtEveryByteOffsetIsRecoverable)
{
    ScratchFile file("gs_truncate_every_offset_test.csv");

    // Quoted commas and a quoted embedded newline: the recovery scan
    // must not mistake either for a record boundary.
    const std::string document =
        "workload,note,value\n"
        "mi-crc32,\"plain\",1.25\n"
        "mi-dijkstra,\"commas, inside\",2.5\n"
        "mi-sha,\"line\nbreak\",3.75\n"
        "mi-fft,last,4\n";

    CsvReader original = [&] {
        writeFileRaw(file.path, document);
        return CsvReader::parseFile(file.path);
    }();
    ASSERT_TRUE(original.ok());
    ASSERT_EQ(original.rowCount(), 4u);

    for (std::size_t cut = 0; cut <= document.size(); ++cut) {
        writeFileRaw(file.path, document.substr(0, cut));
        std::filesystem::remove(file.path + ".corrupt");

        Result<TailRecovery> recovery = recoverCsvTail(file.path);
        ASSERT_TRUE(recovery.ok()) << "cut at byte " << cut;

        // Whatever survives must parse cleanly and be an exact row
        // prefix of the uncut document.
        std::string survivor = readFile(file.path);
        if (survivor.empty())
            continue;
        CsvReader reader = CsvReader::parseFile(file.path);
        ASSERT_TRUE(reader.ok())
            << "cut at byte " << cut << ": "
            << (reader.errors().empty()
                    ? std::string("?")
                    : reader.errors()[0].message);
        ASSERT_LE(reader.rowCount(), original.rowCount());
        for (std::size_t i = 0; i < reader.rowCount(); ++i)
            EXPECT_EQ(reader.row(i), original.row(i))
                << "cut at byte " << cut << ", row " << i;

        // Nothing silently dropped: the quarantined bytes plus the
        // surviving bytes reassemble the truncated input (modulo the
        // sidecar's newline terminator).
        if (recovery.value().recovered) {
            std::string tail = document.substr(survivor.size(), cut -
                                               survivor.size());
            std::string expected = tail;
            if (expected.empty() || expected.back() != '\n')
                expected += '\n';
            EXPECT_EQ(readFile(recovery.value().corruptPath),
                      expected)
                << "cut at byte " << cut;
        }
    }
}

TEST(AtomicFile, CsvReaderToleratesTruncatedFinalRow)
{
    // Under header arity at EOF: a torn append, not a dead document.
    std::istringstream torn("a,b\n1,2\n3");
    CsvReader reader = CsvReader::parse(torn);
    EXPECT_TRUE(reader.ok());
    EXPECT_TRUE(reader.hasTruncatedTail());
    EXPECT_FALSE(reader.sawIntegrityMarker());
    ASSERT_EQ(reader.rowCount(), 1u);
    EXPECT_EQ(reader.cell(0, "a"), "1");

    // The same arity problem on an interior row is still an error.
    std::istringstream interior("a,b\n3\n1,2\n");
    EXPECT_FALSE(CsvReader::parse(interior).ok());

    // A complete document carrying the marker reports it.
    std::istringstream marked(std::string("a,b\n1,2\n") +
                              kCsvIntegrityMarker + "\n");
    CsvReader complete = CsvReader::parse(marked);
    EXPECT_TRUE(complete.ok());
    EXPECT_TRUE(complete.sawIntegrityMarker());
    EXPECT_FALSE(complete.hasTruncatedTail());
    EXPECT_EQ(complete.rowCount(), 1u);
}

// ---------------------------------------------------------------------
// Campaign cancellation, deadlines and resume
// ---------------------------------------------------------------------

TEST(CancelCampaign, AbandonedNodesAreCancelledNotSucceeded)
{
    // A node reached after the token trips is abandoned without
    // running. It must not report success: the campaign gather
    // relies on succeeded() to decide whether a point's checkpoint
    // row was actually written.
    CancellationToken token;
    exec::TaskGraph graph;
    bool ran_second = false;
    exec::TaskGraph::NodeId first = graph.add(
        "first", [&token] { token.requestCancel(); });
    exec::TaskGraph::NodeId second = graph.add(
        "second", [&ran_second] { ran_second = true; }, {first});
    EXPECT_THROW(graph.runSerial(token), CancelledError);
    EXPECT_FALSE(ran_second);
    EXPECT_TRUE(graph.succeeded(first));
    EXPECT_FALSE(graph.succeeded(second));
    EXPECT_TRUE(graph.cancelled(second));
    EXPECT_FALSE(graph.skipped(second));
}

TEST(CancelCampaign, PreCancelledTokenAbandonsEveryPoint)
{
    ScratchFile checkpoint("gs_cancel_precancelled_test.csv");

    CampaignConfig policy;
    policy.checkpointPath = checkpoint.path;
    policy.cancel.requestCancel();

    ExperimentRunner runner{RunnerConfig{}};
    CampaignResult result =
        CampaignEngine(runner, policy)
            .runValidation(hwsim::CpuCluster::BigA15, {kFreq});

    EXPECT_TRUE(result.cancelled);
    EXPECT_FALSE(result.complete);
    EXPECT_EQ(result.measuredPoints, 0u);
    EXPECT_EQ(result.cancelledPoints, result.points.size());
    EXPECT_TRUE(result.dataset.records.empty());
    for (const CampaignPoint &point : result.points) {
        EXPECT_EQ(point.status, PointStatus::Cancelled);
        EXPECT_EQ(point.lastError, StatusCode::Cancelled);
    }
}

TEST(CancelCampaign, InterruptedCampaignResumesByteIdentical)
{
    // The reference: one uninterrupted faulted campaign.
    CampaignConfig reference_policy;
    ExperimentRunner reference_runner = makeFaultedRunner();
    const std::string reference_csv =
        CampaignEngine(reference_runner, reference_policy)
            .runValidation(hwsim::CpuCluster::BigA15, {kFreq})
            .dataset.toCsv();

    // Interrupt mid-flight via the token (the SIGTERM path), then
    // resume from the checkpoint: the collated dataset must be
    // byte-identical wherever the interrupt landed, serial and
    // threaded alike.
    for (unsigned jobs : {1u, 4u}) {
        ScratchFile checkpoint("gs_cancel_resume_test.csv");
        CampaignConfig policy;
        policy.checkpointPath = checkpoint.path;
        policy.jobs = jobs;

        CampaignConfig interrupted = policy;
        CancellationToken token;
        interrupted.cancel = token;
        std::thread watchdog([token]() mutable {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
            token.requestCancel();
        });
        ExperimentRunner first = makeFaultedRunner();
        CampaignResult partial =
            CampaignEngine(first, interrupted)
                .runValidation(hwsim::CpuCluster::BigA15, {kFreq});
        watchdog.join();

        if (partial.cancelledPoints > 0) {
            EXPECT_TRUE(partial.cancelled) << "jobs " << jobs;
            EXPECT_FALSE(partial.complete) << "jobs " << jobs;
        }

        ExperimentRunner second = makeFaultedRunner();
        CampaignResult resumed =
            CampaignEngine(second, policy)
                .runValidation(hwsim::CpuCluster::BigA15, {kFreq});

        EXPECT_TRUE(resumed.complete) << "jobs " << jobs;
        EXPECT_EQ(resumed.resumedPoints,
                  partial.measuredPoints + partial.resumedPoints)
            << "jobs " << jobs;
        EXPECT_EQ(resumed.dataset.toCsv(), reference_csv)
            << "jobs " << jobs;
    }
}

TEST(CancelCampaign, CheckpointTruncatedAtArbitraryOffsetsResumes)
{
    ScratchFile checkpoint("gs_cancel_truncate_resume_test.csv");

    // The reference collated dataset, uninterrupted and faulted.
    CampaignConfig plain;
    ExperimentRunner reference_runner = makeFaultedRunner();
    const std::string reference_csv =
        CampaignEngine(reference_runner, plain)
            .runValidation(hwsim::CpuCluster::BigA15, {kFreq})
            .dataset.toCsv();

    // A partial campaign leaves a real checkpoint to mutilate.
    CampaignConfig partial;
    partial.checkpointPath = checkpoint.path;
    partial.maxPoints = 8;
    ExperimentRunner first = makeFaultedRunner();
    CampaignResult before =
        CampaignEngine(first, partial)
            .runValidation(hwsim::CpuCluster::BigA15, {kFreq});
    ASSERT_FALSE(before.complete);
    const std::string intact = readFile(checkpoint.path);
    ASSERT_FALSE(intact.empty());

    // Truncate the checkpoint at offsets spanning the whole file —
    // inside the header, on and off row boundaries, inside the
    // integrity marker — and resume each time: every resume must
    // quarantine the damage and still collate the reference dataset
    // byte for byte.
    std::vector<std::size_t> cuts = {0, 1, intact.size() / 4,
                                     intact.size() / 2,
                                     (3 * intact.size()) / 4,
                                     intact.size() - 2,
                                     intact.size()};
    for (std::size_t cut : cuts) {
        writeFileRaw(checkpoint.path, intact.substr(0, cut));
        std::filesystem::remove(checkpoint.path + ".corrupt");

        CampaignConfig policy;
        policy.checkpointPath = checkpoint.path;
        ExperimentRunner runner = makeFaultedRunner();
        CampaignResult resumed =
            CampaignEngine(runner, policy)
                .runValidation(hwsim::CpuCluster::BigA15, {kFreq});

        EXPECT_TRUE(resumed.complete) << "cut at byte " << cut;
        EXPECT_LE(resumed.resumedPoints, before.points.size())
            << "cut at byte " << cut;
        EXPECT_EQ(resumed.dataset.toCsv(), reference_csv)
            << "cut at byte " << cut;
    }
}

TEST(CancelCampaign, AttemptDeadlineFeedsRetryMachinery)
{
    CampaignConfig policy;
    policy.quorum = 1;
    policy.maxAttempts = 2;
    policy.attemptDeadlineSeconds = 1e-9;  // expires at the first poll

    ExperimentRunner runner{RunnerConfig{}};
    CampaignResult result =
        CampaignEngine(runner, policy)
            .runValidation(hwsim::CpuCluster::BigA15, {kFreq});

    // Every attempt overruns: the deadline is absorbed like a run
    // fault — attempts burned, backoff ledgered, points excluded —
    // and attributed as deadline_exceeded, not fault_injected.
    EXPECT_TRUE(result.complete);
    EXPECT_FALSE(result.cancelled);
    EXPECT_TRUE(result.dataset.records.empty());
    ASSERT_EQ(result.points.size(), 45u);
    EXPECT_EQ(result.totalAttempts, 45u * policy.maxAttempts);
    EXPECT_EQ(result.totalDeadlineFailures, result.totalFailures);
    EXPECT_GT(result.backoffSeconds, 0.0);
    for (const CampaignPoint &point : result.points) {
        EXPECT_EQ(point.status, PointStatus::Failed);
        EXPECT_EQ(point.lastError, StatusCode::DeadlineExceeded);
        EXPECT_EQ(point.deadlineFailures, policy.maxAttempts);
    }
}

TEST(CancelCampaign, RunnerDeadlineUnwindsValidation)
{
    RunnerConfig config;
    config.runDeadlineSeconds = 1e-9;
    ExperimentRunner runner(config);
    EXPECT_THROW(
        runner.runValidation(hwsim::CpuCluster::BigA15, {kFreq}),
        DeadlineError);

    RunnerConfig cancelled_config;
    cancelled_config.cancel.requestCancel();
    ExperimentRunner cancelled_runner(cancelled_config);
    EXPECT_THROW(cancelled_runner.runValidation(
                     hwsim::CpuCluster::BigA15, {kFreq}),
                 CancelledError);
}
