/**
 * @file
 * Unit and property tests for the statistics toolkit.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "mlstat/correlation.hh"
#include "mlstat/descriptive.hh"
#include "mlstat/distributions.hh"
#include "mlstat/hca.hh"
#include "mlstat/ols.hh"
#include "mlstat/robust.hh"
#include "mlstat/stepwise.hh"
#include "util/random.hh"

using namespace gemstone;
using namespace gemstone::mlstat;

// ---------------------------------------------------------------------
// Descriptive statistics
// ---------------------------------------------------------------------

TEST(Descriptive, MeanAndStddev)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 1e-3);
    EXPECT_DOUBLE_EQ(stddev({5}), 0.0);
}

TEST(Descriptive, Median)
{
    EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Descriptive, MinMax)
{
    EXPECT_DOUBLE_EQ(minValue({3, -1, 2}), -1.0);
    EXPECT_DOUBLE_EQ(maxValue({3, -1, 2}), 3.0);
    EXPECT_EQ(argMin({3.0, -1.0, 2.0}), 1u);
    EXPECT_EQ(argMax({3.0, -1.0, 2.0}), 0u);
}

TEST(Descriptive, PercentErrorSignConvention)
{
    // Estimate above reference (overestimated execution time) must be
    // negative, matching the paper's MPE convention.
    EXPECT_LT(percentError(1.0, 1.5), 0.0);
    EXPECT_GT(percentError(1.0, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(percentError(2.0, 2.0), 0.0);
}

TEST(Descriptive, PercentErrorZeroReferencePanics)
{
    EXPECT_DEATH(percentError(0.0, 1.0), "zero reference");
}

TEST(Descriptive, MapeGreaterEqualAbsMpe)
{
    std::vector<double> ref = {1, 2, 3, 4};
    std::vector<double> est = {1.5, 1.5, 3.5, 3.8};
    EXPECT_GE(meanAbsPercentError(ref, est),
              std::fabs(meanPercentError(ref, est)));
}

TEST(Descriptive, MpeIdentityWhenEqual)
{
    std::vector<double> v = {1, 2, 3};
    EXPECT_DOUBLE_EQ(meanPercentError(v, v), 0.0);
    EXPECT_DOUBLE_EQ(meanAbsPercentError(v, v), 0.0);
}

TEST(Descriptive, ZscoreMoments)
{
    std::vector<double> z = zscore({1, 2, 3, 4, 5});
    EXPECT_NEAR(mean(z), 0.0, 1e-12);
    EXPECT_NEAR(stddev(z), 1.0, 1e-12);
}

TEST(Descriptive, ZscoreConstantIsZero)
{
    std::vector<double> z = zscore({4, 4, 4});
    for (double v : z)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

// ---------------------------------------------------------------------
// Distributions
// ---------------------------------------------------------------------

TEST(Distributions, IncompleteBetaEndpoints)
{
    EXPECT_DOUBLE_EQ(incompleteBeta(2, 3, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(incompleteBeta(2, 3, 1.0), 1.0);
}

TEST(Distributions, IncompleteBetaSymmetricCase)
{
    // I_{0.5}(a, a) = 0.5 by symmetry.
    EXPECT_NEAR(incompleteBeta(2, 2, 0.5), 0.5, 1e-10);
    EXPECT_NEAR(incompleteBeta(5, 5, 0.5), 0.5, 1e-10);
}

TEST(Distributions, IncompleteBetaKnownValue)
{
    // I_x(1, b) = 1 - (1-x)^b.
    EXPECT_NEAR(incompleteBeta(1, 3, 0.2),
                1.0 - std::pow(0.8, 3), 1e-10);
}

TEST(Distributions, StudentTCdfSymmetry)
{
    EXPECT_NEAR(studentTCdf(0.0, 10.0), 0.5, 1e-12);
    EXPECT_NEAR(studentTCdf(1.5, 8.0) + studentTCdf(-1.5, 8.0), 1.0,
                1e-10);
}

TEST(Distributions, StudentTKnownQuantile)
{
    // For df=10, P(T < 2.228) ~ 0.975 (classic t-table value).
    EXPECT_NEAR(studentTCdf(2.228, 10.0), 0.975, 1e-3);
}

TEST(Distributions, TwoSidedPValue)
{
    // p-value at the 97.5% quantile is 0.05.
    EXPECT_NEAR(twoSidedPValue(2.228, 10.0), 0.05, 1e-3);
    EXPECT_NEAR(twoSidedPValue(0.0, 10.0), 1.0, 1e-12);
    EXPECT_LT(twoSidedPValue(10.0, 10.0), 1e-5);
}

TEST(Distributions, NormalCdf)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.96), 0.975, 1e-3);
    EXPECT_NEAR(normalCdf(-1.96), 0.025, 1e-3);
}

// ---------------------------------------------------------------------
// Correlation
// ---------------------------------------------------------------------

TEST(Correlation, PerfectPositiveAndNegative)
{
    std::vector<double> x = {1, 2, 3, 4};
    std::vector<double> y = {2, 4, 6, 8};
    std::vector<double> z = {8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Correlation, ConstantSeriesIsZero)
{
    EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(Correlation, BoundedByOne)
{
    Rng rng(3);
    std::vector<double> x(100);
    std::vector<double> y(100);
    for (int i = 0; i < 100; ++i) {
        x[i] = rng.gaussian();
        y[i] = rng.gaussian();
    }
    double r = pearson(x, y);
    EXPECT_LE(std::fabs(r), 1.0);
    EXPECT_LT(std::fabs(r), 0.3);  // independent draws
}

TEST(Correlation, MatrixDiagonalIsOne)
{
    std::vector<std::vector<double>> series = {
        {1, 2, 3, 4}, {4, 3, 2, 1}, {1, 3, 2, 4}};
    linalg::Matrix r = correlationMatrix(series);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(r.at(i, i), 1.0);
    EXPECT_DOUBLE_EQ(r.at(0, 1), r.at(1, 0));
}

TEST(Correlation, CorrelateAgainst)
{
    std::vector<std::vector<double>> series = {{1, 2, 3}, {3, 2, 1}};
    std::vector<double> target = {10, 20, 30};
    auto r = correlateAgainst(series, target);
    EXPECT_NEAR(r[0], 1.0, 1e-12);
    EXPECT_NEAR(r[1], -1.0, 1e-12);
}

// ---------------------------------------------------------------------
// OLS
// ---------------------------------------------------------------------

TEST(Ols, RecoversCoefficients)
{
    Rng rng(23);
    constexpr int n = 300;
    std::vector<double> a(n);
    std::vector<double> b(n);
    std::vector<double> y(n);
    for (int i = 0; i < n; ++i) {
        a[i] = rng.gaussian();
        b[i] = rng.gaussian();
        y[i] = 4.0 + 1.5 * a[i] - 2.5 * b[i] +
            0.05 * rng.gaussian();
    }
    OlsResult fit = fitOls({a, b}, y, true);
    ASSERT_TRUE(fit.ok);
    EXPECT_NEAR(fit.beta[0], 4.0, 0.02);
    EXPECT_NEAR(fit.beta[1], 1.5, 0.02);
    EXPECT_NEAR(fit.beta[2], -2.5, 0.02);
    EXPECT_GT(fit.r2, 0.99);
    EXPECT_GT(fit.adjustedR2, 0.99);
    EXPECT_NEAR(fit.ser, 0.05, 0.01);
}

TEST(Ols, SignificantPredictorsHaveSmallPValues)
{
    Rng rng(29);
    constexpr int n = 200;
    std::vector<double> real_pred(n);
    std::vector<double> noise_pred(n);
    std::vector<double> y(n);
    for (int i = 0; i < n; ++i) {
        real_pred[i] = rng.gaussian();
        noise_pred[i] = rng.gaussian();
        y[i] = 3.0 * real_pred[i] + rng.gaussian();
    }
    OlsResult fit = fitOls({real_pred, noise_pred}, y, true);
    ASSERT_TRUE(fit.ok);
    EXPECT_LT(fit.pValues[1], 1e-6);   // real predictor
    EXPECT_GT(fit.pValues[2], 0.01);   // pure noise
}

TEST(Ols, PredictMatchesFitted)
{
    std::vector<double> x = {1, 2, 3, 4, 5};
    std::vector<double> y = {2, 4, 6, 8, 10};
    OlsResult fit = fitOls({x}, y, true);
    ASSERT_TRUE(fit.ok);
    EXPECT_NEAR(fit.predict({6.0}), 12.0, 1e-9);
}

TEST(Ols, PredictWrongArityPanics)
{
    OlsResult fit = fitOls({{1, 2, 3, 4}}, {1, 2, 3, 4}, true);
    ASSERT_TRUE(fit.ok);
    EXPECT_DEATH(fit.predict({1.0, 2.0}), "predictors");
}

TEST(Ols, TooFewObservationsFails)
{
    OlsResult fit = fitOls({{1.0, 2.0}}, {1.0, 2.0}, true);
    EXPECT_FALSE(fit.ok);
}

TEST(Ols, NoInterceptPassesThroughOrigin)
{
    std::vector<double> x = {1, 2, 3};
    std::vector<double> y = {3, 6, 9};
    OlsResult fit = fitOls({x}, y, false);
    ASSERT_TRUE(fit.ok);
    ASSERT_EQ(fit.beta.size(), 1u);
    EXPECT_NEAR(fit.beta[0], 3.0, 1e-9);
}

TEST(Ols, VifDetectsCollinearity)
{
    Rng rng(31);
    constexpr int n = 100;
    std::vector<double> a(n);
    std::vector<double> near_copy(n);
    std::vector<double> indep(n);
    for (int i = 0; i < n; ++i) {
        a[i] = rng.gaussian();
        near_copy[i] = a[i] + 0.01 * rng.gaussian();
        indep[i] = rng.gaussian();
    }
    auto vif = varianceInflation({a, near_copy, indep});
    EXPECT_GT(vif[0], 100.0);
    EXPECT_GT(vif[1], 100.0);
    EXPECT_LT(vif[2], 2.0);
}

TEST(Ols, VifSinglePredictorIsOne)
{
    auto vif = varianceInflation({{1, 2, 3}});
    ASSERT_EQ(vif.size(), 1u);
    EXPECT_DOUBLE_EQ(vif[0], 1.0);
}

// ---------------------------------------------------------------------
// Stepwise selection
// ---------------------------------------------------------------------

namespace {

std::vector<Candidate>
syntheticCandidates(Rng &rng, std::size_t pool, std::size_t n)
{
    std::vector<Candidate> candidates(pool);
    for (std::size_t c = 0; c < pool; ++c) {
        candidates[c].name = "c" + std::to_string(c);
        candidates[c].values.resize(n);
        for (double &v : candidates[c].values)
            v = rng.gaussian();
    }
    return candidates;
}

} // namespace

TEST(Stepwise, FindsTruePredictors)
{
    Rng rng(37);
    constexpr std::size_t n = 120;
    auto candidates = syntheticCandidates(rng, 30, n);
    std::vector<double> response(n);
    for (std::size_t i = 0; i < n; ++i) {
        response[i] = 2.0 * candidates[4].values[i] -
            1.0 * candidates[17].values[i] + 0.05 * rng.gaussian();
    }
    StepwiseResult result = stepwiseForward(candidates, response);
    ASSERT_GE(result.selected.size(), 2u);
    EXPECT_EQ(result.names[0], "c4");  // strongest first
    bool found_c17 = false;
    for (const std::string &name : result.names)
        found_c17 |= name == "c17";
    EXPECT_TRUE(found_c17);
    EXPECT_GT(result.fit.r2, 0.99);
}

TEST(Stepwise, RespectsExclusionList)
{
    Rng rng(41);
    constexpr std::size_t n = 80;
    auto candidates = syntheticCandidates(rng, 10, n);
    std::vector<double> response(n);
    for (std::size_t i = 0; i < n; ++i)
        response[i] = candidates[2].values[i] + 0.1 * rng.gaussian();

    StepwiseConfig config;
    config.excluded.insert("c2");
    StepwiseResult result =
        stepwiseForward(candidates, response, config);
    for (const std::string &name : result.names)
        EXPECT_NE(name, "c2");
}

TEST(Stepwise, RespectsMaxTerms)
{
    Rng rng(43);
    constexpr std::size_t n = 100;
    auto candidates = syntheticCandidates(rng, 20, n);
    std::vector<double> response(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t c = 0; c < 8; ++c)
            response[i] += candidates[c].values[i];
    }
    StepwiseConfig config;
    config.maxTerms = 3;
    StepwiseResult result =
        stepwiseForward(candidates, response, config);
    EXPECT_LE(result.selected.size(), 3u);
}

TEST(Stepwise, R2TrajectoryMonotone)
{
    Rng rng(47);
    constexpr std::size_t n = 100;
    auto candidates = syntheticCandidates(rng, 15, n);
    std::vector<double> response(n);
    for (std::size_t i = 0; i < n; ++i) {
        response[i] = candidates[0].values[i] +
            0.7 * candidates[5].values[i] +
            0.4 * candidates[9].values[i] + 0.2 * rng.gaussian();
    }
    StepwiseResult result = stepwiseForward(candidates, response);
    for (std::size_t i = 1; i < result.r2Trajectory.size(); ++i)
        EXPECT_GE(result.r2Trajectory[i], result.r2Trajectory[i - 1]);
}

TEST(Stepwise, PureNoiseSelectsLittle)
{
    Rng rng(53);
    constexpr std::size_t n = 100;
    auto candidates = syntheticCandidates(rng, 20, n);
    std::vector<double> response(n);
    for (double &v : response)
        v = rng.gaussian();
    StepwiseResult result = stepwiseForward(candidates, response);
    // The p-value stop rule should keep the model very small.
    EXPECT_LE(result.selected.size(), 3u);
}

// ---------------------------------------------------------------------
// HCA
// ---------------------------------------------------------------------

TEST(Hca, TwoBlobsSeparate)
{
    Rng rng(59);
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 10; ++i)
        points.push_back({rng.gaussian(0.0, 0.1),
                          rng.gaussian(0.0, 0.1)});
    for (int i = 0; i < 10; ++i)
        points.push_back({rng.gaussian(10.0, 0.1),
                          rng.gaussian(10.0, 0.1)});

    HcaResult hca = agglomerate(
        euclideanDistances(points, false), Linkage::Average);
    std::vector<std::size_t> labels = hca.cutToClusters(2);
    for (int i = 1; i < 10; ++i)
        EXPECT_EQ(labels[i], labels[0]);
    for (int i = 11; i < 20; ++i)
        EXPECT_EQ(labels[i], labels[10]);
    EXPECT_NE(labels[0], labels[10]);
}

TEST(Hca, LeafOrderIsPermutation)
{
    Rng rng(61);
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 17; ++i)
        points.push_back({rng.gaussian(), rng.gaussian()});
    HcaResult hca = agglomerate(euclideanDistances(points, false));
    std::vector<std::size_t> order = hca.leafOrder();
    ASSERT_EQ(order.size(), 17u);
    std::vector<bool> seen(17, false);
    for (std::size_t leaf : order) {
        ASSERT_LT(leaf, 17u);
        EXPECT_FALSE(seen[leaf]);
        seen[leaf] = true;
    }
}

TEST(Hca, CutProducesRequestedClusterCount)
{
    Rng rng(67);
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 20; ++i)
        points.push_back({rng.gaussian(), rng.gaussian()});
    HcaResult hca = agglomerate(euclideanDistances(points, false));
    for (std::size_t k : {1u, 2u, 5u, 20u}) {
        std::vector<std::size_t> labels = hca.cutToClusters(k);
        std::set<std::size_t> distinct(labels.begin(), labels.end());
        EXPECT_EQ(distinct.size(), k);
        // Labels must be 1..k.
        for (std::size_t label : distinct) {
            EXPECT_GE(label, 1u);
            EXPECT_LE(label, k);
        }
    }
}

TEST(Hca, MergeHeightsNondecreasingAverageLinkage)
{
    Rng rng(71);
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 25; ++i)
        points.push_back({rng.gaussian(), rng.gaussian(),
                          rng.gaussian()});
    HcaResult hca = agglomerate(euclideanDistances(points, false),
                                Linkage::Average);
    for (std::size_t m = 1; m < hca.merges.size(); ++m)
        EXPECT_GE(hca.merges[m].height,
                  hca.merges[m - 1].height - 1e-9);
}

TEST(Hca, SingleLeafTrivial)
{
    HcaResult hca =
        agglomerate(euclideanDistances({{1.0, 2.0}}, false));
    EXPECT_EQ(hca.leafCount, 1u);
    EXPECT_TRUE(hca.merges.empty());
    EXPECT_EQ(hca.cutToClusters(1)[0], 1u);
}

TEST(Hca, CutAtHeightExtremes)
{
    std::vector<std::vector<double>> points = {
        {0.0}, {0.1}, {10.0}, {10.1}};
    HcaResult hca = agglomerate(euclideanDistances(points, false),
                                Linkage::Single);
    // Below the smallest merge distance: every leaf its own cluster.
    auto fine = hca.cutAtHeight(0.01);
    std::set<std::size_t> fine_set(fine.begin(), fine.end());
    EXPECT_EQ(fine_set.size(), 4u);
    // Above the largest: one cluster.
    auto coarse = hca.cutAtHeight(100.0);
    std::set<std::size_t> coarse_set(coarse.begin(), coarse.end());
    EXPECT_EQ(coarse_set.size(), 1u);
}

TEST(Hca, CorrelationDistanceIgnoresSign)
{
    std::vector<std::vector<double>> series = {
        {1, 2, 3, 4}, {-1, -2, -3, -4}, {4, 1, 3, 2}};
    linalg::Matrix d = correlationDistances(series);
    // Perfectly anti-correlated series have distance 0 (1 - |r|).
    EXPECT_NEAR(d.at(0, 1), 0.0, 1e-12);
    EXPECT_GT(d.at(0, 2), 0.1);
}

TEST(Hca, CompleteVsSingleLinkage)
{
    // A chain of points: single linkage merges the chain cheaply,
    // complete linkage pays the full diameter.
    std::vector<std::vector<double>> points = {
        {0.0}, {1.0}, {2.0}, {3.0}};
    HcaResult single = agglomerate(
        euclideanDistances(points, false), Linkage::Single);
    HcaResult complete = agglomerate(
        euclideanDistances(points, false), Linkage::Complete);
    EXPECT_LE(single.merges.back().height,
              complete.merges.back().height);
}

// ---------------------------------------------------------------------
// Robust statistics (src/mlstat/robust.hh)
// ---------------------------------------------------------------------

TEST(Robust, MadKnownVector)
{
    // {1,1,2,2,4,6,9}: median 2, |x - 2| = {1,1,0,0,2,4,7}, MAD 1.
    std::vector<double> v = {1, 1, 2, 2, 4, 6, 9};
    EXPECT_DOUBLE_EQ(mad(v, false), 1.0);
    EXPECT_DOUBLE_EQ(mad(v, true), 1.4826);
    EXPECT_DOUBLE_EQ(mad({5.0}, true), 0.0);
    EXPECT_DOUBLE_EQ(mad({}, true), 0.0);
}

TEST(Robust, MadSurvivesGrossOutlier)
{
    // One corrupted sample moves the stddev by orders of magnitude
    // but barely touches the MAD — the whole point of using it.
    std::vector<double> clean = {10.0, 10.1, 9.9, 10.05, 9.95};
    std::vector<double> dirty = clean;
    dirty.push_back(1000.0);
    EXPECT_GT(stddev(dirty), 100.0);
    EXPECT_LT(mad(dirty), 0.5);
}

TEST(Robust, MadOutlierMaskFlagsOnlyTheSpike)
{
    std::vector<double> v = {1.0, 1.02, 0.98, 1.01, 0.99, 5.0};
    std::vector<bool> mask = madOutlierMask(v, 3.5);
    ASSERT_EQ(mask.size(), v.size());
    for (std::size_t i = 0; i + 1 < v.size(); ++i)
        EXPECT_FALSE(mask[i]) << "sample " << i << " wrongly flagged";
    EXPECT_TRUE(mask.back());
}

TEST(Robust, ZeroMadFlagsNothing)
{
    // Over half the samples identical: the MAD collapses to zero and
    // the mask must stay quiet instead of flagging everything.
    std::vector<double> v = {2.0, 2.0, 2.0, 2.0, 7.0};
    std::vector<bool> mask = madOutlierMask(v, 3.5);
    for (bool flagged : mask)
        EXPECT_FALSE(flagged);
}

TEST(Robust, WinsorisedMeanKnownVector)
{
    // 10% winsorisation of 10 samples clips one sample per tail:
    // {1,...,9, 100} -> {2,...,9, 9}.
    std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 100};
    EXPECT_DOUBLE_EQ(winsorisedMean(v, 0.10), 5.5);
    // fraction 0 is the plain mean.
    EXPECT_DOUBLE_EQ(winsorisedMean(v, 0.0), mean(v));
    EXPECT_DOUBLE_EQ(winsorisedMean({}, 0.1), 0.0);
}

TEST(Robust, QuantileType7)
{
    std::vector<double> v = {1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(quantile(v, 0.25), 1.75);  // R type-7 value
}

TEST(Robust, TukeyFencesKnownVector)
{
    // {1..8}: Q1 = 2.75, Q3 = 6.25, IQR = 3.5 (type-7 quartiles).
    std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8};
    TukeyFences fences = tukeyFences(v, 1.5);
    EXPECT_DOUBLE_EQ(fences.lo, 2.75 - 5.25);
    EXPECT_DOUBLE_EQ(fences.hi, 6.25 + 5.25);
    EXPECT_TRUE(fences.contains(1.0));
    EXPECT_FALSE(fences.contains(12.0));
}

TEST(Robust, TukeyMaskAndRejection)
{
    std::vector<double> v = {3.0, 3.1, 2.9, 3.05, 2.95, 50.0};
    std::vector<bool> mask = tukeyOutlierMask(v, 1.5);
    EXPECT_TRUE(mask.back());
    std::vector<double> kept = rejectOutliers(v, mask);
    EXPECT_EQ(kept.size(), 5u);
    EXPECT_LT(maxValue(kept), 4.0);
}
