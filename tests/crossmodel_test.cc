/**
 * @file
 * Cross-model property tests: architectural event counts must be
 * identical between any two micro-architecture configurations (the
 * foundation under every analysis in the paper — hardware PMCs and
 * simulator statistics can only be *compared* because the
 * architectural work is the same).
 */

#include <gtest/gtest.h>

#include "g5/config.hh"
#include "hwsim/platform.hh"
#include "uarch/system.hh"
#include "workload/workload.hh"

using namespace gemstone;
using uarch::ClusterConfig;
using uarch::ClusterModel;
using uarch::EventCounts;
using uarch::RunResult;

namespace {

RunResult
runOn(const workload::Workload &work, ClusterConfig config)
{
    config.memBytes =
        std::max<std::uint64_t>(work.memBytes, 64 * 1024);
    ClusterModel cluster(config);
    work.prepareMemory(cluster.memory());
    return cluster.run(work.program, work.numThreads, 1.0);
}

} // namespace

class ArchitecturalEquality
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ArchitecturalEquality, AllCommittedClassesMatch)
{
    const workload::Workload &work =
        workload::Suite::byName(GetParam());

    RunResult hw = runOn(work, hwsim::trueBigConfig());
    RunResult v1 =
        runOn(work, g5::ex5Config(g5::G5Model::Ex5Big, 1));
    RunResult little = runOn(work, hwsim::trueLittleConfig());

    auto check = [&](const EventCounts &a, const EventCounts &b,
                     const char *tag) {
        EXPECT_EQ(a.instructions, b.instructions) << tag;
        EXPECT_EQ(a.loadOps, b.loadOps) << tag;
        EXPECT_EQ(a.storeOps, b.storeOps) << tag;
        EXPECT_EQ(a.branches, b.branches) << tag;
        EXPECT_EQ(a.condBranches, b.condBranches) << tag;
        EXPECT_EQ(a.intAluOps, b.intAluOps) << tag;
        EXPECT_EQ(a.intMulOps, b.intMulOps) << tag;
        EXPECT_EQ(a.intDivOps, b.intDivOps) << tag;
        EXPECT_EQ(a.fpOps, b.fpOps) << tag;
        EXPECT_EQ(a.simdOps, b.simdOps) << tag;
        EXPECT_EQ(a.ldrexOps, b.ldrexOps) << tag;
        EXPECT_EQ(a.strexOps, b.strexOps) << tag;
        EXPECT_EQ(a.barriers, b.barriers) << tag;
        EXPECT_EQ(a.unalignedAccesses, b.unalignedAccesses) << tag;
    };
    check(hw.aggregate, v1.aggregate, "hw vs ex5_big v1");
    check(hw.aggregate, little.aggregate, "a15 vs a7");

    // Timing, by contrast, must differ between a big and a LITTLE
    // configuration.
    EXPECT_NE(hw.cycles, little.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Representative, ArchitecturalEquality,
    ::testing::Values("mi-crc32", "mi-qsort", "whetstone",
                      "par-basicmath-rad2deg", "parsec-freqmine-4",
                      "par-sha-pipeline", "parsec-canneal-1",
                      "lm-stride-unaligned", "mi-typeset",
                      "roy-linpack"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(ArchitecturalMemoryState, FinalMemoryIdenticalAcrossModels)
{
    // Beyond event counts: the final architectural memory image of a
    // store-heavy workload is identical between configurations.
    const workload::Workload &work =
        workload::Suite::byName("parsec-streamcluster-1");

    ClusterConfig a_cfg = hwsim::trueBigConfig();
    a_cfg.memBytes = work.memBytes;
    ClusterModel a(a_cfg);
    work.prepareMemory(a.memory());
    a.run(work.program, work.numThreads, 1.0);

    ClusterConfig b_cfg = g5::ex5Config(g5::G5Model::Ex5Big, 1);
    b_cfg.memBytes = work.memBytes;
    ClusterModel b(b_cfg);
    work.prepareMemory(b.memory());
    b.run(work.program, work.numThreads, 1.0);

    ASSERT_EQ(a.memory().size(), b.memory().size());
    for (std::uint64_t addr = 0; addr < a.memory().size();
         addr += 8) {
        ASSERT_EQ(a.memory().read64(addr), b.memory().read64(addr))
            << "divergence at address " << addr;
    }
}
