/**
 * @file
 * Tests of the power-modelling flow: event specs, selection, model
 * building, validation and application to both platforms.
 */

#include <gtest/gtest.h>

#include "gemstone/runner.hh"
#include "powmon/builder.hh"
#include "powmon/eventspec.hh"
#include "powmon/model.hh"

using namespace gemstone;
using namespace gemstone::powmon;

// ---------------------------------------------------------------------
// Event specifications
// ---------------------------------------------------------------------

TEST(EventSpecTest, SinglePmcExtraction)
{
    EventSpec cycles = EventSpecTable::forPmc(0x11);
    EXPECT_EQ(cycles.key, "0x11");
    hwsim::HwMeasurement m;
    m.pmc[0x11] = 5000.0;
    m.execSeconds = 2.0;
    EXPECT_DOUBLE_EQ(cycles.hwCount(m), 5000.0);
    EXPECT_DOUBLE_EQ(cycles.hwRate(m), 2500.0);
}

TEST(EventSpecTest, CompositeDifference)
{
    EventSpec diff = EventSpecTable::difference(0x1B, 0x73);
    EXPECT_EQ(diff.key, "0x1B-0x73");
    hwsim::HwMeasurement m;
    m.pmc[0x1B] = 1000.0;
    m.pmc[0x73] = 400.0;
    m.execSeconds = 1.0;
    EXPECT_DOUBLE_EQ(diff.hwCount(m), 600.0);
}

TEST(EventSpecTest, G5EquivalentExtraction)
{
    EventSpec cycles = EventSpecTable::forPmc(0x11);
    g5::G5Stats s;
    s.simSeconds = 0.5;
    s.stats["system.cpu.numCycles"] = 4000.0;
    EXPECT_DOUBLE_EQ(cycles.g5Count(s), 4000.0);
    EXPECT_DOUBLE_EQ(cycles.g5Rate(s), 8000.0);
}

TEST(EventSpecTest, BrokenEquivalentsAreFlagged)
{
    // 0x15 and 0x75 are on the paper's restriction list.
    const auto &bad = EventSpecTable::knownBadForG5();
    EXPECT_NE(std::find(bad.begin(), bad.end(), 0x15), bad.end());
    EXPECT_NE(std::find(bad.begin(), bad.end(), 0x75), bad.end());
}

TEST(EventSpecTest, KeyEventsHaveG5Equivalents)
{
    for (int id : {0x08, 0x11, 0x16, 0x1B, 0x73, 0x04, 0x6C})
        EXPECT_TRUE(EventSpecTable::hasG5Equivalent(id))
            << hwsim::pmcIdString(id);
}

TEST(EventSpecTest, UnknownPmcFatals)
{
    EXPECT_EXIT(EventSpecTable::forPmc(0xEE),
                ::testing::ExitedWithCode(1), "unknown PMC");
}

// ---------------------------------------------------------------------
// Model building on real platform data (shared fixture: the
// characterisation run is expensive, do it once).
// ---------------------------------------------------------------------

class PowerModelFlow : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        core::RunnerConfig config;
        runner = new core::ExperimentRunner(config);
        observations = new std::vector<PowerObservation>(
            runner->runPowerCharacterisation(
                hwsim::CpuCluster::BigA15));
        builder = new PowerModelBuilder(*observations, "a15-test");

        SelectionConfig sel;
        sel.maxEvents = 6;
        sel.requireG5Equivalent = true;
        for (int id : EventSpecTable::knownBadForG5())
            sel.excluded.insert(id);
        sel.composites.push_back(
            EventSpecTable::difference(0x1B, 0x73));
        selection = new SelectionResult(builder->selectEvents(sel));
        model = new PowerModel(builder->build(selection->events));
    }
    static void TearDownTestSuite()
    {
        delete model;
        delete selection;
        delete builder;
        delete observations;
        delete runner;
    }

    static core::ExperimentRunner *runner;
    static std::vector<PowerObservation> *observations;
    static PowerModelBuilder *builder;
    static SelectionResult *selection;
    static PowerModel *model;
};

core::ExperimentRunner *PowerModelFlow::runner = nullptr;
std::vector<PowerObservation> *PowerModelFlow::observations = nullptr;
PowerModelBuilder *PowerModelFlow::builder = nullptr;
SelectionResult *PowerModelFlow::selection = nullptr;
PowerModel *PowerModelFlow::model = nullptr;

TEST_F(PowerModelFlow, CharacterisationCoversSuiteAndOpps)
{
    // 65 workloads x 4 DVFS points.
    EXPECT_EQ(observations->size(), 65u * 4u);
}

TEST_F(PowerModelFlow, SelectionRespectsConstraints)
{
    EXPECT_GE(selection->events.size(), 3u);
    EXPECT_LE(selection->events.size(), 6u);
    for (const EventSpec &spec : selection->events) {
        for (int id : spec.addIds) {
            for (int bad : EventSpecTable::knownBadForG5())
                EXPECT_NE(id, bad) << spec.key;
        }
    }
    // Adjusted R2 grows monotonically along the selection.
    for (std::size_t i = 1; i < selection->adjR2Trajectory.size();
         ++i) {
        EXPECT_GE(selection->adjR2Trajectory[i],
                  selection->adjR2Trajectory[i - 1]);
    }
}

TEST_F(PowerModelFlow, PerFrequencyModelsCoverOpps)
{
    ASSERT_EQ(model->perFrequency.size(), 4u);
    EXPECT_DOUBLE_EQ(model->perFrequency.front().freqMhz, 600.0);
    EXPECT_DOUBLE_EQ(model->perFrequency.back().freqMhz, 1800.0);
    for (const FrequencyModel &fm : model->perFrequency) {
        EXPECT_TRUE(fm.fit.ok);
        EXPECT_GT(fm.voltage, 0.5);
    }
}

TEST_F(PowerModelFlow, InSampleQualityIsPaperGrade)
{
    PowerModelQuality q =
        PowerModelBuilder::validate(*model, *observations);
    EXPECT_LT(q.mape, 0.10);          // paper: 3.28%
    EXPECT_GT(q.adjustedR2, 0.97);    // paper: 0.996
    EXPECT_LT(q.meanVif, 12.0);       // paper: 6
    EXPECT_EQ(q.observations, observations->size());
    EXPECT_FALSE(q.worstObservation.empty());
}

TEST_F(PowerModelFlow, EstimatesTrackMeasurementsPerObservation)
{
    for (std::size_t i = 0; i < observations->size(); i += 17) {
        const PowerObservation &obs = (*observations)[i];
        double est = model->estimateHw(obs.measurement);
        EXPECT_GT(est, 0.0);
        EXPECT_NEAR(est, obs.power(), obs.power() * 0.5)
            << obs.workload();
    }
}

TEST_F(PowerModelFlow, BreakdownSumsToEstimate)
{
    const PowerObservation &obs = observations->front();
    double est = model->estimateHw(obs.measurement);
    std::vector<double> parts = model->breakdownHw(obs.measurement);
    ASSERT_EQ(parts.size(), model->events.size() + 1);
    double sum = 0.0;
    for (double part : parts)
        sum += part;
    EXPECT_NEAR(sum, est, 1e-9);
}

TEST_F(PowerModelFlow, AppliesToG5Statistics)
{
    // The Fig. 2 tool: the same model runs on simulator output.
    g5::G5Stats stats = runner->simulator().run(
        workload::Suite::byName("mi-crc32"), g5::G5Model::Ex5Big,
        1000.0);
    double est = model->estimateG5(stats);
    EXPECT_GT(est, 0.0);
    EXPECT_LT(est, 10.0);
}

TEST_F(PowerModelFlow, RuntimeEquationsMentionEveryEvent)
{
    std::string equations = model->runtimeEquations();
    for (const EventSpec &spec : model->events)
        EXPECT_NE(equations.find(spec.key), std::string::npos);
    EXPECT_NE(equations.find("600mhz"), std::string::npos);
    EXPECT_NE(equations.find("1800mhz"), std::string::npos);
}

TEST_F(PowerModelFlow, UnknownFrequencyFatals)
{
    const PowerObservation &obs = observations->front();
    std::vector<double> rates = model->hwRates(obs.measurement);
    EXPECT_EXIT(model->estimateFromRates(rates, 1234.0),
                ::testing::ExitedWithCode(1), "no fit");
}


TEST_F(PowerModelFlow, SerializationRoundTrip)
{
    std::string text = model->serialize();
    PowerModel restored = PowerModel::deserialize(text);
    EXPECT_EQ(restored.clusterName, model->clusterName);
    ASSERT_EQ(restored.events.size(), model->events.size());
    ASSERT_EQ(restored.perFrequency.size(),
              model->perFrequency.size());
    for (std::size_t e = 0; e < model->events.size(); ++e)
        EXPECT_EQ(restored.events[e].key, model->events[e].key);

    // Estimates from the restored model are bit-identical.
    const PowerObservation &obs = observations->front();
    EXPECT_DOUBLE_EQ(restored.estimateHw(obs.measurement),
                     model->estimateHw(obs.measurement));
}

TEST(PowerModelSerialization, RejectsGarbage)
{
    EXPECT_EXIT(PowerModel::deserialize("not a model"),
                ::testing::ExitedWithCode(1), "powmon model");
    EXPECT_EXIT(PowerModel::deserialize("powmon-model 1\n"),
                ::testing::ExitedWithCode(1), "incomplete");
}

TEST(PowerModelBuilderTest, EmptyObservationsFatal)
{
    EXPECT_EXIT(PowerModelBuilder({}, "empty"),
                ::testing::ExitedWithCode(1), "no observations");
}
