/**
 * @file
 * Unit tests for the TLB hierarchy.
 */

#include <gtest/gtest.h>

#include "uarch/tlb.hh"

using namespace gemstone::uarch;

TEST(Tlb, MissThenHit)
{
    TlbConfig cfg;
    cfg.entries = 8;
    Tlb tlb(cfg);
    EXPECT_FALSE(tlb.lookup(0x1000));
    EXPECT_TRUE(tlb.lookup(0x1000));
    EXPECT_TRUE(tlb.lookup(0x1FFF));  // same page
    EXPECT_FALSE(tlb.lookup(0x2000)); // next page
    EXPECT_EQ(tlb.stats().accesses, 4u);
    EXPECT_EQ(tlb.stats().misses, 2u);
    EXPECT_EQ(tlb.stats().hits, 2u);
}

TEST(Tlb, FullyAssociativeLruEviction)
{
    TlbConfig cfg;
    cfg.entries = 4;
    cfg.assoc = 0;  // fully associative
    Tlb tlb(cfg);
    for (std::uint64_t page = 0; page < 4; ++page)
        tlb.lookup(page * 4096);
    tlb.lookup(0);            // page 0 becomes MRU
    tlb.lookup(4 * 4096);     // evicts page 1 (LRU)
    EXPECT_TRUE(tlb.probe(0));
    EXPECT_FALSE(tlb.probe(1 * 4096));
    EXPECT_EQ(tlb.stats().evictions, 1u);
}

TEST(Tlb, SetAssociativeMapping)
{
    TlbConfig cfg;
    cfg.entries = 8;
    cfg.assoc = 2;  // 4 sets
    Tlb tlb(cfg);
    // Pages 0, 4, 8 all map to set 0 (2 ways): the third evicts.
    tlb.lookup(0 * 4096);
    tlb.lookup(4 * 4096);
    tlb.lookup(8 * 4096);
    EXPECT_FALSE(tlb.probe(0));
    EXPECT_TRUE(tlb.probe(4 * 4096));
    EXPECT_TRUE(tlb.probe(8 * 4096));
}

TEST(Tlb, FlushEmptiesEverything)
{
    TlbConfig cfg;
    cfg.entries = 8;
    Tlb tlb(cfg);
    tlb.lookup(0);
    tlb.flush();
    EXPECT_FALSE(tlb.probe(0));
}

TEST(Tlb, InvalidGeometryFatals)
{
    TlbConfig cfg;
    cfg.entries = 6;
    cfg.assoc = 4;  // 6 not divisible by 4
    EXPECT_EXIT({ Tlb bad(cfg); }, ::testing::ExitedWithCode(1),
                "divisible");
}

TEST(TlbHierarchyTest, L1HitIsFree)
{
    TlbConfig l1;
    l1.entries = 4;
    TlbHierarchy hierarchy(l1, nullptr, 30.0);
    double lat = 0.0;
    hierarchy.translate(0, lat);   // miss: walk
    EXPECT_DOUBLE_EQ(lat, 30.0);
    lat = 0.0;
    EXPECT_TRUE(hierarchy.translate(0, lat));
    EXPECT_DOUBLE_EQ(lat, 0.0);
}

TEST(TlbHierarchyTest, L2HitAvoidsWalk)
{
    TlbConfig l1;
    l1.entries = 2;
    TlbConfig l2_cfg;
    l2_cfg.entries = 64;
    l2_cfg.latency = 4.0;
    Tlb l2(l2_cfg);
    TlbHierarchy hierarchy(l1, &l2, 30.0);

    double lat = 0.0;
    hierarchy.translate(0, lat);      // L1 miss, L2 miss, walk
    EXPECT_DOUBLE_EQ(lat, 34.0);

    // Evict page 0 from the tiny L1 with two other pages.
    lat = 0.0;
    hierarchy.translate(1 * 4096, lat);
    lat = 0.0;
    hierarchy.translate(2 * 4096, lat);

    // Page 0 now misses L1 but hits the L2: only the L2 latency.
    lat = 0.0;
    EXPECT_FALSE(hierarchy.translate(0, lat));
    EXPECT_DOUBLE_EQ(lat, 4.0);
    EXPECT_EQ(hierarchy.walks(), 3u);
}

TEST(TlbHierarchyTest, UnifiedL2SharedBetweenStreams)
{
    // The hardware shape: I-side and D-side L1s share one L2 TLB.
    TlbConfig l1i;
    l1i.entries = 2;
    TlbConfig l1d;
    l1d.entries = 2;
    TlbConfig l2_cfg;
    l2_cfg.entries = 16;
    l2_cfg.latency = 2.0;
    Tlb shared(l2_cfg);
    TlbHierarchy instr(l1i, &shared, 30.0);
    TlbHierarchy data(l1d, &shared, 30.0);

    // The I-side walks page 7 in.
    double lat = 0.0;
    instr.translate(7 * 4096, lat);
    EXPECT_EQ(instr.walks(), 1u);

    // The D-side then finds it in the shared L2: no walk.
    lat = 0.0;
    data.translate(7 * 4096, lat);
    EXPECT_EQ(data.walks(), 0u);
    EXPECT_DOUBLE_EQ(lat, 2.0);
}

TEST(TlbHierarchyTest, SplitL2sDoNotShare)
{
    // The g5 ex5 shape: separate I and D walker caches.
    TlbConfig l1;
    l1.entries = 2;
    TlbConfig l2_cfg;
    l2_cfg.entries = 16;
    l2_cfg.latency = 4.0;
    Tlb l2_instr(l2_cfg);
    Tlb l2_data(l2_cfg);
    TlbHierarchy instr(l1, &l2_instr, 30.0);
    TlbHierarchy data(l1, &l2_data, 30.0);

    double lat = 0.0;
    instr.translate(7 * 4096, lat);
    lat = 0.0;
    data.translate(7 * 4096, lat);
    // Both sides had to walk: the translations are not shared.
    EXPECT_EQ(instr.walks(), 1u);
    EXPECT_EQ(data.walks(), 1u);
}
