/**
 * @file
 * Unit and property tests for the cache model.
 */

#include <gtest/gtest.h>

#include "uarch/cache.hh"

using namespace gemstone::uarch;

namespace {

CacheConfig
smallConfig()
{
    CacheConfig cfg;
    cfg.name = "test";
    cfg.sizeBytes = 1024;  // 4 sets x 4 ways x 64 B
    cfg.assoc = 4;
    cfg.lineBytes = 64;
    cfg.hitLatency = 2.0;
    return cfg;
}

} // namespace

TEST(Cache, FirstAccessMissesThenHits)
{
    FixedLatencyMemory mem(50);
    Cache cache(smallConfig(), &mem);
    CacheAccessResult first = cache.access(0x100, false, false);
    EXPECT_FALSE(first.hit);
    CacheAccessResult second = cache.access(0x100, false, false);
    EXPECT_TRUE(second.hit);
    EXPECT_EQ(cache.stats().accesses, 2u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(Cache, SameLineSharesEntry)
{
    FixedLatencyMemory mem(50);
    Cache cache(smallConfig(), &mem);
    cache.access(0x100, false, false);
    // Same 64-byte line, different offset.
    EXPECT_TRUE(cache.access(0x13F, false, false).hit);
    // Next line misses.
    EXPECT_FALSE(cache.access(0x140, false, false).hit);
}

TEST(Cache, MissLatencyIncludesParent)
{
    FixedLatencyMemory mem(50);
    Cache cache(smallConfig(), &mem);
    CacheAccessResult miss = cache.access(0, false, false);
    EXPECT_DOUBLE_EQ(miss.latency, 52.0);  // 2 (self) + 50 (parent)
    CacheAccessResult hit = cache.access(0, false, false);
    EXPECT_DOUBLE_EQ(hit.latency, 2.0);
}

TEST(Cache, LruEvictionOrder)
{
    FixedLatencyMemory mem(10);
    Cache cache(smallConfig(), &mem);  // 4 sets, 4 ways
    // Fill one set (set 0): line addresses that map to set 0 are
    // multiples of 4 lines, i.e. addresses 0, 1024, 2048, ...
    for (int way = 0; way < 4; ++way)
        cache.access(way * 4 * 64, false, false);
    // Touch the first line so it becomes MRU.
    cache.access(0, false, false);
    // A fifth line evicts the LRU line (1024), not line 0.
    cache.access(4 * 4 * 64, false, false);
    EXPECT_TRUE(cache.probe(0));
    EXPECT_FALSE(cache.probe(4 * 64));
}

TEST(Cache, DirtyEvictionCountsWriteback)
{
    FixedLatencyMemory mem(10);
    Cache cache(smallConfig(), &mem);
    cache.access(0, true, false);  // allocate dirty in set 0
    // Evict it by filling the set with 4 clean lines.
    for (int way = 1; way <= 4; ++way)
        cache.access(way * 4 * 64, false, false);
    EXPECT_EQ(cache.stats().writebacks, 1u);
    EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    FixedLatencyMemory mem(10);
    Cache cache(smallConfig(), &mem);
    for (int way = 0; way <= 4; ++way)
        cache.access(way * 4 * 64, false, false);
    EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(Cache, WriteHitMarksDirty)
{
    FixedLatencyMemory mem(10);
    Cache cache(smallConfig(), &mem);
    cache.access(0, false, false);  // clean fill
    cache.access(0, true, false);   // write hit dirties the line
    for (int way = 1; way <= 4; ++way)
        cache.access(way * 4 * 64, false, false);
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, ReadWriteCountsSplit)
{
    FixedLatencyMemory mem(10);
    Cache cache(smallConfig(), &mem);
    cache.access(0, false, false);
    cache.access(64, true, false);
    cache.access(0, false, false);
    EXPECT_EQ(cache.stats().readAccesses, 2u);
    EXPECT_EQ(cache.stats().writeAccesses, 1u);
    EXPECT_EQ(cache.stats().readMisses, 1u);
    EXPECT_EQ(cache.stats().writeMisses, 1u);
}

TEST(Cache, InvalidateRemovesLine)
{
    FixedLatencyMemory mem(10);
    Cache cache(smallConfig(), &mem);
    cache.access(0x200, false, false);
    EXPECT_TRUE(cache.probe(0x200));
    EXPECT_TRUE(cache.invalidate(0x200));
    EXPECT_FALSE(cache.probe(0x200));
    EXPECT_FALSE(cache.invalidate(0x200));  // already gone
    EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(Cache, InvalidateDirtyCountsWriteback)
{
    FixedLatencyMemory mem(10);
    Cache cache(smallConfig(), &mem);
    cache.access(0x200, true, false);
    std::uint64_t wb_before = cache.stats().writebacks;
    cache.invalidate(0x200);
    EXPECT_EQ(cache.stats().writebacks, wb_before + 1);
}

TEST(Cache, FlushDropsEverything)
{
    FixedLatencyMemory mem(10);
    Cache cache(smallConfig(), &mem);
    cache.access(0, false, false);
    cache.access(64, false, false);
    cache.flush();
    EXPECT_FALSE(cache.probe(0));
    EXPECT_FALSE(cache.probe(64));
}

TEST(Cache, PrefetcherIssuesNextLines)
{
    CacheConfig cfg = smallConfig();
    cfg.prefetchDegree = 2;
    FixedLatencyMemory mem(10);
    Cache cache(cfg, &mem);
    cache.access(0, false, false);  // miss -> prefetch lines 1, 2
    EXPECT_EQ(cache.stats().prefetchesIssued, 2u);
    EXPECT_TRUE(cache.probe(64));
    EXPECT_TRUE(cache.probe(128));
    // Demand hit on a prefetched line is counted.
    cache.access(64, false, false);
    EXPECT_EQ(cache.stats().prefetchHits, 1u);
}

TEST(Cache, PrefetchDoesNotInflateDemandCounters)
{
    CacheConfig cfg = smallConfig();
    cfg.prefetchDegree = 4;
    FixedLatencyMemory mem(10);
    Cache cache(cfg, &mem);
    cache.access(0, false, false);
    EXPECT_EQ(cache.stats().accesses, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, WriteStreamingBypassesAllocation)
{
    CacheConfig cfg = smallConfig();
    cfg.writeStreaming = true;
    cfg.streamingThreshold = 2;
    FixedLatencyMemory mem(10);
    Cache cache(cfg, &mem);
    // Sequential store misses: lines 0, 1 allocate; 2+ stream.
    for (std::uint64_t line = 0; line < 8; ++line)
        cache.access(line * 64, true, false);
    EXPECT_EQ(cache.stats().streamingStores, 6u);
    EXPECT_EQ(cache.stats().writeMisses, 2u);
    EXPECT_FALSE(cache.probe(5 * 64));  // streamed, not allocated
    EXPECT_TRUE(cache.probe(0));
}

TEST(Cache, WriteStreamingResetsOnRandomStore)
{
    CacheConfig cfg = smallConfig();
    cfg.writeStreaming = true;
    FixedLatencyMemory mem(10);
    Cache cache(cfg, &mem);
    cache.access(0 * 64, true, false);
    cache.access(1 * 64, true, false);
    cache.access(2 * 64, true, false);   // streaming
    cache.access(100 * 64, true, false); // random store: reset
    cache.access(101 * 64, true, false);
    EXPECT_EQ(cache.stats().streamingStores, 1u);
    EXPECT_TRUE(cache.probe(101 * 64));  // allocated again
}

TEST(Cache, WriteStreamingRepeatedLineKeepsStream)
{
    CacheConfig cfg = smallConfig();
    cfg.writeStreaming = true;
    FixedLatencyMemory mem(10);
    Cache cache(cfg, &mem);
    cache.access(0 * 64, true, false);
    cache.access(1 * 64, true, false);
    cache.access(2 * 64, true, false);      // streams
    cache.access(2 * 64 + 8, true, false);  // same line: still streams
    EXPECT_EQ(cache.stats().streamingStores, 2u);
}

TEST(Cache, StreamingDisabledAllocatesEverything)
{
    FixedLatencyMemory mem(10);
    Cache cache(smallConfig(), &mem);  // writeStreaming off
    for (std::uint64_t line = 0; line < 8; ++line)
        cache.access(line * 64, true, false);
    EXPECT_EQ(cache.stats().streamingStores, 0u);
    EXPECT_EQ(cache.stats().writeMisses, 8u);
}

TEST(Cache, BadGeometryFatals)
{
    FixedLatencyMemory mem(10);
    CacheConfig cfg = smallConfig();
    cfg.lineBytes = 48;  // not a power of two
    EXPECT_EXIT(Cache(cfg, &mem), ::testing::ExitedWithCode(1),
                "power of 2");
}

TEST(Cache, NullParentWorks)
{
    Cache cache(smallConfig(), nullptr);
    CacheAccessResult miss = cache.access(0, false, false);
    EXPECT_FALSE(miss.hit);
    EXPECT_DOUBLE_EQ(miss.latency, 2.0);
}

// Parameterised property sweep over geometries.
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(CacheGeometry, CountingInvariants)
{
    auto [size_kb, assoc, line] = GetParam();
    CacheConfig cfg;
    cfg.sizeBytes = size_kb * 1024;
    cfg.assoc = assoc;
    cfg.lineBytes = line;
    FixedLatencyMemory mem(10);
    Cache cache(cfg, &mem);

    // A deterministic pseudo-random access pattern.
    std::uint64_t addr = 12345;
    for (int i = 0; i < 20000; ++i) {
        addr = addr * 6364136223846793005ULL + 1442695040888963407ULL;
        cache.access(addr % (1 << 22), (addr >> 60) & 1, false);
    }

    const CacheStats &s = cache.stats();
    EXPECT_EQ(s.accesses, 20000u);
    EXPECT_EQ(s.hits + s.misses, s.accesses);
    EXPECT_EQ(s.readAccesses + s.writeAccesses, s.accesses);
    EXPECT_EQ(s.readMisses + s.writeMisses, s.misses);
    EXPECT_LE(s.writebacks, s.evictions + s.invalidations + 1);
    // The cache cannot hold more lines than its capacity, so misses
    // must be at least (accesses - capacity-limited hits) > 0 here.
    EXPECT_GT(s.misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(1, 1, 64),
                      std::make_tuple(4, 2, 64),
                      std::make_tuple(8, 4, 32),
                      std::make_tuple(32, 2, 64),
                      std::make_tuple(32, 8, 128),
                      std::make_tuple(512, 16, 64)));
