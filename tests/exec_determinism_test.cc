/**
 * @file
 * Determinism of the parallel campaign engine: the collated output
 * must be byte-identical to the serial flow at any thread count —
 * under fault injection, across kill/resume, and with a warm result
 * store.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "exec/resultstore.hh"
#include "gemstone/campaign.hh"
#include "gemstone/runner.hh"
#include "hwsim/faults.hh"

using namespace gemstone;
using namespace gemstone::core;

namespace {

constexpr double kFreq = 1000.0;

/** Unique scratch path, removed on destruction. */
struct ScratchFile
{
    std::string path;
    explicit ScratchFile(const std::string &name)
        : path((std::filesystem::temp_directory_path() /
                name).string())
    {
        std::filesystem::remove(path);
    }
    ~ScratchFile() { std::filesystem::remove(path); }
};

/** One faulted campaign at the given thread count, fresh runner. */
CampaignResult
faultedCampaign(unsigned jobs,
                std::shared_ptr<exec::ResultStore> store = nullptr,
                const std::string &checkpoint_path = {},
                std::size_t max_points = 0, bool batched = false)
{
    ExperimentRunner runner{RunnerConfig{}};
    runner.platform().injectFaults(hwsim::FaultConfig::labMix());
    if (store)
        runner.attachResultStore(store);
    CampaignConfig policy;
    policy.jobs = jobs;
    policy.checkpointPath = checkpoint_path;
    policy.maxPoints = max_points;
    policy.batchedBaseRuns = batched;
    CampaignEngine engine(runner, policy);
    return engine.runValidation(hwsim::CpuCluster::BigA15, {kFreq});
}

/** An unfaulted (clean-lab) campaign, optionally batched. */
CampaignResult
cleanCampaign(unsigned jobs, bool batched)
{
    ExperimentRunner runner{RunnerConfig{}};
    CampaignConfig policy;
    policy.jobs = jobs;
    policy.batchedBaseRuns = batched;
    CampaignEngine engine(runner, policy);
    return engine.runValidation(hwsim::CpuCluster::BigA15, {kFreq});
}

/**
 * One faulted campaign prewarmed by a pool of forked worker
 * processes. @p crash_prob arms the worker_crash fault mode (seeded
 * SIGKILL of the executing worker); the pool knobs come through so
 * tests can run the chaos harness or starve the respawn budget.
 */
CampaignResult
pooledCampaign(unsigned workers, double crash_prob = 0.0,
               double chaos_interval = 0.0, int max_respawns = -1)
{
    ExperimentRunner runner{RunnerConfig{}};
    hwsim::FaultConfig faults = hwsim::FaultConfig::labMix();
    faults.workerCrashProb = crash_prob;
    runner.platform().injectFaults(faults);
    CampaignConfig policy;
    policy.jobs = 1;
    policy.workers = workers;
    policy.workerPool.chaosKillIntervalSeconds = chaos_interval;
    if (max_respawns >= 0)
        policy.workerPool.maxRespawns =
            static_cast<unsigned>(max_respawns);
    CampaignEngine engine(runner, policy);
    return engine.runValidation(hwsim::CpuCluster::BigA15, {kFreq});
}

/** Worker counts to exercise: the CI matrix pins one via env. */
std::vector<unsigned>
pooledWorkerCounts()
{
    if (const char *env = std::getenv("GEMSTONE_TEST_WORKERS")) {
        unsigned workers = static_cast<unsigned>(std::atoi(env));
        if (workers >= 1)
            return {workers};
    }
    return {2u, 4u};
}

/** Full equality of the campaign-visible output. */
void
expectIdentical(const CampaignResult &expected,
                const CampaignResult &actual, const char *context)
{
    SCOPED_TRACE(context);
    // Byte-identical collated dataset.
    EXPECT_EQ(expected.dataset.toCsv(), actual.dataset.toCsv());
    // Identical accounting.
    EXPECT_EQ(expected.measuredPoints, actual.measuredPoints);
    EXPECT_EQ(expected.resumedPoints, actual.resumedPoints);
    EXPECT_EQ(expected.excludedPoints, actual.excludedPoints);
    EXPECT_EQ(expected.totalAttempts, actual.totalAttempts);
    EXPECT_EQ(expected.totalFailures, actual.totalFailures);
    EXPECT_EQ(expected.totalRejected, actual.totalRejected);
    EXPECT_DOUBLE_EQ(expected.backoffSeconds, actual.backoffSeconds);
    EXPECT_EQ(expected.warnings, actual.warnings);
    EXPECT_EQ(expected.complete, actual.complete);
    // Identical per-point trajectories, in campaign order.
    ASSERT_EQ(expected.points.size(), actual.points.size());
    for (std::size_t i = 0; i < expected.points.size(); ++i) {
        const CampaignPoint &a = expected.points[i];
        const CampaignPoint &b = actual.points[i];
        EXPECT_EQ(a.workload, b.workload);
        EXPECT_EQ(a.status, b.status);
        EXPECT_EQ(a.attempts, b.attempts);
        EXPECT_EQ(a.failures, b.failures);
        EXPECT_EQ(a.rejected, b.rejected);
        EXPECT_EQ(a.execSeconds, b.execSeconds);
        EXPECT_EQ(a.powerWatts, b.powerWatts);
    }
}

} // namespace

TEST(ExecDeterminism, FaultedCampaignIsByteIdenticalAcrossThreads)
{
    CampaignResult serial = faultedCampaign(1);
    // The fault mix must actually bite for this to prove anything.
    ASSERT_GT(serial.totalFailures + serial.totalRejected, 0u);

    for (unsigned jobs : {2u, 4u, 8u}) {
        CampaignResult parallel = faultedCampaign(jobs);
        expectIdentical(serial, parallel,
                        ("jobs=" + std::to_string(jobs)).c_str());
    }
}

TEST(ExecDeterminism, KillAndResumeMatchesAtAnyThreadCount)
{
    // Reference: serial campaign killed after 10 points, then
    // resumed serially to completion.
    ScratchFile serial_ckpt("gs_exec_det_serial.csv");
    CampaignResult serial_partial =
        faultedCampaign(1, nullptr, serial_ckpt.path, 10);
    ASSERT_FALSE(serial_partial.complete);
    CampaignResult serial_full =
        faultedCampaign(1, nullptr, serial_ckpt.path);
    ASSERT_EQ(serial_full.resumedPoints, 10u);

    // The same kill/resume flow at 4 threads must reproduce it
    // byte for byte, even though the parallel checkpoint's rows
    // landed in completion order.
    ScratchFile parallel_ckpt("gs_exec_det_parallel.csv");
    CampaignResult parallel_partial =
        faultedCampaign(4, nullptr, parallel_ckpt.path, 10);
    expectIdentical(serial_partial, parallel_partial,
                    "partial campaign");
    CampaignResult parallel_full =
        faultedCampaign(4, nullptr, parallel_ckpt.path);
    expectIdentical(serial_full, parallel_full, "resumed campaign");
}

TEST(ExecDeterminism, WarmResultStoreReplaysByteIdentically)
{
    auto store = std::make_shared<exec::ResultStore>();
    CampaignResult cold = faultedCampaign(1, store);
    exec::ResultStore::Stats after_cold = store->stats();
    EXPECT_GT(after_cold.insertions, 0u);

    // Warm serial rerun: every successful measurement replays from
    // the store (failures replay from the fault planner), so the
    // only misses are the never-cached failed attempts.
    CampaignResult warm = faultedCampaign(1, store);
    expectIdentical(cold, warm, "warm serial");
    exec::ResultStore::Stats after_warm = store->stats();
    EXPECT_GT(after_warm.hits, after_cold.hits);
    EXPECT_EQ(after_warm.insertions, after_cold.insertions);

    // Warm parallel rerun against the same store.
    CampaignResult warm_parallel = faultedCampaign(4, store);
    expectIdentical(cold, warm_parallel, "warm parallel");
}

TEST(ExecDeterminism, BatchedBaseRunsAreByteIdenticalUnderFaults)
{
    // The batched engine computes both 1.0 GHz base runs per
    // workload from one instruction stream; the campaign-visible
    // output must not move by a byte, at any thread count, with the
    // fault mix biting.
    CampaignResult serial = faultedCampaign(1);
    ASSERT_GT(serial.totalFailures + serial.totalRejected, 0u);

    for (unsigned jobs : {1u, 4u}) {
        CampaignResult batched = faultedCampaign(
            jobs, nullptr, {}, 0, /*batched=*/true);
        expectIdentical(serial, batched,
                        ("batched jobs=" + std::to_string(jobs))
                            .c_str());
    }
}

TEST(ExecDeterminism, BatchedBaseRunsAreByteIdenticalUnfaulted)
{
    CampaignResult plain = cleanCampaign(1, /*batched=*/false);
    for (unsigned jobs : {1u, 4u}) {
        CampaignResult batched = cleanCampaign(jobs, /*batched=*/true);
        expectIdentical(plain, batched,
                        ("clean batched jobs=" + std::to_string(jobs))
                            .c_str());
    }
}

TEST(ExecDeterminism, BatchedKillAndResumeMatchesUnbatched)
{
    // Interrupted-then-resumed with batched base runs on both legs
    // must reproduce the serial unbatched kill/resume byte for byte.
    ScratchFile plain_ckpt("gs_exec_det_plain.csv");
    CampaignResult plain_partial =
        faultedCampaign(1, nullptr, plain_ckpt.path, 10);
    ASSERT_FALSE(plain_partial.complete);
    CampaignResult plain_full =
        faultedCampaign(1, nullptr, plain_ckpt.path);
    ASSERT_EQ(plain_full.resumedPoints, 10u);

    ScratchFile batched_ckpt("gs_exec_det_batched.csv");
    CampaignResult batched_partial = faultedCampaign(
        4, nullptr, batched_ckpt.path, 10, /*batched=*/true);
    expectIdentical(plain_partial, batched_partial,
                    "batched partial campaign");
    CampaignResult batched_full = faultedCampaign(
        4, nullptr, batched_ckpt.path, 0, /*batched=*/true);
    expectIdentical(plain_full, batched_full,
                    "batched resumed campaign");
}

#if defined(__unix__) || defined(__APPLE__)

TEST(ExecDeterminism, PooledPrewarmIsByteIdenticalToSerial)
{
    CampaignResult serial = faultedCampaign(1);
    ASSERT_GT(serial.totalFailures + serial.totalRejected, 0u);

    for (unsigned workers : pooledWorkerCounts()) {
        CampaignResult pooled = pooledCampaign(workers);
        expectIdentical(serial, pooled,
                        ("workers=" + std::to_string(workers))
                            .c_str());
        if (workers > 1) {
            // The pool must have actually carried the prewarm.
            EXPECT_GT(pooled.poolStats.tasksTotal, 0u);
            EXPECT_GT(pooled.poolStats.tasksCompleted +
                          pooled.poolStats.tasksFallback, 0u);
        }
    }
}

TEST(ExecDeterminism, ChaosKilledWorkersStayByteIdentical)
{
    // The coordinator SIGKILLs a busy worker every 20 ms. However
    // many die, a worker's only effect is the cache entries it ships
    // back, so the replayed output cannot move.
    CampaignResult serial = faultedCampaign(1);
    CampaignResult chaotic =
        pooledCampaign(4, /*crash_prob=*/0.0,
                       /*chaos_interval=*/0.02);
    expectIdentical(serial, chaotic, "chaos-killed pool");
    EXPECT_GT(chaotic.poolStats.tasksTotal, 0u);
}

TEST(ExecDeterminism, WorkerCrashFaultIsByteIdentical)
{
    // worker_crash plans its kills on a seeded stream independent of
    // the measurement draws, and a kill changes no measured value:
    // with half the prewarm tasks crashing their worker on first
    // dispatch, the collated output must still match the serial
    // campaign bit for bit. (Which worker life absorbs which crash
    // is timing-dependent, so only byte-identity and "somebody
    // died" are contractual.)
    CampaignResult serial = faultedCampaign(1);
    CampaignResult crashed = pooledCampaign(2, /*crash_prob=*/0.5);
    CampaignResult rerun = pooledCampaign(2, /*crash_prob=*/0.5);

    expectIdentical(serial, crashed, "crash-faulted pool");
    expectIdentical(serial, rerun, "crash-faulted pool rerun");
    EXPECT_GE(crashed.poolStats.workerDeaths, 1u);
    EXPECT_GE(rerun.poolStats.workerDeaths, 1u);
}

TEST(ExecDeterminism, LosingEveryWorkerStillCompletesTheCampaign)
{
    // Every first dispatch kills its worker and the respawn budget
    // is tiny: the pool exhausts, the survivors fall back in-process
    // and the replay recomputes the rest — the campaign must still
    // complete, byte-identical.
    CampaignResult serial = faultedCampaign(1);
    CampaignResult starved =
        pooledCampaign(2, /*crash_prob=*/1.0,
                       /*chaos_interval=*/0.0, /*max_respawns=*/1);
    expectIdentical(serial, starved, "exhausted pool");
    EXPECT_TRUE(starved.complete);
    EXPECT_GE(starved.poolStats.workerDeaths, 2u);
}

#endif // unix

TEST(ExecDeterminism, StorePersistenceSurvivesProcessBoundary)
{
    ScratchFile file("gs_exec_det_store.csv");
    auto store = std::make_shared<exec::ResultStore>();
    CampaignResult cold = faultedCampaign(1, store);
    ASSERT_TRUE(store->saveCsv(file.path).ok());

    // A "new process": a fresh store loaded from disk must replay
    // the campaign byte-identically with zero new insertions.
    auto reloaded = std::make_shared<exec::ResultStore>();
    ASSERT_GT(reloaded->loadCsv(file.path), 0u);
    CampaignResult replay = faultedCampaign(2, reloaded);
    expectIdentical(cold, replay, "reloaded store");
    EXPECT_EQ(reloaded->stats().insertions, 0u);
}
