/**
 * @file
 * Integration-style tests of the core/cluster timing models.
 */

#include <gtest/gtest.h>

#include "hwsim/platform.hh"
#include "isa/program.hh"
#include "uarch/system.hh"
#include "workload/kernels.hh"

using namespace gemstone;
using namespace gemstone::uarch;

namespace {

/** A minimal single-core cluster for focused tests. */
ClusterConfig
tinyCluster()
{
    ClusterConfig cfg = hwsim::trueBigConfig();
    cfg.numCores = 1;
    cfg.memBytes = 1 << 20;
    return cfg;
}

isa::Program
countedLoop(std::uint64_t iterations)
{
    isa::ProgramBuilder b("counted");
    b.movi(1, static_cast<std::int64_t>(iterations));
    b.label("top");
    b.addi(2, 2, 1);
    b.subi(1, 1, 1);
    b.bne(1, "top");
    b.halt();
    return b.build();
}

} // namespace

TEST(CoreModel, ExactInstructionCount)
{
    ClusterModel cluster(tinyCluster());
    isa::Program p = countedLoop(1000);
    RunResult run = cluster.run(p, 1, 1.0);
    // movi + 3 per iteration + halt.
    EXPECT_EQ(run.instructions, 1 + 3 * 1000 + 1);
    EXPECT_GT(run.cycles, 0.0);
    EXPECT_GT(run.seconds, 0.0);
}

TEST(CoreModel, EventCountsMatchProgramStructure)
{
    ClusterModel cluster(tinyCluster());
    isa::ProgramBuilder b("memcount");
    b.movi(1, 64);
    b.movi(2, 0);
    b.movi(3, 100);
    b.label("loop");
    b.str(2, 1, 0);
    b.ldr(4, 1, 0);
    b.addi(1, 1, 8);
    b.subi(3, 3, 1);
    b.bne(3, "loop");
    b.halt();
    RunResult run = cluster.run(b.build(), 1, 1.0);
    const EventCounts &e = run.aggregate;
    EXPECT_EQ(e.loadOps, 100u);
    EXPECT_EQ(e.storeOps, 100u);
    EXPECT_EQ(e.condBranches, 100u);
    EXPECT_EQ(e.branches, 100u);
    // Data side: 100 loads + 100 stores (plus possible wrong-path
    // loads from mispredicts).
    EXPECT_GE(e.l1dAccesses, 200u);
}

TEST(CoreModel, DeterministicAcrossRuns)
{
    isa::Program p = countedLoop(5000);
    ClusterModel a(tinyCluster());
    ClusterModel b(tinyCluster());
    RunResult ra = a.run(p, 1, 1.0);
    RunResult rb = b.run(p, 1, 1.0);
    EXPECT_EQ(ra.instructions, rb.instructions);
    EXPECT_DOUBLE_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.aggregate.l1iMisses, rb.aggregate.l1iMisses);
    EXPECT_EQ(ra.aggregate.branchMispredicts,
              rb.aggregate.branchMispredicts);
}

TEST(CoreModel, HigherFrequencyShorterTime)
{
    isa::Program p = countedLoop(20000);
    ClusterModel slow(tinyCluster());
    ClusterModel fast(tinyCluster());
    RunResult low = slow.run(p, 1, 0.6);
    RunResult high = fast.run(p, 1, 1.8);
    EXPECT_GT(low.seconds, high.seconds);
}

TEST(CoreModel, RetimeMatchesDirectRun)
{
    // Re-timing a 1 GHz run to 1.8 GHz must equal simulating at
    // 1.8 GHz directly: event counts are frequency-invariant and the
    // cycle count follows the dramStallNs identity.
    workload::Workload w = workload::kernels::makePointerChase(
        "retime-probe", "test", 4096, 64, 30000);
    ClusterConfig cfg = tinyCluster();
    cfg.memBytes = w.memBytes;

    ClusterModel at_base(cfg);
    w.prepareMemory(at_base.memory());
    RunResult base = at_base.run(w.program, 1, 1.0);

    ClusterModel at_fast(cfg);
    w.prepareMemory(at_fast.memory());
    RunResult direct = at_fast.run(w.program, 1, 1.8);

    RunResult retimed = retimeRun(base, 1.8);
    EXPECT_NEAR(retimed.cycles, direct.cycles,
                direct.cycles * 1e-9);
    EXPECT_NEAR(retimed.seconds, direct.seconds,
                direct.seconds * 1e-9);
    EXPECT_EQ(retimed.aggregate.l1dMisses,
              direct.aggregate.l1dMisses);
}

TEST(CoreModel, MemoryBoundWorkloadHasDramStall)
{
    workload::Workload w = workload::kernels::makePointerChase(
        "dram-probe", "test", 65536, 64, 20000);
    ClusterConfig cfg = tinyCluster();
    cfg.memBytes = w.memBytes;
    ClusterModel cluster(cfg);
    w.prepareMemory(cluster.memory());
    RunResult run = cluster.run(w.program, 1, 1.0);
    EXPECT_GT(run.aggregate.dramStallNs, 0.0);
    EXPECT_GT(run.aggregate.dramReads, 1000u);
}

TEST(CoreModel, ComputeBoundWorkloadScalesLinearly)
{
    // A register-only loop has no DRAM stall; its cycle count is
    // frequency independent, so time scales exactly with f.
    isa::Program p = countedLoop(50000);
    ClusterModel a(tinyCluster());
    RunResult run = a.run(p, 1, 1.0);
    EXPECT_NEAR(run.aggregate.dramStallNs, 0.0, 200.0);
    RunResult fast = retimeRun(run, 2.0);
    EXPECT_NEAR(fast.seconds, run.seconds / 2.0,
                run.seconds * 1e-3);
}

TEST(CoreModel, BranchHeavyCodePaysMispredicts)
{
    // A data-dependent 50/50 branch pattern must cost more cycles
    // per instruction than a plain counted loop.
    workload::Workload noisy = workload::kernels::makeRandomBranch(
        "noisy-probe", "test", 0.5, 20000);
    ClusterConfig cfg = tinyCluster();
    ClusterModel a(cfg);
    RunResult noisy_run = a.run(noisy.program, 1, 1.0);

    isa::Program plain = countedLoop(20000);
    ClusterModel b(cfg);
    RunResult plain_run = b.run(plain, 1, 1.0);

    double noisy_cpi = noisy_run.cycles /
        static_cast<double>(noisy_run.instructions);
    double plain_cpi = plain_run.cycles /
        static_cast<double>(plain_run.instructions);
    EXPECT_GT(noisy_cpi, plain_cpi * 1.5);
    EXPECT_GT(noisy_run.aggregate.branchMispredicts, 4000u);
}

// ---------------------------------------------------------------------
// Multi-core behaviour
// ---------------------------------------------------------------------

TEST(ClusterModelTest, SpmdThreadsAllExecute)
{
    ClusterConfig cfg = tinyCluster();
    cfg.numCores = 4;
    ClusterModel cluster(cfg);
    isa::Program p = countedLoop(1000);
    RunResult run = cluster.run(p, 4, 1.0);
    EXPECT_EQ(run.perCore.size(), 4u);
    for (const EventCounts &core : run.perCore)
        EXPECT_EQ(core.instructions, 1u + 3 * 1000 + 1);
    EXPECT_EQ(run.instructions, 4 * (1 + 3 * 1000 + 1));
}

TEST(ClusterModelTest, SnoopsOnSharedStores)
{
    ClusterConfig cfg = tinyCluster();
    cfg.numCores = 2;
    ClusterModel cluster(cfg);

    // Both threads repeatedly store to the same line.
    isa::ProgramBuilder b("pingpong");
    b.movi(1, 256);
    b.movi(2, 500);
    b.label("loop");
    b.str(2, 1, 0);
    b.ldr(3, 1, 0);
    b.subi(2, 2, 1);
    b.bne(2, "loop");
    b.halt();
    RunResult run = cluster.run(b.build(), 2, 1.0);
    // Migratory sharing: roughly one snoop per scheduling quantum
    // (the first store after each handover finds the remote copy).
    EXPECT_GT(run.aggregate.snoops, 20u);
}

TEST(ClusterModelTest, NoSnoopsOnDisjointData)
{
    ClusterConfig cfg = tinyCluster();
    cfg.numCores = 2;
    ClusterModel cluster(cfg);

    // Threads write to thread-private lines (tid * 8192).
    isa::ProgramBuilder b("disjoint");
    b.movi(1, 8192);
    b.mul(1, isa::threadIdReg, 1);
    b.addi(1, 1, 256);
    b.movi(2, 500);
    b.label("loop");
    b.str(2, 1, 0);
    b.subi(2, 2, 1);
    b.bne(2, "loop");
    b.halt();
    RunResult run = cluster.run(b.build(), 2, 1.0);
    EXPECT_EQ(run.aggregate.snoops, 0u);
}

TEST(ClusterModelTest, SpinLockProducesExclusives)
{
    workload::Workload w = workload::kernels::makeSpinLock(
        "lock-probe", "test", 500, 4);
    ClusterConfig cfg = tinyCluster();
    cfg.numCores = 4;
    cfg.memBytes = w.memBytes;
    ClusterModel cluster(cfg);
    w.prepareMemory(cluster.memory());
    RunResult run = cluster.run(w.program, 4, 1.0);

    EXPECT_GE(run.aggregate.ldrexOps, 4u * 500u);
    EXPECT_GE(run.aggregate.strexOps, 4u * 500u);
    EXPECT_GT(run.aggregate.barriers, 0u);
    // The shared counter must reach exactly 4 x 500.
    EXPECT_EQ(cluster.memory().read64(192), 4u * 500u);
}

TEST(ClusterModelTest, BarrierWorkloadCompletes)
{
    workload::Workload w = workload::kernels::makeBarrierPhases(
        "barrier-probe", "test", 10, 100, 4);
    ClusterConfig cfg = tinyCluster();
    cfg.numCores = 4;
    cfg.memBytes = w.memBytes;
    ClusterModel cluster(cfg);
    w.prepareMemory(cluster.memory());
    RunResult run = cluster.run(w.program, 4, 1.0);
    // 4 threads x 10 phases of arrivals happened (counter wrapped
    // back to zero every phase).
    EXPECT_EQ(cluster.memory().read64(192), 0u);
    EXPECT_GT(run.aggregate.strexOps, 0u);
}

TEST(ClusterModelTest, ProducerConsumerTransfersAllItems)
{
    workload::Workload w = workload::kernels::makeProducerConsumer(
        "pc-probe", "test", 200);
    ClusterConfig cfg = tinyCluster();
    cfg.numCores = 2;
    cfg.memBytes = w.memBytes;
    ClusterModel cluster(cfg);
    w.prepareMemory(cluster.memory());
    RunResult run = cluster.run(w.program, 2, 1.0);
    // The consumer's r6 accumulates 1 + 2 + ... + 200.
    EXPECT_EQ(run.instructions > 0, true);
    EXPECT_GT(run.aggregate.barriers, 2u * 200u - 1);
}

TEST(ClusterModelTest, AggregateCyclesIsMaxOverCores)
{
    ClusterConfig cfg = tinyCluster();
    cfg.numCores = 2;
    ClusterModel cluster(cfg);
    isa::Program p = countedLoop(2000);
    RunResult run = cluster.run(p, 2, 1.0);
    double max_core = 0.0;
    for (const EventCounts &core : run.perCore)
        max_core = std::max(max_core, core.cycles);
    EXPECT_DOUBLE_EQ(run.cycles, max_core);
}

TEST(ClusterModelTest, TooManyThreadsFatals)
{
    ClusterConfig cfg = tinyCluster();
    cfg.numCores = 2;
    ClusterModel cluster(cfg);
    isa::Program p = countedLoop(10);
    EXPECT_EXIT(cluster.run(p, 3, 1.0),
                ::testing::ExitedWithCode(1), "out of range");
}

// ---------------------------------------------------------------------
// Model divergence invariants (the "answer key" of DESIGN.md)
// ---------------------------------------------------------------------

TEST(ModelDivergence, G5CountsMoreL1iAccesses)
{
    // Per-instruction I-cache lookup (g5) vs per-fetch-group (HW).
    workload::Workload w = workload::kernels::makeIntArith(
        "alu-probe", "test", 20000, false);

    ClusterConfig hw_cfg = hwsim::trueBigConfig();
    hw_cfg.numCores = 1;
    hw_cfg.memBytes = w.memBytes;
    ClusterModel hw(hw_cfg);
    w.prepareMemory(hw.memory());
    RunResult hw_run = hw.run(w.program, 1, 1.0);

    ClusterConfig g5_cfg = hw_cfg;
    g5_cfg.core.fetchGroupInsts = 1;
    ClusterModel g5(g5_cfg);
    w.prepareMemory(g5.memory());
    RunResult g5_run = g5.run(w.program, 1, 1.0);

    EXPECT_GT(static_cast<double>(g5_run.aggregate.l1iAccesses),
              1.5 * static_cast<double>(hw_run.aggregate.l1iAccesses));
    // Architectural behaviour identical.
    EXPECT_EQ(g5_run.instructions, hw_run.instructions);
}

TEST(ModelDivergence, OsItlbFlushCreatesRefills)
{
    isa::Program p = countedLoop(200000);

    ClusterConfig quiet = hwsim::trueBigConfig();
    quiet.numCores = 1;
    quiet.core.osItlbFlushPeriod = 0;
    ClusterModel no_noise(quiet);
    RunResult silent = no_noise.run(p, 1, 1.0);

    ClusterConfig noisy_cfg = quiet;
    noisy_cfg.core.osItlbFlushPeriod = 10000;
    ClusterModel noisy(noisy_cfg);
    RunResult loud = noisy.run(p, 1, 1.0);

    EXPECT_GT(loud.aggregate.itlbMisses,
              silent.aggregate.itlbMisses + 10);
}
