/**
 * @file
 * Cross-validation of the fast statistical analysis engine against
 * the reference implementations: the updating-QR stepwise and the
 * nearest-neighbour-chain HCA must reproduce the reference's term
 * sequences and dendrograms (coefficients and heights within 1e-9),
 * the blocked matrix kernels must be bit-identical to the checked
 * triple loops, everything must be invariant in the jobs count, and
 * degenerate inputs must not split the two paths.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "linalg/matrix.hh"
#include "mlstat/analysispath.hh"
#include "mlstat/correlation.hh"
#include "mlstat/hca.hh"
#include "mlstat/ols.hh"
#include "mlstat/stepwise.hh"
#include "util/random.hh"

using namespace gemstone;
using namespace gemstone::mlstat;

namespace {

/** Scoped analysis-path override, always reset on exit. */
struct PathGuard
{
    explicit PathGuard(AnalysisPath path)
    {
        setAnalysisPathOverride(path);
    }
    ~PathGuard()
    {
        setAnalysisPathOverride(AnalysisPath::Fast, true);
    }
};

std::vector<Candidate>
makeCandidates(Rng &rng, std::size_t count, std::size_t n,
               std::size_t factors = 5)
{
    std::vector<std::vector<double>> latent(
        factors, std::vector<double>(n));
    for (auto &f : latent)
        for (double &v : f)
            v = rng.gaussian();

    std::vector<Candidate> candidates;
    for (std::size_t c = 0; c < count; ++c) {
        Candidate cand;
        cand.name = "cand" + std::to_string(c);
        cand.values.resize(n);
        std::vector<double> weights(factors);
        for (double &w : weights)
            w = rng.gaussian();
        for (std::size_t t = 0; t < n; ++t) {
            double v = 0.0;
            for (std::size_t f = 0; f < factors; ++f)
                v += weights[f] * latent[f][t];
            cand.values[t] = v + 0.4 * rng.gaussian();
        }
        candidates.push_back(std::move(cand));
    }
    return candidates;
}

std::vector<double>
makeResponse(Rng &rng, const std::vector<Candidate> &candidates,
             std::size_t terms)
{
    const std::size_t n = candidates.front().values.size();
    std::vector<double> response(n, 0.0);
    for (std::size_t k = 0; k < terms; ++k) {
        std::size_t pick = rng.uniformInt(candidates.size());
        double weight = rng.uniform(0.5, 2.0);
        for (std::size_t t = 0; t < n; ++t)
            response[t] += weight * candidates[pick].values[t];
    }
    for (double &v : response)
        v += 0.3 * rng.gaussian();
    return response;
}

void
expectStepwiseEqual(const StepwiseResult &ref,
                    const StepwiseResult &fast)
{
    ASSERT_EQ(ref.selected, fast.selected);
    ASSERT_EQ(ref.names, fast.names);
    ASSERT_EQ(ref.fit.ok, fast.fit.ok);
    EXPECT_NEAR(ref.fit.r2, fast.fit.r2, 1e-9);
    ASSERT_EQ(ref.fit.beta.size(), fast.fit.beta.size());
    for (std::size_t c = 0; c < ref.fit.beta.size(); ++c)
        EXPECT_NEAR(ref.fit.beta[c], fast.fit.beta[c], 1e-9);
    ASSERT_EQ(ref.r2Trajectory.size(), fast.r2Trajectory.size());
    for (std::size_t s = 0; s < ref.r2Trajectory.size(); ++s)
        EXPECT_NEAR(ref.r2Trajectory[s], fast.r2Trajectory[s], 1e-9);
}

void
expectHcaEqual(const HcaResult &ref, const HcaResult &fast)
{
    ASSERT_EQ(ref.leafCount, fast.leafCount);
    ASSERT_EQ(ref.merges.size(), fast.merges.size());
    for (std::size_t m = 0; m < ref.merges.size(); ++m) {
        EXPECT_EQ(ref.merges[m].left, fast.merges[m].left)
            << "merge " << m;
        EXPECT_EQ(ref.merges[m].right, fast.merges[m].right)
            << "merge " << m;
        EXPECT_EQ(ref.merges[m].size, fast.merges[m].size)
            << "merge " << m;
        EXPECT_NEAR(ref.merges[m].height, fast.merges[m].height, 1e-9)
            << "merge " << m;
    }
    EXPECT_EQ(ref.leafOrder(), fast.leafOrder());
    EXPECT_EQ(ref.cutToClusters(4), fast.cutToClusters(4));
}

} // namespace

// ---------------------------------------------------------------
// Stepwise: fast vs reference
// ---------------------------------------------------------------

TEST(StepwiseFast, MatchesReferenceOnRandomProblems)
{
    Rng rng(0x57E9ULL);
    for (int trial = 0; trial < 8; ++trial) {
        std::vector<Candidate> candidates =
            makeCandidates(rng, 30, 120);
        std::vector<double> response =
            makeResponse(rng, candidates, 3 + trial % 4);
        StepwiseConfig config;
        config.maxTerms = 6;

        StepwiseResult ref =
            stepwiseForwardReference(candidates, response, config);
        StepwiseResult fast =
            stepwiseForwardFast(candidates, response, config);
        ASSERT_FALSE(ref.selected.empty()) << "trial " << trial;
        expectStepwiseEqual(ref, fast);
    }
}

TEST(StepwiseFast, MatchesReferenceOnStructuredProblem)
{
    // A response that is exactly three candidates plus small noise:
    // the selection must find them, on both paths, in the same order.
    Rng rng(0xBEEFULL);
    std::vector<Candidate> candidates = makeCandidates(rng, 40, 200);
    std::vector<double> response(200, 0.0);
    for (std::size_t t = 0; t < 200; ++t) {
        response[t] = 2.0 * candidates[7].values[t] -
                      1.5 * candidates[19].values[t] +
                      0.8 * candidates[31].values[t] +
                      0.05 * rng.gaussian();
    }
    StepwiseConfig config;
    StepwiseResult ref =
        stepwiseForwardReference(candidates, response, config);
    StepwiseResult fast =
        stepwiseForwardFast(candidates, response, config);
    // Parity is the contract; the absolute fit only needs to show the
    // selection found real structure (candidates share latent factors,
    // so fewer terms can explain most of the response).
    expectStepwiseEqual(ref, fast);
    EXPECT_GE(fast.selected.size(), 2u);
    EXPECT_GT(fast.fit.r2, 0.9);
}

TEST(StepwiseFast, JobsCountDoesNotChangeResults)
{
    Rng rng(0x10B5ULL);
    std::vector<Candidate> candidates = makeCandidates(rng, 25, 100);
    std::vector<double> response = makeResponse(rng, candidates, 4);

    StepwiseConfig serial;
    serial.jobs = 1;
    StepwiseConfig parallel = serial;
    parallel.jobs = 8;

    StepwiseResult one =
        stepwiseForwardFast(candidates, response, serial);
    StepwiseResult many =
        stepwiseForwardFast(candidates, response, parallel);
    ASSERT_EQ(one.selected, many.selected);
    ASSERT_EQ(one.fit.beta.size(), many.fit.beta.size());
    for (std::size_t c = 0; c < one.fit.beta.size(); ++c)
        EXPECT_EQ(one.fit.beta[c], many.fit.beta[c]);  // bit-identical
    EXPECT_EQ(one.fit.r2, many.fit.r2);
}

TEST(StepwiseFast, DegenerateInputsMatchReference)
{
    Rng rng(0xD6ULL);
    std::vector<Candidate> candidates = makeCandidates(rng, 12, 60);

    // Constant candidate: skipped by both paths.
    candidates[3].values.assign(60, 4.2);
    // Exact duplicate: perfectly collinear with candidate 5 — the
    // collinearity guard must reject it identically on both paths.
    candidates[8] = candidates[5];
    candidates[8].name = "dup-of-5";

    std::vector<double> response = makeResponse(rng, candidates, 3);
    StepwiseConfig config;
    config.excluded.insert("cand2");

    StepwiseResult ref =
        stepwiseForwardReference(candidates, response, config);
    StepwiseResult fast =
        stepwiseForwardFast(candidates, response, config);
    expectStepwiseEqual(ref, fast);
    for (const std::string &name : fast.names) {
        EXPECT_NE(name, "cand2");
        EXPECT_NE(name, "cand3");
    }

    // Constant response: R2 convention (1.0) must agree.
    std::vector<double> flat(60, 7.0);
    expectStepwiseEqual(
        stepwiseForwardReference(candidates, flat, config),
        stepwiseForwardFast(candidates, flat, config));

    // Fewer observations than would-be predictors: both paths stop
    // at the same (possibly empty) selection without failing.
    std::vector<Candidate> tiny = makeCandidates(rng, 10, 4);
    std::vector<double> tiny_response = makeResponse(rng, tiny, 2);
    expectStepwiseEqual(
        stepwiseForwardReference(tiny, tiny_response, config),
        stepwiseForwardFast(tiny, tiny_response, config));
}

// ---------------------------------------------------------------
// HCA: nearest-neighbour chain vs greedy min-scan
// ---------------------------------------------------------------

TEST(HcaFast, MatchesReferenceAcrossLinkagesAndMetrics)
{
    Rng rng(0xAC1AULL);
    std::vector<std::vector<double>> series;
    for (std::size_t s = 0; s < 48; ++s) {
        std::vector<double> v(80);
        for (double &x : v)
            x = rng.gaussian();
        series.push_back(std::move(v));
    }
    const linalg::Matrix metrics[] = {
        correlationDistances(series),
        euclideanDistances(series, true),
    };
    const Linkage linkages[] = {Linkage::Single, Linkage::Complete,
                                Linkage::Average};
    for (const linalg::Matrix &distances : metrics) {
        for (Linkage linkage : linkages) {
            expectHcaEqual(agglomerateReference(distances, linkage),
                           agglomerateNnChain(distances, linkage));
        }
    }
}

TEST(HcaFast, TinyInputs)
{
    linalg::Matrix one(1, 1);
    EXPECT_EQ(agglomerateNnChain(one).merges.size(), 0u);

    linalg::Matrix two(2, 2);
    two.at(0, 1) = two.at(1, 0) = 3.5;
    expectHcaEqual(agglomerateReference(two),
                   agglomerateNnChain(two));
}

TEST(HcaFast, DistanceHelpersAreJobsInvariant)
{
    Rng rng(0xD157ULL);
    std::vector<std::vector<double>> series;
    for (std::size_t s = 0; s < 20; ++s) {
        std::vector<double> v(50);
        for (double &x : v)
            x = rng.gaussian();
        series.push_back(std::move(v));
    }
    linalg::Matrix corr1 = correlationDistances(series, 1);
    linalg::Matrix corr8 = correlationDistances(series, 8);
    linalg::Matrix euc1 = euclideanDistances(series, true, 1);
    linalg::Matrix euc8 = euclideanDistances(series, true, 8);
    for (std::size_t r = 0; r < series.size(); ++r) {
        for (std::size_t c = 0; c < series.size(); ++c) {
            EXPECT_EQ(corr1.at(r, c), corr8.at(r, c));
            EXPECT_EQ(euc1.at(r, c), euc8.at(r, c));
        }
    }
}

// ---------------------------------------------------------------
// Correlation matrix / VIF: parallel parity with scalar kernels
// ---------------------------------------------------------------

TEST(CorrelationFast, MatrixMatchesPairwisePearsonExactly)
{
    Rng rng(0xC0ULL);
    std::vector<std::vector<double>> series;
    for (std::size_t s = 0; s < 15; ++s) {
        std::vector<double> v(64);
        for (double &x : v)
            x = rng.gaussian();
        series.push_back(std::move(v));
    }
    series[4].assign(64, 1.0);  // constant: pearson convention 0.0

    linalg::Matrix m1 = correlationMatrix(series, 1);
    linalg::Matrix m8 = correlationMatrix(series, 8);
    for (std::size_t a = 0; a < series.size(); ++a) {
        for (std::size_t b = 0; b < series.size(); ++b) {
            // The diagonal is 1.0 by definition (pairwise pearson
            // degenerates to 0.0 on the constant series).
            double expected = a == b
                ? 1.0
                : pearson(series[a], series[b]);
            EXPECT_EQ(m1.at(a, b), expected);
            EXPECT_EQ(m1.at(a, b), m8.at(a, b));
        }
    }
}

TEST(CorrelationFast, VarianceInflationIsJobsInvariant)
{
    Rng rng(0xF1ULL);
    std::vector<std::vector<double>> predictors;
    for (std::size_t p = 0; p < 8; ++p) {
        std::vector<double> v(40);
        for (double &x : v)
            x = rng.gaussian();
        predictors.push_back(std::move(v));
    }
    std::vector<double> v1 = varianceInflation(predictors, 1);
    std::vector<double> v8 = varianceInflation(predictors, 8);
    ASSERT_EQ(v1.size(), v8.size());
    for (std::size_t p = 0; p < v1.size(); ++p)
        EXPECT_EQ(v1[p], v8[p]);
}

// ---------------------------------------------------------------
// Blocked linalg kernels: bit-identical to reference loops
// ---------------------------------------------------------------

TEST(LinalgFast, BlockedKernelsBitIdenticalToReference)
{
    Rng rng(0x11ULL);
    const struct { std::size_t m, k, n; } shapes[] = {
        {1, 1, 1}, {3, 5, 2}, {63, 64, 65}, {130, 70, 257},
    };
    for (const auto &shape : shapes) {
        linalg::Matrix a(shape.m, shape.k);
        linalg::Matrix b(shape.k, shape.n);
        for (std::size_t r = 0; r < shape.m; ++r)
            for (std::size_t c = 0; c < shape.k; ++c)
                a.at(r, c) = rng.gaussian();
        for (std::size_t r = 0; r < shape.k; ++r)
            for (std::size_t c = 0; c < shape.n; ++c)
                b.at(r, c) = rng.gaussian();

        linalg::Matrix fast = a.multiply(b);
        linalg::Matrix ref = linalg::multiplyReference(a, b);
        ASSERT_EQ(fast.rows(), ref.rows());
        ASSERT_EQ(fast.cols(), ref.cols());
        for (std::size_t r = 0; r < ref.rows(); ++r)
            for (std::size_t c = 0; c < ref.cols(); ++c)
                ASSERT_EQ(fast.at(r, c), ref.at(r, c));

        linalg::Matrix gram_fast = a.gram();
        linalg::Matrix gram_ref = linalg::gramReference(a);
        for (std::size_t r = 0; r < gram_ref.rows(); ++r)
            for (std::size_t c = 0; c < gram_ref.cols(); ++c)
                ASSERT_EQ(gram_fast.at(r, c), gram_ref.at(r, c));
    }
}

// ---------------------------------------------------------------
// Dispatch: programmatic override beats the environment
// ---------------------------------------------------------------

TEST(AnalysisPath, OverrideControlsDispatch)
{
    Rng rng(0xD15ULL);
    std::vector<Candidate> candidates = makeCandidates(rng, 10, 50);
    std::vector<double> response = makeResponse(rng, candidates, 2);
    StepwiseConfig config;

    {
        PathGuard guard(AnalysisPath::Reference);
        EXPECT_EQ(defaultAnalysisPath(), AnalysisPath::Reference);
        expectStepwiseEqual(
            stepwiseForward(candidates, response, config),
            stepwiseForwardReference(candidates, response, config));
    }
    {
        PathGuard guard(AnalysisPath::Fast);
        EXPECT_EQ(defaultAnalysisPath(), AnalysisPath::Fast);
        expectStepwiseEqual(
            stepwiseForward(candidates, response, config),
            stepwiseForwardFast(candidates, response, config));
    }
}
