/**
 * @file
 * Tests of the report generator (the full automated flow).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "gemstone/report.hh"
#include "util/csv.hh"

using namespace gemstone;
using namespace gemstone::core;

namespace {

class ReportFlow : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        RunnerConfig config;
        runner = new ExperimentRunner(config);
        ReportConfig report_config;
        report_config.cluster = hwsim::CpuCluster::BigA15;
        report_config.includePower = true;
        report_config.includeDvfs = false;  // keep the test fast
        report = new Report(
            generateReport(*runner, report_config));
    }
    static void TearDownTestSuite()
    {
        delete report;
        delete runner;
    }
    static ExperimentRunner *runner;
    static Report *report;
};

ExperimentRunner *ReportFlow::runner = nullptr;
Report *ReportFlow::report = nullptr;

} // namespace

TEST_F(ReportFlow, ContainsEveryAnalysis)
{
    EXPECT_EQ(report->validation.records.size(), 45u * 4u);
    EXPECT_EQ(report->clustering.workloads.size(), 45u);
    EXPECT_FALSE(report->pmcCorrelation.events.empty());
    EXPECT_FALSE(report->g5Correlation.events.empty());
    EXPECT_FALSE(report->pmcRegression.selectedNames.empty());
    EXPECT_FALSE(report->eventComparison.empty());
    EXPECT_TRUE(report->hasPower);
    EXPECT_FALSE(report->hasDvfs);
    EXPECT_FALSE(report->powerModel.events.empty());
}

TEST_F(ReportFlow, TextRenderingMentionsKeySections)
{
    std::ostringstream os;
    report->writeText(os);
    std::string text = os.str();
    for (const char *needle :
         {"Execution-time error", "Workload clusters",
          "PMC correlation", "Stepwise regression",
          "Matched-event comparison", "Branch prediction accuracy",
          "Power & energy", "Run-time power equations"}) {
        EXPECT_NE(text.find(needle), std::string::npos)
            << "missing section: " << needle;
    }
}

TEST_F(ReportFlow, WritesArtefactFiles)
{
    std::string dir = std::filesystem::temp_directory_path() /
        "gemstone-report-test";
    std::filesystem::remove_all(dir);
    std::size_t files = writeReportFiles(*report, dir);
    EXPECT_GE(files, 6u);
    for (const char *name :
         {"report.txt", "validation.csv", "clusters.csv",
          "pmc_correlation.csv", "event_comparison.csv",
          "hw_pmcs.csv", "power_model.txt"}) {
        EXPECT_TRUE(std::filesystem::exists(
            std::filesystem::path(dir) / name))
            << name;
    }

    // The validation CSV has one row per record plus a header and
    // the trailing integrity marker of the atomic writer.
    std::ifstream csv(std::filesystem::path(dir) /
                      "validation.csv");
    std::size_t lines = 0;
    std::string line;
    std::string last;
    while (std::getline(csv, line)) {
        ++lines;
        last = line;
    }
    EXPECT_EQ(lines, 2u + report->validation.records.size());
    EXPECT_EQ(last, kCsvIntegrityMarker);
    std::filesystem::remove_all(dir);
}

TEST_F(ReportFlow, HeadlineNumbersInPaperBands)
{
    // The report runs all four DVFS points: the all-points error
    // matches the paper's headline (-51% / 59%) within bands.
    EXPECT_LT(report->validation.execMpe(), -0.30);
    EXPECT_GT(report->validation.execMape(), 0.40);
    EXPECT_LT(report->powerEnergy.powerMape, 0.2);
    EXPECT_GT(report->powerEnergy.energyMape,
              report->powerEnergy.powerMape);
}
