/**
 * @file
 * Bit-identity of the batched multi-config engine against the
 * standalone fast engine: every per-point RunResult of a
 * BatchedSystemModel — cycles, full EventCounts, per-core records —
 * must be byte-identical to running that point's config alone on a
 * fresh ClusterModel, at every batch width and thread count. Also
 * covers the arena-reuse identity across *different* configs (a
 * reset arena re-carves every probe-hint and last-translation table
 * bit-identically to fresh construction) and the zero-steady-state-
 * allocation contract of the batched model.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "hwsim/platform.hh"
#include "g5/config.hh"
#include "uarch/batch.hh"
#include "uarch/core.hh"
#include "uarch/system.hh"
#include "util/arena.hh"
#include "workload/kernels.hh"
#include "workload/workload.hh"

using namespace gemstone;
using workload::Workload;

namespace {

/** Full bit-identity of two runs: cycles and every event count. */
void
expectRunsIdentical(const uarch::RunResult &expected,
                    const uarch::RunResult &actual,
                    const std::string &context)
{
    SCOPED_TRACE(context);
    // Exact double equality is intentional: the contract is
    // bit-identical, not approximately equal.
    EXPECT_EQ(expected.cycles, actual.cycles);
    EXPECT_EQ(expected.seconds, actual.seconds);
    EXPECT_EQ(expected.frequencyGhz, actual.frequencyGhz);
    EXPECT_EQ(expected.instructions, actual.instructions);
    EXPECT_EQ(expected.aggregate.toMap(), actual.aggregate.toMap());
    ASSERT_EQ(expected.perCore.size(), actual.perCore.size());
    for (std::size_t i = 0; i < expected.perCore.size(); ++i)
        EXPECT_EQ(expected.perCore[i].toMap(),
                  actual.perCore[i].toMap())
            << "core " << i;
}

/** Run one point standalone on a fresh fast-engine cluster. */
uarch::RunResult
runStandalone(const uarch::BatchPoint &point, const Workload &work)
{
    uarch::ClusterModel cluster(point.config);
    cluster.setExecEngine(uarch::ExecEngine::Fast);
    work.prepareMemory(cluster.memory());
    return cluster.run(work.program, work.numThreads, point.freqGhz);
}

/**
 * The core identity check: a batched run over @p points must equal
 * the per-point standalone runs, point for point.
 */
void
expectBatchIdentical(const std::vector<uarch::BatchPoint> &points,
                     const Workload &work, const std::string &context)
{
    SCOPED_TRACE(context);
    uarch::BatchedSystemModel batched(points);
    work.prepareMemory(batched.memory());
    std::vector<uarch::RunResult> results =
        batched.run(work.program, work.numThreads);
    ASSERT_EQ(results.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        expectRunsIdentical(runStandalone(points[i], work),
                            results[i],
                            "point " + std::to_string(i) + " ("
                                + points[i].config.name + " @ "
                                + std::to_string(points[i].freqGhz)
                                + " GHz)");
    }
}

/** The two hardware cluster shapes with a shared functional surface. */
uarch::ClusterConfig
bigConfig(std::uint64_t mem_bytes)
{
    uarch::ClusterConfig config = hwsim::trueBigConfig();
    config.memBytes = mem_bytes;
    return config;
}

uarch::ClusterConfig
littleConfig(std::uint64_t mem_bytes)
{
    uarch::ClusterConfig config = hwsim::trueLittleConfig();
    config.memBytes = mem_bytes;
    return config;
}

std::uint64_t
memBytesFor(const Workload &work)
{
    return std::max<std::uint64_t>(work.memBytes, 64 * 1024);
}

/** An 8-point OPP grid: both shapes x four frequencies each. */
std::vector<uarch::BatchPoint>
oppGrid8(std::uint64_t mem_bytes)
{
    std::vector<uarch::BatchPoint> points;
    for (double mhz : {200.0, 600.0, 1000.0, 1400.0})
        points.push_back({littleConfig(mem_bytes), mhz / 1000.0});
    for (double mhz : {600.0, 1000.0, 1400.0, 1800.0})
        points.push_back({bigConfig(mem_bytes), mhz / 1000.0});
    return points;
}

} // namespace

// ---------------------------------------------------------------------
// Lane grouping
// ---------------------------------------------------------------------

TEST(BatchGrouping, IdenticalConfigsShareALane)
{
    std::vector<uarch::BatchPoint> points = oppGrid8(64 * 1024);
    uarch::BatchedSystemModel batched(points);
    EXPECT_EQ(batched.numPoints(), 8u);
    EXPECT_EQ(batched.numLanes(), 2u);  // A7 + A15 shapes
}

TEST(BatchGrouping, ConfigSignatureSeparatesDifferingConfigs)
{
    uarch::ClusterConfig a = bigConfig(64 * 1024);
    uarch::ClusterConfig b = a;
    EXPECT_EQ(uarch::clusterConfigSignature(a),
              uarch::clusterConfigSignature(b));
    b.core.latIntMul += 1.0;
    EXPECT_NE(uarch::clusterConfigSignature(a),
              uarch::clusterConfigSignature(b));
    b = a;
    b.core.l1d.assoc *= 2;
    EXPECT_NE(uarch::clusterConfigSignature(a),
              uarch::clusterConfigSignature(b));
}

// ---------------------------------------------------------------------
// Bit-identity vs the standalone engine, across batch widths
// ---------------------------------------------------------------------

TEST(BatchIdentity, Width1SingleThreaded)
{
    Workload work = workload::kernels::makeCrc("b-crc", "test", 1024,
                                               12);
    std::vector<uarch::BatchPoint> points = {
        {bigConfig(memBytesFor(work)), 1.0}};
    expectBatchIdentical(points, work, "width 1");
}

TEST(BatchIdentity, Width2TwoConfigsOneFrequency)
{
    // The campaign prewarm shape: the hardware config and the g5
    // config of the same cluster, both at the 1.0 GHz base frequency.
    Workload work = workload::kernels::makeMatMul("b-matmul", "test",
                                                  20, 3);
    std::uint64_t mem = memBytesFor(work);
    uarch::ClusterConfig g5cfg =
        g5::ex5Config(g5::G5Model::Ex5Big, 1);
    g5cfg.memBytes = mem;
    std::vector<uarch::BatchPoint> points = {{bigConfig(mem), 1.0},
                                             {g5cfg, 1.0}};
    expectBatchIdentical(points, work, "width 2, hw+g5");
}

TEST(BatchIdentity, Width8OppGridControlHeavy)
{
    // Branch-heavy: exercises per-lane predictors and the wrong-path
    // fetch/load injection staying strictly per-lane.
    Workload work = workload::kernels::makeBranchPattern(
        "b-branches", "test", 7, 60000, 0);
    expectBatchIdentical(oppGrid8(memBytesFor(work)), work,
                         "width 8, branch-pattern");
}

TEST(BatchIdentity, Width8OppGridMemoryHeavy)
{
    // Memory-heavy: exercises the frequency-dependent DRAM-to-cycles
    // scaling (the only place frequency enters the timing model) and
    // the unaligned cross-line second beat.
    Workload work = workload::kernels::makePointerChase(
        "b-chase", "test", 2048, 64, 80000);
    expectBatchIdentical(oppGrid8(memBytesFor(work)), work,
                         "width 8, pointer-chase");
}

TEST(BatchIdentity, Width8OppGridMultiThreaded)
{
    // Multi-threaded with LDREX/STREX contention: the driver must
    // reproduce the exact round-robin interleaving (STREX outcomes
    // depend on it) and the per-lane snoop traffic.
    Workload work = workload::kernels::makeSpinLock("b-spin", "test",
                                                    300, 4);
    expectBatchIdentical(oppGrid8(memBytesFor(work)), work,
                         "width 8, spinlock x4");
}

TEST(BatchIdentity, FrequencySublanesMatchPerFrequencyRuns)
{
    // One config, many frequencies: all sub-lanes share every
    // micro-architectural structure, yet each must reproduce its own
    // standalone run exactly.
    Workload work = workload::kernels::makeStreamCopy(
        "b-stream", "test", 8192, 20);
    std::uint64_t mem = memBytesFor(work);
    std::vector<uarch::BatchPoint> points;
    for (double f : {0.2, 0.6, 1.0, 1.4, 1.8})
        points.push_back({littleConfig(mem), f});
    uarch::BatchedSystemModel batched(points);
    EXPECT_EQ(batched.numLanes(), 1u);
    work.prepareMemory(batched.memory());
    std::vector<uarch::RunResult> results =
        batched.run(work.program, work.numThreads);
    for (std::size_t i = 0; i < points.size(); ++i)
        expectRunsIdentical(runStandalone(points[i], work),
                            results[i],
                            "sub-lane " + std::to_string(i));
}

// ---------------------------------------------------------------------
// Reuse: reset() identity and the zero-alloc steady state
// ---------------------------------------------------------------------

TEST(BatchReuse, ResetBatchedModelMatchesFreshBitIdentically)
{
    Workload work = workload::kernels::makeIntArith("b-int", "test",
                                                    30000, true);
    std::vector<uarch::BatchPoint> points =
        oppGrid8(memBytesFor(work));

    uarch::BatchedSystemModel fresh(points);
    work.prepareMemory(fresh.memory());
    std::vector<uarch::RunResult> baseline =
        fresh.run(work.program, work.numThreads);

    uarch::BatchedSystemModel reused(points);
    std::vector<uarch::RunResult> again;
    for (int round = 0; round < 3; ++round) {
        reused.reset();
        reused.memory().clear();
        work.prepareMemory(reused.memory());
        reused.runInto(work.program, work.numThreads, again);
        ASSERT_EQ(again.size(), baseline.size());
        for (std::size_t i = 0; i < baseline.size(); ++i)
            expectRunsIdentical(baseline[i], again[i],
                                "round " + std::to_string(round)
                                    + " point " + std::to_string(i));
    }
}

TEST(BatchReuse, WarmBatchedRunMakesZeroHeapAllocations)
{
    if (!mallocTallyActive())
        GTEST_SKIP() << "counting operator new not linked "
                        "(sanitizer build)";

    Workload work = workload::kernels::makeStreamCopy(
        "b-zeroalloc", "test", 512, 3);
    uarch::BatchedSystemModel batched(oppGrid8(memBytesFor(work)));

    // Warm-up: predecode fill, result-vector growth.
    std::vector<uarch::RunResult> results;
    work.prepareMemory(batched.memory());
    batched.runInto(work.program, work.numThreads, results);

    batched.reset();
    batched.memory().clear();
    work.prepareMemory(batched.memory());
    MallocTallySnapshot before = mallocTally();
    batched.runInto(work.program, work.numThreads, results);
    MallocTallySnapshot after = mallocTally();
    EXPECT_EQ(after.allocs - before.allocs, 0u)
        << "steady-state batched runInto must not touch the heap";
    EXPECT_EQ(after.bytes - before.bytes, 0u);
    EXPECT_GT(results.front().instructions, 0u);
}

// ---------------------------------------------------------------------
// Arena reuse across different configs: a reset arena must re-carve
// every table (including the cache probe hints and the TLB
// last-translation entries) bit-identically to fresh construction,
// even when the next tenant has a different shape.
// ---------------------------------------------------------------------

TEST(BatchArena, ArenaResetAcrossDifferentConfigsIsBitIdentical)
{
    Workload work = workload::kernels::makeDhrystone("b-dhry", "test",
                                                     4000);
    std::uint64_t mem = memBytesFor(work);
    uarch::ClusterConfig config_a = bigConfig(mem);
    uarch::ClusterConfig config_b = littleConfig(mem);

    std::vector<uarch::RunResult> expected;
    for (const uarch::ClusterConfig *config :
         {&config_a, &config_b}) {
        uarch::ClusterModel standalone(*config);
        work.prepareMemory(standalone.memory());
        expected.push_back(
            standalone.run(work.program, work.numThreads, 1.0));
    }

    // One arena, alternating tenants of different shapes: dirty the
    // arena with config A, rewind, hand it to config B (and back).
    // Any table whose initial bytes depend on what the previous
    // tenant left behind breaks the identity.
    Arena arena(1 << 20);
    for (int round = 0; round < 2; ++round) {
        {
            uarch::ClusterModel model_a(config_a, &arena);
            work.prepareMemory(model_a.memory());
            expectRunsIdentical(
                expected[0],
                model_a.run(work.program, work.numThreads, 1.0),
                "config A, arena round " + std::to_string(round));
        }
        arena.reset();
        {
            uarch::ClusterModel model_b(config_b, &arena);
            work.prepareMemory(model_b.memory());
            expectRunsIdentical(
                expected[1],
                model_b.run(work.program, work.numThreads, 1.0),
                "config B, arena round " + std::to_string(round));
        }
        arena.reset();
    }
}

TEST(BatchArena, BatchedModelOnRewoundArenaMatchesFresh)
{
    Workload work = workload::kernels::makeCallTree("b-calls", "test",
                                                    5, 4000);
    std::vector<uarch::BatchPoint> points =
        oppGrid8(memBytesFor(work));

    uarch::BatchedSystemModel fresh(points);
    work.prepareMemory(fresh.memory());
    std::vector<uarch::RunResult> baseline =
        fresh.run(work.program, work.numThreads);

    // Dirty the arena with a different batch shape first, then rewind
    // and rebuild the real batch on it.
    Arena arena(1 << 20);
    {
        std::vector<uarch::BatchPoint> other = {
            {littleConfig(points.front().config.memBytes), 1.0}};
        uarch::BatchedSystemModel scratch(other, &arena);
        work.prepareMemory(scratch.memory());
        scratch.run(work.program, work.numThreads);
    }
    arena.reset();
    {
        uarch::BatchedSystemModel rebuilt(points, &arena);
        work.prepareMemory(rebuilt.memory());
        std::vector<uarch::RunResult> results =
            rebuilt.run(work.program, work.numThreads);
        ASSERT_EQ(results.size(), baseline.size());
        for (std::size_t i = 0; i < baseline.size(); ++i)
            expectRunsIdentical(baseline[i], results[i],
                                "rewound-arena point "
                                    + std::to_string(i));
    }
}
