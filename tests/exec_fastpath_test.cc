/**
 * @file
 * Bit-identity of the predecoded fast execution engine against the
 * reference interpreter: cycles, full EventCounts, platform PMC
 * readings (with and without fault injection), campaign checkpoint
 * bytes at any thread count, and cooperative cancellation behaviour
 * must all be indistinguishable between the two engines.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "gemstone/campaign.hh"
#include "gemstone/runner.hh"
#include "hwsim/faults.hh"
#include "hwsim/platform.hh"
#include "isa/program.hh"
#include "uarch/core.hh"
#include "uarch/system.hh"
#include "util/arena.hh"
#include "util/cancellation.hh"
#include "workload/kernels.hh"
#include "workload/workload.hh"

using namespace gemstone;
using namespace gemstone::core;
using workload::Suite;
using workload::Workload;

namespace {

/** Scoped process-wide engine override, always reset on exit. */
struct EngineGuard
{
    explicit EngineGuard(uarch::ExecEngine e)
    {
        uarch::setExecEngineOverride(e);
    }
    ~EngineGuard()
    {
        uarch::setExecEngineOverride(uarch::ExecEngine::Fast, true);
    }
};

/** Run one program on a fresh cluster with the given engine. */
uarch::RunResult
runWith(uarch::ExecEngine engine, const uarch::ClusterConfig &config,
        const Workload &work)
{
    uarch::ClusterModel cluster(config);
    cluster.setExecEngine(engine);
    work.prepareMemory(cluster.memory());
    return cluster.run(work.program, work.numThreads, 1.0);
}

/** Full bit-identity of two runs: cycles and every event count. */
void
expectRunsIdentical(const uarch::RunResult &reference,
                    const uarch::RunResult &fast, const char *context)
{
    SCOPED_TRACE(context);
    // Exact double equality is intentional: the contract is
    // bit-identical, not approximately equal.
    EXPECT_EQ(reference.cycles, fast.cycles);
    EXPECT_EQ(reference.instructions, fast.instructions);
    EXPECT_EQ(reference.aggregate.toMap(), fast.aggregate.toMap());
    ASSERT_EQ(reference.perCore.size(), fast.perCore.size());
    for (std::size_t i = 0; i < reference.perCore.size(); ++i)
        EXPECT_EQ(reference.perCore[i].toMap(),
                  fast.perCore[i].toMap())
            << "core " << i;
}

/** Both engines on both cluster shapes for one workload. */
void
crossValidate(const Workload &work)
{
    uarch::ClusterConfig big = hwsim::trueBigConfig();
    big.memBytes = std::max<std::uint64_t>(work.memBytes, 64 * 1024);
    expectRunsIdentical(
        runWith(uarch::ExecEngine::Reference, big, work),
        runWith(uarch::ExecEngine::Fast, big, work), "A15 config");

    uarch::ClusterConfig little = hwsim::trueLittleConfig();
    little.memBytes = big.memBytes;
    expectRunsIdentical(
        runWith(uarch::ExecEngine::Reference, little, work),
        runWith(uarch::ExecEngine::Fast, little, work), "A7 config");
}

/** Wrap a raw program into a runnable workload. */
Workload
wrapProgram(isa::Program program, unsigned threads = 1)
{
    Workload work;
    work.name = program.name;
    work.suite = "test";
    work.program = std::move(program);
    work.numThreads = threads;
    work.memBytes = 64 * 1024;
    return work;
}

/** One faulted campaign with the given engine and thread count. */
CampaignResult
faultedCampaign(uarch::ExecEngine engine, unsigned jobs)
{
    EngineGuard guard(engine);
    ExperimentRunner runner{RunnerConfig{}};
    runner.platform().injectFaults(hwsim::FaultConfig::labMix());
    CampaignConfig policy;
    policy.jobs = jobs;
    CampaignEngine campaign(runner, policy);
    return campaign.runValidation(hwsim::CpuCluster::BigA15,
                                  {1000.0});
}

} // namespace

// ---------------------------------------------------------------------
// Engine selection plumbing
// ---------------------------------------------------------------------

TEST(ExecEngineSelection, EnvVarSelectsReferenceEngine)
{
    ASSERT_EQ(uarch::defaultExecEngine(), uarch::ExecEngine::Fast);

    ::setenv("GEMSTONE_REFERENCE_EXEC", "1", 1);
    EXPECT_EQ(uarch::defaultExecEngine(),
              uarch::ExecEngine::Reference);
    ::setenv("GEMSTONE_REFERENCE_EXEC", "0", 1);
    EXPECT_EQ(uarch::defaultExecEngine(), uarch::ExecEngine::Fast);
    ::setenv("GEMSTONE_REFERENCE_EXEC", "yes", 1);
    EXPECT_EQ(uarch::defaultExecEngine(),
              uarch::ExecEngine::Reference);

    // The programmatic override wins over the environment.
    {
        EngineGuard guard(uarch::ExecEngine::Fast);
        EXPECT_EQ(uarch::defaultExecEngine(),
                  uarch::ExecEngine::Fast);
    }
    ::unsetenv("GEMSTONE_REFERENCE_EXEC");
    EXPECT_EQ(uarch::defaultExecEngine(), uarch::ExecEngine::Fast);
}

TEST(ExecEngineSelection, CoresInheritTheDefaultAtConstruction)
{
    EngineGuard guard(uarch::ExecEngine::Reference);
    uarch::ClusterConfig config = hwsim::trueLittleConfig();
    config.memBytes = 64 * 1024;
    uarch::ClusterModel cluster(config);
    for (const auto &core : cluster.cores())
        EXPECT_EQ(core->execEngine(), uarch::ExecEngine::Reference);
    cluster.setExecEngine(uarch::ExecEngine::Fast);
    for (const auto &core : cluster.cores())
        EXPECT_EQ(core->execEngine(), uarch::ExecEngine::Fast);
}

// ---------------------------------------------------------------------
// Directed edge cases: programs chosen to stress predecode block
// boundaries and flag-driven side effects.
// ---------------------------------------------------------------------

TEST(ExecFastpathEdges, StrexWithoutReservationFails)
{
    isa::ProgramBuilder b("strex-fail");
    b.movi(1, 64);
    b.movi(2, 7);
    b.movi(5, 200);
    b.label("loop");
    // STREX with no open reservation must fail (and charge the
    // failure cost) identically in both engines.
    b.strex(0, 2, 1);
    b.ldrex(3, 1);
    b.strex(0, 2, 1);   // succeeds: reservation open
    b.subi(5, 5, 1);
    b.bne(5, "loop");
    b.halt();
    crossValidate(wrapProgram(b.build()));
}

TEST(ExecFastpathEdges, UnalignedAndByteAccesses)
{
    isa::ProgramBuilder b("unaligned");
    b.movi(1, 129);     // odd base: 8-byte accesses are unaligned
    b.movi(5, 300);
    b.label("loop");
    b.ldr(2, 1, 0);
    b.str(2, 1, 8);
    b.ldrb(3, 1, 3);    // byte accesses are never unaligned
    b.strb(3, 1, 5);
    b.subi(5, 5, 1);
    b.bne(5, "loop");
    b.halt();
    crossValidate(wrapProgram(b.build()));
}

TEST(ExecFastpathEdges, DivisionEdgeCases)
{
    isa::ProgramBuilder b("div-edges");
    b.movi(1, -9223372036854775807LL - 1);  // INT64_MIN
    b.movi(2, -1);
    b.movi(3, 0);
    b.movi(4, 7);
    b.movi(5, 150);
    b.label("loop");
    b.divr(6, 1, 2);    // INT64_MIN / -1 overflow case
    b.divr(7, 4, 3);    // divide by zero
    b.divr(8, 1, 4);
    b.fmovi(9, 1.0);
    b.fmovi(10, 0.0);
    b.fdiv(11, 9, 10);  // FP divide by zero -> inf
    b.subi(5, 5, 1);
    b.bne(5, "loop");
    b.halt();
    crossValidate(wrapProgram(b.build()));
}

TEST(ExecFastpathEdges, IndirectBranchIntoMidBlock)
{
    // A computed branch landing in the middle of a straight-line
    // stretch: the fast engine must execute the tail of the block
    // from an address that is not a block leader.
    isa::ProgramBuilder b("mid-block-entry");
    b.movi(5, 400);
    b.movi(6, 0);
    b.label("loop");
    b.movi(7, 1);
    b.andr(7, 6, 7);
    b.lsl(7, 7, 1);     // offset 0 or 2 by parity of r6
    b.movi(9, 8);       // landing-area base (asserted below)
    b.add(9, 9, 7);
    b.bidx(9);
    ASSERT_EQ(b.here(), 8u);  // keep the movi above in sync
    b.add(10, 6, 5);    // landing +0: a stretch leader
    b.sub(10, 10, 6);
    b.eor(10, 10, 5);   // landing +2: mid-stretch entry
    b.orr(10, 10, 6);
    b.addi(6, 6, 1);
    b.subi(5, 5, 1);
    b.bne(5, "loop");
    b.halt();
    crossValidate(wrapProgram(b.build()));
}

TEST(ExecFastpathEdges, CallReturnAndBarriers)
{
    isa::ProgramBuilder b("call-ret-sync");
    b.movi(5, 120);
    b.label("loop");
    b.bl("leaf");
    b.dmb();
    b.isb();
    b.subi(5, 5, 1);
    b.bne(5, "loop");
    b.halt();
    b.label("leaf");
    b.addi(0, 0, 1);
    b.ret();
    crossValidate(wrapProgram(b.build()));
}

TEST(ExecFastpathEdges, MultiThreadedSharedCounter)
{
    // LDREX/STREX contention across cores: strex failures depend on
    // the exact round-robin interleaving, which the quantum-preserving
    // fast engine must reproduce.
    Workload work = workload::kernels::makeSpinLock(
        "fastpath-spin", "test", 400, 4);
    crossValidate(work);
}

// ---------------------------------------------------------------------
// Full-suite cross-validation: every workload kernel, both cluster
// shapes, exact equality of cycles and every event count.
// ---------------------------------------------------------------------

class EveryWorkloadBitIdentical
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(EveryWorkloadBitIdentical, FastMatchesReference)
{
    crossValidate(Suite::all()[GetParam()]);
}

INSTANTIATE_TEST_SUITE_P(
    All, EveryWorkloadBitIdentical,
    ::testing::Range<std::size_t>(0, 65),
    [](const ::testing::TestParamInfo<std::size_t> &info) {
        std::string name = Suite::all()[info.param].name;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

// ---------------------------------------------------------------------
// Platform level: PMC readings, timing medians and power must be
// bit-identical, with and without fault injection.
// ---------------------------------------------------------------------

namespace {

void
expectMeasurementsIdentical(const hwsim::HwMeasurement &reference,
                            const hwsim::HwMeasurement &fast)
{
    SCOPED_TRACE(reference.workload);
    EXPECT_EQ(reference.execSeconds, fast.execSeconds);
    EXPECT_EQ(reference.repeatSeconds, fast.repeatSeconds);
    EXPECT_EQ(reference.pmc, fast.pmc);
    EXPECT_EQ(reference.powerWatts, fast.powerWatts);
    EXPECT_EQ(reference.temperatureC, fast.temperatureC);
    EXPECT_EQ(reference.throttled, fast.throttled);
    EXPECT_EQ(reference.groundTruth.toMap(),
              fast.groundTruth.toMap());
}

hwsim::HwMeasurement
measureWith(uarch::ExecEngine engine, const Workload &work,
            hwsim::CpuCluster cluster, double freq_mhz,
            unsigned attempt, bool faults)
{
    EngineGuard guard(engine);
    hwsim::OdroidXu3Platform board;
    if (faults)
        board.injectFaults(hwsim::FaultConfig::labMix());
    return board.measureAttempt(work, cluster, freq_mhz, attempt, 3);
}

} // namespace

TEST(ExecFastpathPlatform, PmcAndPowerIdenticalAcrossEngines)
{
    for (const char *name : {"mi-crc32", "whetstone"}) {
        const Workload &work = Suite::byName(name);
        expectMeasurementsIdentical(
            measureWith(uarch::ExecEngine::Reference, work,
                        hwsim::CpuCluster::BigA15, 1000.0, 0, false),
            measureWith(uarch::ExecEngine::Fast, work,
                        hwsim::CpuCluster::BigA15, 1000.0, 0, false));
    }
}

TEST(ExecFastpathPlatform, FaultedMeasurementsIdenticalAcrossEngines)
{
    // Attempts that the fault planner fails must fail with the same
    // fault either way; attempts that succeed must be bit-identical.
    const Workload &work = Suite::byName("mi-crc32");
    auto attemptWith = [&](uarch::ExecEngine engine, unsigned attempt,
                           hwsim::HwMeasurement &out) -> std::string {
        try {
            out = measureWith(engine, work,
                              hwsim::CpuCluster::LittleA7, 600.0,
                              attempt, true);
            return {};
        } catch (const hwsim::RunError &error) {
            return error.what();
        }
    };
    unsigned successes = 0;
    unsigned faults = 0;
    for (unsigned attempt = 0; attempt < 6; ++attempt) {
        SCOPED_TRACE("attempt " + std::to_string(attempt));
        hwsim::HwMeasurement reference, fast;
        std::string reference_fault =
            attemptWith(uarch::ExecEngine::Reference, attempt,
                        reference);
        std::string fast_fault =
            attemptWith(uarch::ExecEngine::Fast, attempt, fast);
        EXPECT_EQ(reference_fault, fast_fault);
        if (reference_fault.empty() && fast_fault.empty()) {
            ++successes;
            expectMeasurementsIdentical(reference, fast);
        } else {
            ++faults;
        }
    }
    // The attempt window must exercise both outcomes.
    EXPECT_GT(successes, 0u);
    EXPECT_GT(faults, 0u);
}

// ---------------------------------------------------------------------
// Campaign level: the collated dataset (the checkpoint/CSV bytes)
// must be identical between engines at any thread count, under
// fault injection.
// ---------------------------------------------------------------------

TEST(ExecFastpathCampaign, CheckpointBytesIdenticalAtAnyJobCount)
{
    CampaignResult reference =
        faultedCampaign(uarch::ExecEngine::Reference, 1);
    // The fault mix must actually bite for this to prove anything.
    ASSERT_GT(reference.totalFailures + reference.totalRejected, 0u);

    CampaignResult fast_serial =
        faultedCampaign(uarch::ExecEngine::Fast, 1);
    CampaignResult fast_parallel =
        faultedCampaign(uarch::ExecEngine::Fast, 4);

    for (const CampaignResult *fast :
         {&fast_serial, &fast_parallel}) {
        EXPECT_EQ(reference.dataset.toCsv(), fast->dataset.toCsv());
        EXPECT_EQ(reference.measuredPoints, fast->measuredPoints);
        EXPECT_EQ(reference.totalAttempts, fast->totalAttempts);
        EXPECT_EQ(reference.totalFailures, fast->totalFailures);
        EXPECT_EQ(reference.totalRejected, fast->totalRejected);
        EXPECT_EQ(reference.warnings, fast->warnings);
    }
}

// ---------------------------------------------------------------------
// Cancellation: the fast engine must still reach the cooperative
// checkpoint at the same cadence (the poll sits on the scheduling
// round, and quantum boundaries are preserved exactly).
// ---------------------------------------------------------------------

TEST(ExecFastpathCancel, CancelStillLandsPromptly)
{
    Workload work = workload::kernels::makeWhetstone(
        "fastpath-cancel", "test", 4'000'000);
    uarch::ClusterConfig config = hwsim::trueBigConfig();
    config.memBytes = 64 * 1024;
    uarch::ClusterModel cluster(config);
    cluster.setExecEngine(uarch::ExecEngine::Fast);
    work.prepareMemory(cluster.memory());

    CancellationToken token;
    token.requestCancel();
    CoopScope scope(token, Deadline(), "fastpath-cancel");
    EXPECT_THROW(cluster.run(work.program, work.numThreads, 1.0),
                 CancelledError);
}

// ---------------------------------------------------------------------
// Arena-backed reuse: reset() identity and the zero-alloc contract
// ---------------------------------------------------------------------

TEST(ExecFastpathReuse, ResetModelMatchesFreshModelBitIdentically)
{
    Workload work = workload::kernels::makeStreamCopy(
        "t-reuse-stream", "test", 512, 3);
    uarch::ClusterConfig config = hwsim::trueBigConfig();
    config.memBytes = std::max<std::uint64_t>(work.memBytes, 64 * 1024);

    uarch::ClusterModel fresh(config);
    work.prepareMemory(fresh.memory());
    uarch::RunResult baseline =
        fresh.run(work.program, work.numThreads, 1.0);

    // One model, three consecutive runs through reset(): every rerun
    // must reproduce the fresh-model result exactly, or reset() is
    // leaking state between runs.
    uarch::ClusterModel reused(config);
    for (int round = 0; round < 3; ++round) {
        reused.reset();
        reused.memory().clear();
        work.prepareMemory(reused.memory());
        uarch::RunResult again;
        reused.runInto(work.program, work.numThreads, 1.0, again);
        expectRunsIdentical(baseline, again, "reset-vs-fresh round");
    }
}

TEST(ExecFastpathReuse, WarmQuantumLoopMakesZeroHeapAllocations)
{
    if (!mallocTallyActive())
        GTEST_SKIP() << "counting operator new not linked "
                        "(sanitizer build)";

    Workload work = workload::kernels::makeStreamCopy(
        "t-zeroalloc-stream", "test", 512, 3);
    uarch::ClusterConfig config = hwsim::trueBigConfig();
    config.memBytes = std::max<std::uint64_t>(work.memBytes, 64 * 1024);

    uarch::ClusterModel cluster(config);
    // Warm-up run: predecode cache fill, RunResult vector growth.
    cluster.reset();
    work.prepareMemory(cluster.memory());
    uarch::RunResult result;
    cluster.runInto(work.program, work.numThreads, 1.0, result);

    // Steady state: the whole simulated run — quantum loop, cache/TLB
    // machinery, result aggregation — must not touch the heap.
    cluster.reset();
    work.prepareMemory(cluster.memory());
    MallocTallySnapshot before = mallocTally();
    cluster.runInto(work.program, work.numThreads, 1.0, result);
    MallocTallySnapshot after = mallocTally();
    EXPECT_EQ(after.allocs - before.allocs, 0u)
        << "steady-state runInto must perform zero heap allocations";
    EXPECT_EQ(after.bytes - before.bytes, 0u);
    EXPECT_GT(result.instructions, 0u);
}
