#!/usr/bin/env bash
# End-to-end smoke test of the campaign service daemon, as CI runs it:
# boot gemstoned, serve >=4 concurrent client campaigns, byte-compare
# each against the one-shot CLI, prove the repeated request came from
# the shared store, then SIGTERM and require a graceful drain (exit 0,
# no orphaned socket).
#
# Usage: tests/serve_smoke.sh [BUILD_DIR]   (default: build)

set -euo pipefail

BUILD_DIR="${1:-build}"
TOOL="$BUILD_DIR/examples/gemstone_tool"
DAEMON="$BUILD_DIR/examples/gemstoned"
WORK="$(mktemp -d)"
SOCK="$WORK/gemstoned.sock"

SPEC_COMMON=(--cluster a7 --freq 1000 --repeats 2 --quorum 1
             --max-points 6 --quiet)

fail() { echo "serve_smoke: FAIL: $*" >&2; exit 1; }

cleanup() {
    [[ -n "${DAEMON_PID:-}" ]] && kill -9 "$DAEMON_PID" 2>/dev/null
    rm -rf "$WORK"
    return 0
}
trap cleanup EXIT

[[ -x "$TOOL" && -x "$DAEMON" ]] || fail "build $TOOL and $DAEMON first"

# Reference bytes: the one-shot CLI, one run per seed.
for seed in 1 2 3 4; do
    "$TOOL" campaign "${SPEC_COMMON[@]}" --seed "$seed" \
        --out "$WORK/ref_$seed.csv"
done

"$DAEMON" --socket "$SOCK" --max-active 4 >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 50); do [[ -S "$SOCK" ]] && break; sleep 0.1; done
[[ -S "$SOCK" ]] || fail "daemon never bound $SOCK"

# >=4 concurrent clients, one campaign each.
declare -a CLIENT_PIDS=()
for seed in 1 2 3 4; do
    "$TOOL" ctl --socket "$SOCK" submit "${SPEC_COMMON[@]}" \
        --seed "$seed" --out "$WORK/served_$seed.csv" &
    CLIENT_PIDS+=($!)
done
for pid in "${CLIENT_PIDS[@]}"; do
    wait "$pid" || fail "a concurrent submit failed"
done
for seed in 1 2 3 4; do
    cmp "$WORK/ref_$seed.csv" "$WORK/served_$seed.csv" ||
        fail "daemon-served seed=$seed differs from one-shot CLI"
done
echo "serve_smoke: 4 concurrent campaigns byte-identical to one-shot"

# Repeat a request: the shared store must serve it without any new
# insertions, and the bytes must not change.
insertions_before=$("$TOOL" ctl --socket "$SOCK" --timeout 10 stats |
    sed -n 's/.* \([0-9]*\) insertions.*/\1/p')
"$TOOL" ctl --socket "$SOCK" submit "${SPEC_COMMON[@]}" --seed 1 \
    --out "$WORK/served_repeat.csv"
cmp "$WORK/ref_1.csv" "$WORK/served_repeat.csv" ||
    fail "repeated request changed bytes"
stats_after=$("$TOOL" ctl --socket "$SOCK" --timeout 10 stats)
insertions_after=$(sed -n 's/.* \([0-9]*\) insertions.*/\1/p' \
    <<<"$stats_after")
hits_after=$(sed -n 's/.* \([0-9]*\) hits.*/\1/p' <<<"$stats_after")
[[ "$insertions_after" == "$insertions_before" ]] ||
    fail "repeat inserted new entries ($insertions_before -> $insertions_after)"
[[ "$hits_after" -gt 0 ]] || fail "repeat produced no store hits"
echo "serve_smoke: repeat served from shared store" \
     "($hits_after hits, no new insertions)"

# Graceful drain: SIGTERM -> exit 0, socket inode unlinked.
kill -TERM "$DAEMON_PID"
drain_rc=0
wait "$DAEMON_PID" || drain_rc=$?
[[ "$drain_rc" -eq 0 ]] ||
    { cat "$WORK/daemon.log" >&2; fail "drain exit code $drain_rc"; }
[[ ! -e "$SOCK" ]] || fail "orphaned socket left behind: $SOCK"
DAEMON_PID=""
echo "serve_smoke: SIGTERM drained gracefully, no orphaned socket"
echo "serve_smoke: PASS"
