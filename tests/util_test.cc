/**
 * @file
 * Unit tests for the util module: logging, RNG, strings, tables, CSV.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "util/arena.hh"
#include "util/atomicfile.hh"
#include "util/csv.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace gemstone;

// ---------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------

TEST(Logging, WarnIncrementsCounter)
{
    setQuiet(true);
    std::size_t before = warnCount();
    warn("test warning ", 42);
    EXPECT_EQ(warnCount(), before + 1);
    setQuiet(false);
}

TEST(Logging, PanicAborts)
{
    EXPECT_DEATH(panic("boom"), "boom");
}

TEST(Logging, PanicIfConditionFalseDoesNothing)
{
    panic_if(false, "must not fire");
    SUCCEED();
}

TEST(Logging, PanicIfConditionTrueAborts)
{
    EXPECT_DEATH(panic_if(1 + 1 == 2, "arith works"), "arith");
}

TEST(Logging, FatalExitsWithCode1)
{
    EXPECT_EXIT(fatal("bad config"),
                ::testing::ExitedWithCode(1), "bad config");
}

TEST(Logging, LogContextPrefixesNestAndUnwind)
{
    EXPECT_EQ(currentLogPrefix(), "");
    {
        LogContext conn("[conn 7]");
        EXPECT_EQ(currentLogPrefix(), "[conn 7] ");
        {
            LogContext req("[req 3]");
            EXPECT_EQ(currentLogPrefix(), "[conn 7] [req 3] ");
        }
        EXPECT_EQ(currentLogPrefix(), "[conn 7] ");
    }
    EXPECT_EQ(currentLogPrefix(), "");
}

TEST(Logging, LogContextIsThreadLocal)
{
    // Two threads' contexts never bleed into each other — that
    // isolation is what makes the mechanism lock-free.
    LogContext mine("[main]");
    std::string seen_inside, seen_after;
    std::thread other([&] {
        {
            LogContext theirs("[worker]");
            seen_inside = currentLogPrefix();
        }
        seen_after = currentLogPrefix();
    });
    other.join();
    EXPECT_EQ(seen_inside, "[worker] ");
    EXPECT_EQ(seen_after, "");
    EXPECT_EQ(currentLogPrefix(), "[main] ");
}

// ---------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, StringSeedStable)
{
    Rng a(std::string("workload:mi-sha"));
    Rng b(std::string("workload:mi-sha"));
    EXPECT_EQ(a.next(), b.next());
    Rng c(std::string("workload:mi-crc32"));
    Rng d(std::string("workload:mi-sha"));
    EXPECT_NE(c.next(), d.next());
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 4000; ++i) {
        std::uint64_t v = rng.uniformInt(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);  // all residues reachable
}

TEST(Rng, UniformIntZeroBoundPanics)
{
    Rng rng(1);
    EXPECT_DEATH(rng.uniformInt(0), "non-zero");
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0.0;
    double sum_sq = 0.0;
    constexpr int n = 200000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian();
        sum += g;
        sum_sq += g * g;
    }
    double mean = sum / n;
    double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(17);
    double sum = 0.0;
    constexpr int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ChanceProbability)
{
    Rng rng(19);
    int hits = 0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ForkIndependence)
{
    Rng parent(21);
    Rng child_a = parent.fork(1);
    Rng child_b = parent.fork(2);
    EXPECT_NE(child_a.next(), child_b.next());

    // Forking is deterministic.
    Rng parent2(21);
    Rng child_a2 = parent2.fork(1);
    Rng ref = Rng(21).fork(1);
    EXPECT_EQ(child_a2.next(), ref.next());
}

TEST(Rng, HashStringDiffers)
{
    EXPECT_NE(hashString("a"), hashString("b"));
    EXPECT_EQ(hashString("gemstone"), hashString("gemstone"));
    EXPECT_NE(hashString(""), hashString(" "));
}

// ---------------------------------------------------------------------
// strutil
// ---------------------------------------------------------------------

TEST(Strutil, SplitKeepsEmptyFields)
{
    auto fields = split("a,,b,", ',');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[1], "");
    EXPECT_EQ(fields[2], "b");
    EXPECT_EQ(fields[3], "");
}

TEST(Strutil, SplitSingle)
{
    auto fields = split("abc", ',');
    ASSERT_EQ(fields.size(), 1u);
    EXPECT_EQ(fields[0], "abc");
}

TEST(Strutil, Trim)
{
    EXPECT_EQ(trim("  x y  "), "x y");
    EXPECT_EQ(trim("\t\nz"), "z");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strutil, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("system.cpu.icache", "system.cpu"));
    EXPECT_FALSE(startsWith("cpu", "system.cpu"));
    EXPECT_TRUE(endsWith("overall_misses::total", "::total"));
    EXPECT_FALSE(endsWith("total", "::total"));
}

TEST(Strutil, Join)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ", "), "");
    EXPECT_EQ(join({"only"}, "-"), "only");
}

TEST(Strutil, ToLower)
{
    EXPECT_EQ(toLower("Cortex-A15"), "cortex-a15");
}

TEST(Strutil, FormatDouble)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(-0.5, 1), "-0.5");
}

TEST(Strutil, FormatRatioAdaptsPrecision)
{
    EXPECT_EQ(formatRatio(9.94), "9.9x");
    EXPECT_EQ(formatRatio(0.06), "0.060x");
    EXPECT_EQ(formatRatio(0.93), "0.93x");
}

TEST(Strutil, FormatPercent)
{
    EXPECT_EQ(formatPercent(-0.51), "-51.0%");
    EXPECT_EQ(formatPercent(0.033, 1), "3.3%");
}

// ---------------------------------------------------------------------
// TextTable
// ---------------------------------------------------------------------

TEST(TextTable, AlignsColumns)
{
    TextTable t({"a", "bbbb"});
    t.addRow({"xx", "y"});
    std::string out = t.toString();
    EXPECT_NE(out.find("| a  | bbbb |"), std::string::npos);
    EXPECT_NE(out.find("| xx | y    |"), std::string::npos);
}

TEST(TextTable, RowCountExcludesRules)
{
    TextTable t({"c"});
    t.addRow({"1"});
    t.addRule();
    t.addRow({"2"});
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, WrongWidthPanics)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(TextTable, EmptyHeaderPanics)
{
    EXPECT_DEATH(TextTable({}), "at least one column");
}

// ---------------------------------------------------------------------
// CsvWriter
// ---------------------------------------------------------------------

TEST(Csv, BasicDocument)
{
    CsvWriter csv({"name", "value"});
    csv.addRow({"x", "1"});
    std::ostringstream os;
    csv.write(os);
    EXPECT_EQ(os.str(), "name,value\nx,1\n");
}

TEST(Csv, QuotesSpecialCharacters)
{
    EXPECT_EQ(CsvWriter::quote("plain"), "plain");
    EXPECT_EQ(CsvWriter::quote("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::quote("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::quote("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, NumericRow)
{
    CsvWriter csv({"key", "v1", "v2"});
    csv.addNumericRow("w", {1.5, -2.0});
    std::ostringstream os;
    csv.write(os);
    EXPECT_NE(os.str().find("w,1.5"), std::string::npos);
}

TEST(Csv, MismatchedRowPanics)
{
    CsvWriter csv({"a", "b"});
    EXPECT_DEATH(csv.addRow({"1", "2", "3"}), "width mismatch");
}

// ---------------------------------------------------------------------
// CsvReader
// ---------------------------------------------------------------------

TEST(CsvReader, ParsesPlainDocument)
{
    std::istringstream is("a,b,c\n1,2,3\n4,5,6\n");
    CsvReader reader = CsvReader::parse(is);
    EXPECT_TRUE(reader.ok());
    EXPECT_EQ(reader.header(),
              (std::vector<std::string>{"a", "b", "c"}));
    ASSERT_EQ(reader.rowCount(), 2u);
    EXPECT_EQ(reader.cell(0, "b"), "2");
    EXPECT_EQ(reader.cell(1, "c"), "6");
}

TEST(CsvReader, RoundTripsWriterOutput)
{
    CsvWriter csv({"name", "note"});
    csv.addRow({"x,y", "say \"hi\""});
    csv.addRow({"multi\nline", "plain"});
    std::ostringstream os;
    csv.write(os);

    std::istringstream is(os.str());
    CsvReader reader = CsvReader::parse(is);
    ASSERT_TRUE(reader.ok());
    ASSERT_EQ(reader.rowCount(), 2u);
    EXPECT_EQ(reader.cell(0, "name"), "x,y");
    EXPECT_EQ(reader.cell(0, "note"), "say \"hi\"");
    EXPECT_EQ(reader.cell(1, "name"), "multi\nline");
}

TEST(CsvReader, HandlesCrlfAndMissingFinalNewline)
{
    std::istringstream is("a,b\r\n1,2\r\n3,4");
    CsvReader reader = CsvReader::parse(is);
    EXPECT_TRUE(reader.ok());
    ASSERT_EQ(reader.rowCount(), 2u);
    EXPECT_EQ(reader.cell(1, "b"), "4");
}

TEST(CsvReader, ArityMismatchIsRowLevelError)
{
    std::istringstream is("a,b\n1,2\nonly-one\n3,4\n");
    CsvReader reader = CsvReader::parse(is);
    EXPECT_FALSE(reader.ok());
    ASSERT_EQ(reader.errors().size(), 1u);
    EXPECT_EQ(reader.errors()[0].line, 3u);  // the offending line
    // Good rows survive around the bad one.
    ASSERT_EQ(reader.rowCount(), 2u);
    EXPECT_EQ(reader.cell(1, "a"), "3");
}

TEST(CsvReader, StructuralQuoteErrors)
{
    std::istringstream stray("a\nval\"ue\n");
    EXPECT_FALSE(CsvReader::parse(stray).ok());

    // An unterminated quote that runs into EOF is indistinguishable
    // from a torn final write: it is tolerated as a truncated tail
    // rather than failing the document.
    std::istringstream unterminated("a\n\"open\n");
    CsvReader reader = CsvReader::parse(unterminated);
    EXPECT_TRUE(reader.ok());
    EXPECT_TRUE(reader.hasTruncatedTail());
    EXPECT_EQ(reader.rowCount(), 0u);

    std::istringstream trailing("a\n\"quoted\"junk\n");
    EXPECT_FALSE(CsvReader::parse(trailing).ok());
}

TEST(CsvReader, EmptyDocumentIsAnError)
{
    std::istringstream is("");
    CsvReader reader = CsvReader::parse(is);
    EXPECT_FALSE(reader.ok());
    EXPECT_EQ(reader.rowCount(), 0u);
}

TEST(CsvReader, RequireColumnsReportsMissing)
{
    std::istringstream is("a,b\n1,2\n");
    CsvReader reader = CsvReader::parse(is);
    EXPECT_TRUE(reader.requireColumns({"a", "b"}));
    EXPECT_TRUE(reader.ok());
    EXPECT_FALSE(reader.requireColumns({"a", "missing"}));
    EXPECT_FALSE(reader.ok());
    EXPECT_EQ(reader.columnIndex("missing"), CsvReader::npos);
}

TEST(CsvReader, NumericCellValidates)
{
    std::istringstream is("k,v\ngood,1.25\nbad,oops\ninf,inf\n");
    CsvReader reader = CsvReader::parse(is);
    ASSERT_TRUE(reader.ok());
    EXPECT_DOUBLE_EQ(reader.numericCell(0, "v"), 1.25);
    EXPECT_TRUE(reader.ok());
    EXPECT_DOUBLE_EQ(reader.numericCell(1, "v", -1.0), -1.0);
    EXPECT_DOUBLE_EQ(reader.numericCell(2, "v", -1.0), -1.0);
    EXPECT_EQ(reader.errors().size(), 2u);
    // Errors are anchored to the offending source lines.
    EXPECT_EQ(reader.errors()[0].line, 3u);
    EXPECT_EQ(reader.errors()[1].line, 4u);
}

TEST(CsvReader, MissingFileIsAnError)
{
    CsvReader reader =
        CsvReader::parseFile("/nonexistent/gemstone.csv");
    EXPECT_FALSE(reader.ok());
    ASSERT_EQ(reader.errors().size(), 1u);
    EXPECT_NE(reader.errorStrings()[0].find("cannot open"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// warnOnce / warnLimited
// ---------------------------------------------------------------------

TEST(Logging, WarnOnceFiresOncePerSite)
{
    setQuiet(true);
    std::size_t before = warnCount();
    for (int i = 0; i < 5; ++i)
        warnOnce("repeated condition ", i);
    EXPECT_EQ(warnCount(), before + 1);
    setQuiet(false);
}

TEST(Logging, WarnLimitedSuppressesAfterLimit)
{
    setQuiet(true);
    resetLimitedWarns();
    std::size_t before = warnCount();
    for (int i = 0; i < 10; ++i)
        warnLimited("util-test-key", 3, "noisy fault ", i);
    // Only the first three records were emitted...
    EXPECT_EQ(warnCount(), before + 3);
    // ...but every event was tallied.
    EXPECT_EQ(limitedWarnCount("util-test-key"), 10u);
    EXPECT_EQ(limitedWarnCount("never-seen"), 0u);

    // Independent keys do not share a budget.
    warnLimited("util-test-other", 3, "different stream");
    EXPECT_EQ(warnCount(), before + 4);

    resetLimitedWarns();
    EXPECT_EQ(limitedWarnCount("util-test-key"), 0u);
    setQuiet(false);
}

// ---------------------------------------------------------------------
// Atomic file durability
// ---------------------------------------------------------------------

TEST(AtomicFile, FsyncDirectoryOfExistingPaths)
{
    namespace fs = std::filesystem;
    // A file in a real directory: the parent can be synced.
    const std::string path =
        (fs::temp_directory_path() / "gs_util_fsync_dir.txt")
            .string();
    EXPECT_TRUE(fsyncDirectoryOf(path).ok());
    // A bare filename: the parent is the working directory.
    EXPECT_TRUE(fsyncDirectoryOf("bare_filename.csv").ok());
}

TEST(AtomicFile, FsyncDirectoryOfMissingDirectoryIsAnError)
{
    Status status = fsyncDirectoryOf(
        "/nonexistent_gs_dir_498213/file.csv");
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::IoError);
}

TEST(AtomicFile, WriteSurvivesTheDirectoryFsyncHardening)
{
    // atomicWriteFile now refuses to report success until the rename
    // is durable (parent directory fsynced); the happy path must be
    // unchanged: content lands, no .tmp remains.
    namespace fs = std::filesystem;
    const std::string path =
        (fs::temp_directory_path() / "gs_util_atomic_fsync.txt")
            .string();
    fs::remove(path);
    ASSERT_TRUE(atomicWriteFile(path, "payload\n").ok());
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "payload\n");
    EXPECT_FALSE(fs::exists(path + ".tmp"));
    fs::remove(path);
}

TEST(AtomicFile, TailRecoveryStillQuarantinesAfterHardening)
{
    // recoverCsvTail gained sidecar + directory fsyncs before the
    // destructive truncate; the recovery semantics must not move.
    namespace fs = std::filesystem;
    const std::string path =
        (fs::temp_directory_path() / "gs_util_torn_tail.csv")
            .string();
    fs::remove(path);
    fs::remove(path + ".corrupt");
    {
        std::ofstream out(path, std::ios::binary);
        out << "key,field,value\nk1,f,1.5\nk2,f,2.5\nk3,f,torn-no-newl";
    }
    Result<TailRecovery> recovered = recoverCsvTail(path);
    ASSERT_TRUE(recovered.ok());
    EXPECT_TRUE(recovered.value().recovered);
    EXPECT_EQ(recovered.value().quarantinedBytes,
              std::string("k3,f,torn-no-newl").size());

    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "key,field,value\nk1,f,1.5\nk2,f,2.5\n");
    std::ifstream sidecar(path + ".corrupt");
    std::string tail((std::istreambuf_iterator<char>(sidecar)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(tail, "k3,f,torn-no-newl\n");
    fs::remove(path);
    fs::remove(path + ".corrupt");
}

// ---------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------

TEST(Arena, ChunkGrowthChainsGeometricallyLargerChunks)
{
    Arena arena(256);
    // Construction is lazy: no chunk exists until the first request.
    EXPECT_EQ(arena.chunkCount(), 0u);
    EXPECT_EQ(arena.bytesReserved(), 0u);
    (void)arena.allocate(8, 8);
    EXPECT_EQ(arena.chunkCount(), 1u);
    std::size_t first_reserved = arena.bytesReserved();
    EXPECT_GE(first_reserved, 256u);

    // Overflow the first chunk: a new, larger chunk must be chained
    // and the allocation served from it, untruncated.
    auto *big = arena.allocArray<std::uint8_t>(first_reserved + 1);
    ASSERT_NE(big, nullptr);
    EXPECT_EQ(arena.chunkCount(), 2u);
    EXPECT_GT(arena.bytesReserved(), first_reserved);
    big[first_reserved] = 0xab;  // last byte is writable

    // Keep overflowing: every growth step adds capacity monotonically.
    std::size_t prev_reserved = arena.bytesReserved();
    std::size_t prev_chunks = arena.chunkCount();
    (void)arena.allocArray<std::uint8_t>(arena.bytesReserved());
    EXPECT_GT(arena.chunkCount(), prev_chunks);
    EXPECT_GT(arena.bytesReserved(), prev_reserved);
}

TEST(Arena, ResetReusesChunksAndRezeroes)
{
    Arena arena(128);
    auto *a = arena.allocArray<std::uint64_t>(64);  // forces growth
    a[0] = 0xdeadbeef;
    a[63] = 0xfeedface;
    std::size_t chunks = arena.chunkCount();
    std::size_t reserved = arena.bytesReserved();
    EXPECT_GT(arena.bytesAllocated(), 0u);

    arena.reset();
    EXPECT_EQ(arena.bytesAllocated(), 0u);
    // reset() keeps the chunks — that is the whole point.
    EXPECT_EQ(arena.chunkCount(), chunks);
    EXPECT_EQ(arena.bytesReserved(), reserved);

    // The same fill pattern reuses the same storage, zeroed: recycled
    // memory must be indistinguishable from fresh memory.
    auto *b = arena.allocArray<std::uint64_t>(64);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(b[i], 0u) << "stale byte at " << i;
    EXPECT_EQ(arena.chunkCount(), chunks);
    EXPECT_EQ(arena.bytesReserved(), reserved);
}

TEST(Arena, AllocationsAreAligned)
{
    Arena arena(256);
    // Deliberately misalign the cursor with a 1-byte allocation
    // between every aligned request.
    for (std::size_t align : {2u, 4u, 8u, 16u, 32u, 64u}) {
        (void)arena.allocate(1, 1);
        void *p = arena.allocate(align, align);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
            << "align " << align;
    }
    struct alignas(32) Wide
    {
        double lanes[4];
    };
    Wide *w = arena.allocArray<Wide>(3);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w) % alignof(Wide), 0u);
}

TEST(Arena, MallocTallyCountsNewAndDelete)
{
    if (!mallocTallyActive())
        GTEST_SKIP() << "counting operator new not linked "
                        "(sanitizer build)";

    MallocTallySnapshot before = mallocTally();
    constexpr std::size_t kBytes = 4096;
    // Call the operators directly: a new-expression / delete-expression
    // pair may legally be elided by the compiler, a direct operator
    // call may not.
    for (int i = 0; i < 10; ++i)
        ::operator delete(::operator new(kBytes));
    MallocTallySnapshot after = mallocTally();

    EXPECT_GE(after.allocs - before.allocs, 10u);
    EXPECT_GE(after.bytes - before.bytes, 10 * kBytes);
    EXPECT_GE(after.frees - before.frees, 10u);
}

TEST(Arena, SteadyStateArenaReuseMakesNoHeapAllocations)
{
    if (!mallocTallyActive())
        GTEST_SKIP() << "counting operator new not linked "
                        "(sanitizer build)";

    Arena arena(512);
    // Warm the arena to its steady-state chunk chain.
    (void)arena.allocArray<std::uint64_t>(400);
    arena.reset();

    MallocTallySnapshot before = mallocTally();
    for (int run = 0; run < 5; ++run) {
        auto *p = arena.allocArray<std::uint64_t>(400);
        p[0] = static_cast<std::uint64_t>(run);
        arena.reset();
    }
    MallocTallySnapshot after = mallocTally();
    EXPECT_EQ(after.allocs - before.allocs, 0u)
        << "arena reuse must not touch operator new";
}
