# Empty dependencies file for fig8_dvfs_scaling.
# This may be replaced when dependencies are built.
