file(REMOVE_RECURSE
  "CMakeFiles/fig4_mem_latency.dir/fig4_mem_latency.cpp.o"
  "CMakeFiles/fig4_mem_latency.dir/fig4_mem_latency.cpp.o.d"
  "fig4_mem_latency"
  "fig4_mem_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_mem_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
