file(REMOVE_RECURSE
  "CMakeFiles/fig3_mpe_clusters.dir/fig3_mpe_clusters.cpp.o"
  "CMakeFiles/fig3_mpe_clusters.dir/fig3_mpe_clusters.cpp.o.d"
  "fig3_mpe_clusters"
  "fig3_mpe_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_mpe_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
