# Empty compiler generated dependencies file for fig3_mpe_clusters.
# This may be replaced when dependencies are built.
