# Empty dependencies file for fig_g5_event_correlation.
# This may be replaced when dependencies are built.
