file(REMOVE_RECURSE
  "CMakeFiles/fig_g5_event_correlation.dir/fig_g5_event_correlation.cpp.o"
  "CMakeFiles/fig_g5_event_correlation.dir/fig_g5_event_correlation.cpp.o.d"
  "fig_g5_event_correlation"
  "fig_g5_event_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_g5_event_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
