# Empty dependencies file for tab_bp_fix.
# This may be replaced when dependencies are built.
