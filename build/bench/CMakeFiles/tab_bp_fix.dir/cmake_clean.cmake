file(REMOVE_RECURSE
  "CMakeFiles/tab_bp_fix.dir/tab_bp_fix.cpp.o"
  "CMakeFiles/tab_bp_fix.dir/tab_bp_fix.cpp.o.d"
  "tab_bp_fix"
  "tab_bp_fix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_bp_fix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
