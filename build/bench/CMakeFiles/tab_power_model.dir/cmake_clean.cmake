file(REMOVE_RECURSE
  "CMakeFiles/tab_power_model.dir/tab_power_model.cpp.o"
  "CMakeFiles/tab_power_model.dir/tab_power_model.cpp.o.d"
  "tab_power_model"
  "tab_power_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_power_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
