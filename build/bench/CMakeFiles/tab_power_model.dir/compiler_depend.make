# Empty compiler generated dependencies file for tab_power_model.
# This may be replaced when dependencies are built.
