
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab_event_quality.cpp" "bench/CMakeFiles/tab_event_quality.dir/tab_event_quality.cpp.o" "gcc" "bench/CMakeFiles/tab_event_quality.dir/tab_event_quality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gemstone/CMakeFiles/gs_gemstone.dir/DependInfo.cmake"
  "/root/repo/build/src/powmon/CMakeFiles/gs_powmon.dir/DependInfo.cmake"
  "/root/repo/build/src/hwsim/CMakeFiles/gs_hwsim.dir/DependInfo.cmake"
  "/root/repo/build/src/g5/CMakeFiles/gs_g5.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mlstat/CMakeFiles/gs_mlstat.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/gs_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/gs_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
