# Empty dependencies file for tab_event_quality.
# This may be replaced when dependencies are built.
