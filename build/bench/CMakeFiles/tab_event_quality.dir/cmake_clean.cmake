file(REMOVE_RECURSE
  "CMakeFiles/tab_event_quality.dir/tab_event_quality.cpp.o"
  "CMakeFiles/tab_event_quality.dir/tab_event_quality.cpp.o.d"
  "tab_event_quality"
  "tab_event_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_event_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
