file(REMOVE_RECURSE
  "CMakeFiles/fig5_pmc_correlation.dir/fig5_pmc_correlation.cpp.o"
  "CMakeFiles/fig5_pmc_correlation.dir/fig5_pmc_correlation.cpp.o.d"
  "fig5_pmc_correlation"
  "fig5_pmc_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_pmc_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
