# Empty compiler generated dependencies file for fig5_pmc_correlation.
# This may be replaced when dependencies are built.
