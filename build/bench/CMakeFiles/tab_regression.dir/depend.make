# Empty dependencies file for tab_regression.
# This may be replaced when dependencies are built.
