file(REMOVE_RECURSE
  "CMakeFiles/tab_regression.dir/tab_regression.cpp.o"
  "CMakeFiles/tab_regression.dir/tab_regression.cpp.o.d"
  "tab_regression"
  "tab_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
