file(REMOVE_RECURSE
  "CMakeFiles/fig_exec_error.dir/fig_exec_error.cpp.o"
  "CMakeFiles/fig_exec_error.dir/fig_exec_error.cpp.o.d"
  "fig_exec_error"
  "fig_exec_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_exec_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
