# Empty compiler generated dependencies file for fig_exec_error.
# This may be replaced when dependencies are built.
