file(REMOVE_RECURSE
  "libgs_g5.a"
)
