file(REMOVE_RECURSE
  "CMakeFiles/gs_g5.dir/config.cc.o"
  "CMakeFiles/gs_g5.dir/config.cc.o.d"
  "CMakeFiles/gs_g5.dir/simulator.cc.o"
  "CMakeFiles/gs_g5.dir/simulator.cc.o.d"
  "CMakeFiles/gs_g5.dir/statmap.cc.o"
  "CMakeFiles/gs_g5.dir/statmap.cc.o.d"
  "libgs_g5.a"
  "libgs_g5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_g5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
