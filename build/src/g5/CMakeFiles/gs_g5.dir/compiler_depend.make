# Empty compiler generated dependencies file for gs_g5.
# This may be replaced when dependencies are built.
