
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/branch.cc" "src/uarch/CMakeFiles/gs_uarch.dir/branch.cc.o" "gcc" "src/uarch/CMakeFiles/gs_uarch.dir/branch.cc.o.d"
  "/root/repo/src/uarch/cache.cc" "src/uarch/CMakeFiles/gs_uarch.dir/cache.cc.o" "gcc" "src/uarch/CMakeFiles/gs_uarch.dir/cache.cc.o.d"
  "/root/repo/src/uarch/core.cc" "src/uarch/CMakeFiles/gs_uarch.dir/core.cc.o" "gcc" "src/uarch/CMakeFiles/gs_uarch.dir/core.cc.o.d"
  "/root/repo/src/uarch/dram.cc" "src/uarch/CMakeFiles/gs_uarch.dir/dram.cc.o" "gcc" "src/uarch/CMakeFiles/gs_uarch.dir/dram.cc.o.d"
  "/root/repo/src/uarch/events.cc" "src/uarch/CMakeFiles/gs_uarch.dir/events.cc.o" "gcc" "src/uarch/CMakeFiles/gs_uarch.dir/events.cc.o.d"
  "/root/repo/src/uarch/system.cc" "src/uarch/CMakeFiles/gs_uarch.dir/system.cc.o" "gcc" "src/uarch/CMakeFiles/gs_uarch.dir/system.cc.o.d"
  "/root/repo/src/uarch/tlb.cc" "src/uarch/CMakeFiles/gs_uarch.dir/tlb.cc.o" "gcc" "src/uarch/CMakeFiles/gs_uarch.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/gs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
