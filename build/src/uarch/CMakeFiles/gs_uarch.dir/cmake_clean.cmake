file(REMOVE_RECURSE
  "CMakeFiles/gs_uarch.dir/branch.cc.o"
  "CMakeFiles/gs_uarch.dir/branch.cc.o.d"
  "CMakeFiles/gs_uarch.dir/cache.cc.o"
  "CMakeFiles/gs_uarch.dir/cache.cc.o.d"
  "CMakeFiles/gs_uarch.dir/core.cc.o"
  "CMakeFiles/gs_uarch.dir/core.cc.o.d"
  "CMakeFiles/gs_uarch.dir/dram.cc.o"
  "CMakeFiles/gs_uarch.dir/dram.cc.o.d"
  "CMakeFiles/gs_uarch.dir/events.cc.o"
  "CMakeFiles/gs_uarch.dir/events.cc.o.d"
  "CMakeFiles/gs_uarch.dir/system.cc.o"
  "CMakeFiles/gs_uarch.dir/system.cc.o.d"
  "CMakeFiles/gs_uarch.dir/tlb.cc.o"
  "CMakeFiles/gs_uarch.dir/tlb.cc.o.d"
  "libgs_uarch.a"
  "libgs_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
