# Empty dependencies file for gs_uarch.
# This may be replaced when dependencies are built.
