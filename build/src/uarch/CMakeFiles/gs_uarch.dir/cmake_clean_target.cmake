file(REMOVE_RECURSE
  "libgs_uarch.a"
)
