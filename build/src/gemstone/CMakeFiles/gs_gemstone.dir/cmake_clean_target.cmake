file(REMOVE_RECURSE
  "libgs_gemstone.a"
)
