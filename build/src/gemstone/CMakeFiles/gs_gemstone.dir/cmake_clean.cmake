file(REMOVE_RECURSE
  "CMakeFiles/gs_gemstone.dir/analysis.cc.o"
  "CMakeFiles/gs_gemstone.dir/analysis.cc.o.d"
  "CMakeFiles/gs_gemstone.dir/dataset.cc.o"
  "CMakeFiles/gs_gemstone.dir/dataset.cc.o.d"
  "CMakeFiles/gs_gemstone.dir/powereval.cc.o"
  "CMakeFiles/gs_gemstone.dir/powereval.cc.o.d"
  "CMakeFiles/gs_gemstone.dir/report.cc.o"
  "CMakeFiles/gs_gemstone.dir/report.cc.o.d"
  "CMakeFiles/gs_gemstone.dir/runner.cc.o"
  "CMakeFiles/gs_gemstone.dir/runner.cc.o.d"
  "libgs_gemstone.a"
  "libgs_gemstone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_gemstone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
