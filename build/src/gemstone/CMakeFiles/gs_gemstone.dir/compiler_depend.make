# Empty compiler generated dependencies file for gs_gemstone.
# This may be replaced when dependencies are built.
