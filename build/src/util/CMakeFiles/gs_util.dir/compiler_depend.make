# Empty compiler generated dependencies file for gs_util.
# This may be replaced when dependencies are built.
