file(REMOVE_RECURSE
  "CMakeFiles/gs_util.dir/csv.cc.o"
  "CMakeFiles/gs_util.dir/csv.cc.o.d"
  "CMakeFiles/gs_util.dir/logging.cc.o"
  "CMakeFiles/gs_util.dir/logging.cc.o.d"
  "CMakeFiles/gs_util.dir/random.cc.o"
  "CMakeFiles/gs_util.dir/random.cc.o.d"
  "CMakeFiles/gs_util.dir/strutil.cc.o"
  "CMakeFiles/gs_util.dir/strutil.cc.o.d"
  "CMakeFiles/gs_util.dir/table.cc.o"
  "CMakeFiles/gs_util.dir/table.cc.o.d"
  "libgs_util.a"
  "libgs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
