file(REMOVE_RECURSE
  "libgs_mlstat.a"
)
