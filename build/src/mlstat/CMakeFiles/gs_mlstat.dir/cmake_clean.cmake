file(REMOVE_RECURSE
  "CMakeFiles/gs_mlstat.dir/correlation.cc.o"
  "CMakeFiles/gs_mlstat.dir/correlation.cc.o.d"
  "CMakeFiles/gs_mlstat.dir/descriptive.cc.o"
  "CMakeFiles/gs_mlstat.dir/descriptive.cc.o.d"
  "CMakeFiles/gs_mlstat.dir/distributions.cc.o"
  "CMakeFiles/gs_mlstat.dir/distributions.cc.o.d"
  "CMakeFiles/gs_mlstat.dir/hca.cc.o"
  "CMakeFiles/gs_mlstat.dir/hca.cc.o.d"
  "CMakeFiles/gs_mlstat.dir/ols.cc.o"
  "CMakeFiles/gs_mlstat.dir/ols.cc.o.d"
  "CMakeFiles/gs_mlstat.dir/stepwise.cc.o"
  "CMakeFiles/gs_mlstat.dir/stepwise.cc.o.d"
  "libgs_mlstat.a"
  "libgs_mlstat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_mlstat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
