
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mlstat/correlation.cc" "src/mlstat/CMakeFiles/gs_mlstat.dir/correlation.cc.o" "gcc" "src/mlstat/CMakeFiles/gs_mlstat.dir/correlation.cc.o.d"
  "/root/repo/src/mlstat/descriptive.cc" "src/mlstat/CMakeFiles/gs_mlstat.dir/descriptive.cc.o" "gcc" "src/mlstat/CMakeFiles/gs_mlstat.dir/descriptive.cc.o.d"
  "/root/repo/src/mlstat/distributions.cc" "src/mlstat/CMakeFiles/gs_mlstat.dir/distributions.cc.o" "gcc" "src/mlstat/CMakeFiles/gs_mlstat.dir/distributions.cc.o.d"
  "/root/repo/src/mlstat/hca.cc" "src/mlstat/CMakeFiles/gs_mlstat.dir/hca.cc.o" "gcc" "src/mlstat/CMakeFiles/gs_mlstat.dir/hca.cc.o.d"
  "/root/repo/src/mlstat/ols.cc" "src/mlstat/CMakeFiles/gs_mlstat.dir/ols.cc.o" "gcc" "src/mlstat/CMakeFiles/gs_mlstat.dir/ols.cc.o.d"
  "/root/repo/src/mlstat/stepwise.cc" "src/mlstat/CMakeFiles/gs_mlstat.dir/stepwise.cc.o" "gcc" "src/mlstat/CMakeFiles/gs_mlstat.dir/stepwise.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/gs_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
