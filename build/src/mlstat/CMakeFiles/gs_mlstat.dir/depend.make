# Empty dependencies file for gs_mlstat.
# This may be replaced when dependencies are built.
