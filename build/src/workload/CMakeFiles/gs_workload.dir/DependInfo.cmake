
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/kernels_compute.cc" "src/workload/CMakeFiles/gs_workload.dir/kernels_compute.cc.o" "gcc" "src/workload/CMakeFiles/gs_workload.dir/kernels_compute.cc.o.d"
  "/root/repo/src/workload/kernels_control.cc" "src/workload/CMakeFiles/gs_workload.dir/kernels_control.cc.o" "gcc" "src/workload/CMakeFiles/gs_workload.dir/kernels_control.cc.o.d"
  "/root/repo/src/workload/kernels_memory.cc" "src/workload/CMakeFiles/gs_workload.dir/kernels_memory.cc.o" "gcc" "src/workload/CMakeFiles/gs_workload.dir/kernels_memory.cc.o.d"
  "/root/repo/src/workload/kernels_parallel.cc" "src/workload/CMakeFiles/gs_workload.dir/kernels_parallel.cc.o" "gcc" "src/workload/CMakeFiles/gs_workload.dir/kernels_parallel.cc.o.d"
  "/root/repo/src/workload/microbench.cc" "src/workload/CMakeFiles/gs_workload.dir/microbench.cc.o" "gcc" "src/workload/CMakeFiles/gs_workload.dir/microbench.cc.o.d"
  "/root/repo/src/workload/suite.cc" "src/workload/CMakeFiles/gs_workload.dir/suite.cc.o" "gcc" "src/workload/CMakeFiles/gs_workload.dir/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/gs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
