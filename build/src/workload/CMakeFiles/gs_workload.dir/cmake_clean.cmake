file(REMOVE_RECURSE
  "CMakeFiles/gs_workload.dir/kernels_compute.cc.o"
  "CMakeFiles/gs_workload.dir/kernels_compute.cc.o.d"
  "CMakeFiles/gs_workload.dir/kernels_control.cc.o"
  "CMakeFiles/gs_workload.dir/kernels_control.cc.o.d"
  "CMakeFiles/gs_workload.dir/kernels_memory.cc.o"
  "CMakeFiles/gs_workload.dir/kernels_memory.cc.o.d"
  "CMakeFiles/gs_workload.dir/kernels_parallel.cc.o"
  "CMakeFiles/gs_workload.dir/kernels_parallel.cc.o.d"
  "CMakeFiles/gs_workload.dir/microbench.cc.o"
  "CMakeFiles/gs_workload.dir/microbench.cc.o.d"
  "CMakeFiles/gs_workload.dir/suite.cc.o"
  "CMakeFiles/gs_workload.dir/suite.cc.o.d"
  "libgs_workload.a"
  "libgs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
