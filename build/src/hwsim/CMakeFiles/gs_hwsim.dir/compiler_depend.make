# Empty compiler generated dependencies file for gs_hwsim.
# This may be replaced when dependencies are built.
