file(REMOVE_RECURSE
  "CMakeFiles/gs_hwsim.dir/platform.cc.o"
  "CMakeFiles/gs_hwsim.dir/platform.cc.o.d"
  "CMakeFiles/gs_hwsim.dir/pmu.cc.o"
  "CMakeFiles/gs_hwsim.dir/pmu.cc.o.d"
  "CMakeFiles/gs_hwsim.dir/power.cc.o"
  "CMakeFiles/gs_hwsim.dir/power.cc.o.d"
  "libgs_hwsim.a"
  "libgs_hwsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_hwsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
