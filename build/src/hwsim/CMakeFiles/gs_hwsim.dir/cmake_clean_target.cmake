file(REMOVE_RECURSE
  "libgs_hwsim.a"
)
