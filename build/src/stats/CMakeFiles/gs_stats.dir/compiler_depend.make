# Empty compiler generated dependencies file for gs_stats.
# This may be replaced when dependencies are built.
