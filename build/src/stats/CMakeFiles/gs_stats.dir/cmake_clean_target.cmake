file(REMOVE_RECURSE
  "libgs_stats.a"
)
