file(REMOVE_RECURSE
  "CMakeFiles/gs_stats.dir/stats.cc.o"
  "CMakeFiles/gs_stats.dir/stats.cc.o.d"
  "libgs_stats.a"
  "libgs_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
