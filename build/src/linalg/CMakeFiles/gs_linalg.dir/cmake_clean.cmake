file(REMOVE_RECURSE
  "CMakeFiles/gs_linalg.dir/matrix.cc.o"
  "CMakeFiles/gs_linalg.dir/matrix.cc.o.d"
  "libgs_linalg.a"
  "libgs_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
