file(REMOVE_RECURSE
  "CMakeFiles/gs_isa.dir/executor.cc.o"
  "CMakeFiles/gs_isa.dir/executor.cc.o.d"
  "CMakeFiles/gs_isa.dir/inst.cc.o"
  "CMakeFiles/gs_isa.dir/inst.cc.o.d"
  "CMakeFiles/gs_isa.dir/memory.cc.o"
  "CMakeFiles/gs_isa.dir/memory.cc.o.d"
  "CMakeFiles/gs_isa.dir/program.cc.o"
  "CMakeFiles/gs_isa.dir/program.cc.o.d"
  "libgs_isa.a"
  "libgs_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
