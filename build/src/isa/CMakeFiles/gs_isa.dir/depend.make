# Empty dependencies file for gs_isa.
# This may be replaced when dependencies are built.
