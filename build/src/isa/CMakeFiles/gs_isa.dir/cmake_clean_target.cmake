file(REMOVE_RECURSE
  "libgs_isa.a"
)
