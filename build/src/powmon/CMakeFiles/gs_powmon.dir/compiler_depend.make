# Empty compiler generated dependencies file for gs_powmon.
# This may be replaced when dependencies are built.
