file(REMOVE_RECURSE
  "libgs_powmon.a"
)
