file(REMOVE_RECURSE
  "CMakeFiles/gs_powmon.dir/builder.cc.o"
  "CMakeFiles/gs_powmon.dir/builder.cc.o.d"
  "CMakeFiles/gs_powmon.dir/eventspec.cc.o"
  "CMakeFiles/gs_powmon.dir/eventspec.cc.o.d"
  "CMakeFiles/gs_powmon.dir/model.cc.o"
  "CMakeFiles/gs_powmon.dir/model.cc.o.d"
  "libgs_powmon.a"
  "libgs_powmon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_powmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
