file(REMOVE_RECURSE
  "CMakeFiles/gemstone_test.dir/gemstone_test.cc.o"
  "CMakeFiles/gemstone_test.dir/gemstone_test.cc.o.d"
  "gemstone_test"
  "gemstone_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemstone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
