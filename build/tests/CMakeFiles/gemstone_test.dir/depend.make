# Empty dependencies file for gemstone_test.
# This may be replaced when dependencies are built.
