file(REMOVE_RECURSE
  "CMakeFiles/mlstat_test.dir/mlstat_test.cc.o"
  "CMakeFiles/mlstat_test.dir/mlstat_test.cc.o.d"
  "mlstat_test"
  "mlstat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlstat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
