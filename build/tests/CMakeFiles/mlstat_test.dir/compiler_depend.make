# Empty compiler generated dependencies file for mlstat_test.
# This may be replaced when dependencies are built.
