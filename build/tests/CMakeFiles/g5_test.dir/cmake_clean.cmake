file(REMOVE_RECURSE
  "CMakeFiles/g5_test.dir/g5_test.cc.o"
  "CMakeFiles/g5_test.dir/g5_test.cc.o.d"
  "g5_test"
  "g5_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g5_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
