# Empty compiler generated dependencies file for g5_test.
# This may be replaced when dependencies are built.
