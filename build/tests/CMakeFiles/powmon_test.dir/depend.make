# Empty dependencies file for powmon_test.
# This may be replaced when dependencies are built.
