file(REMOVE_RECURSE
  "CMakeFiles/powmon_test.dir/powmon_test.cc.o"
  "CMakeFiles/powmon_test.dir/powmon_test.cc.o.d"
  "powmon_test"
  "powmon_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powmon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
