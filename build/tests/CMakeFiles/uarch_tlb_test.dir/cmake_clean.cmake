file(REMOVE_RECURSE
  "CMakeFiles/uarch_tlb_test.dir/uarch_tlb_test.cc.o"
  "CMakeFiles/uarch_tlb_test.dir/uarch_tlb_test.cc.o.d"
  "uarch_tlb_test"
  "uarch_tlb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uarch_tlb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
