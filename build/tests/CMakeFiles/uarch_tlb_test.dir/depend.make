# Empty dependencies file for uarch_tlb_test.
# This may be replaced when dependencies are built.
