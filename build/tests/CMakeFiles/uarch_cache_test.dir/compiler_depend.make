# Empty compiler generated dependencies file for uarch_cache_test.
# This may be replaced when dependencies are built.
