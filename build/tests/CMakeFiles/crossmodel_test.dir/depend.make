# Empty dependencies file for crossmodel_test.
# This may be replaced when dependencies are built.
