file(REMOVE_RECURSE
  "CMakeFiles/crossmodel_test.dir/crossmodel_test.cc.o"
  "CMakeFiles/crossmodel_test.dir/crossmodel_test.cc.o.d"
  "crossmodel_test"
  "crossmodel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
