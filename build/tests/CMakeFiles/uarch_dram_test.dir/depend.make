# Empty dependencies file for uarch_dram_test.
# This may be replaced when dependencies are built.
