file(REMOVE_RECURSE
  "CMakeFiles/uarch_dram_test.dir/uarch_dram_test.cc.o"
  "CMakeFiles/uarch_dram_test.dir/uarch_dram_test.cc.o.d"
  "uarch_dram_test"
  "uarch_dram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uarch_dram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
