# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for uarch_dram_test.
