# Empty dependencies file for uarch_core_test.
# This may be replaced when dependencies are built.
