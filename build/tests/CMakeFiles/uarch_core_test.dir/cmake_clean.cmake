file(REMOVE_RECURSE
  "CMakeFiles/uarch_core_test.dir/uarch_core_test.cc.o"
  "CMakeFiles/uarch_core_test.dir/uarch_core_test.cc.o.d"
  "uarch_core_test"
  "uarch_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uarch_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
