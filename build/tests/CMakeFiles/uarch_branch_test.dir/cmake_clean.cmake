file(REMOVE_RECURSE
  "CMakeFiles/uarch_branch_test.dir/uarch_branch_test.cc.o"
  "CMakeFiles/uarch_branch_test.dir/uarch_branch_test.cc.o.d"
  "uarch_branch_test"
  "uarch_branch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uarch_branch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
