# Empty dependencies file for uarch_branch_test.
# This may be replaced when dependencies are built.
