file(REMOVE_RECURSE
  "CMakeFiles/gemstone_tool.dir/gemstone_tool.cpp.o"
  "CMakeFiles/gemstone_tool.dir/gemstone_tool.cpp.o.d"
  "gemstone_tool"
  "gemstone_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemstone_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
