# Empty dependencies file for gemstone_tool.
# This may be replaced when dependencies are built.
