# Empty compiler generated dependencies file for gemstone_tool.
# This may be replaced when dependencies are built.
