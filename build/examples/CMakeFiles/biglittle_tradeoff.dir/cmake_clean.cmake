file(REMOVE_RECURSE
  "CMakeFiles/biglittle_tradeoff.dir/biglittle_tradeoff.cpp.o"
  "CMakeFiles/biglittle_tradeoff.dir/biglittle_tradeoff.cpp.o.d"
  "biglittle_tradeoff"
  "biglittle_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biglittle_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
