# Empty compiler generated dependencies file for biglittle_tradeoff.
# This may be replaced when dependencies are built.
