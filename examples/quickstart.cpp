/**
 * @file
 * Quickstart: validate a simulator model against the reference
 * platform for a single workload.
 *
 * This is the smallest end-to-end use of the GemStone libraries:
 *  1. pick a workload from the suite,
 *  2. measure it on the reference ("hardware") platform,
 *  3. simulate it with the g5 `ex5_big` model (both versions),
 *  4. compare execution time and a few key events.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [workload-name]
 */

#include <iostream>

#include "g5/simulator.hh"
#include "hwsim/platform.hh"
#include "mlstat/descriptive.hh"
#include "util/strutil.hh"
#include "util/table.hh"
#include "workload/workload.hh"

using namespace gemstone;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "mi-dijkstra";
    const workload::Workload &work = workload::Suite::byName(name);

    std::cout << "GemStone quickstart: workload '" << work.name
              << "' (suite " << work.suite << ", "
              << work.numThreads << " thread(s), "
              << work.program.size() << " static instructions)\n";

    // 1. Reference hardware measurement at 1 GHz on the big cluster.
    hwsim::OdroidXu3Platform board;
    hwsim::HwMeasurement hw = board.measure(
        work, hwsim::CpuCluster::BigA15, 1000.0);

    // 2. g5 simulations, paper version and fixed version.
    g5::G5Simulation sim_v1(1);
    g5::G5Simulation sim_v2(2);
    g5::G5Stats g5_v1 = sim_v1.run(work, g5::G5Model::Ex5Big, 1000.0);
    g5::G5Stats g5_v2 = sim_v2.run(work, g5::G5Model::Ex5Big, 1000.0);

    // 3. Compare.
    auto mpe = [&](double sim_seconds) {
        return mlstat::percentError(hw.execSeconds, sim_seconds);
    };

    printBanner(std::cout, "Execution time");
    TextTable t({"platform", "exec time (ms)", "MPE vs HW"});
    t.addRow({"HW (Cortex-A15 @1GHz)",
              formatDouble(hw.execSeconds * 1e3, 3), "-"});
    t.addRow({"g5 ex5_big v1", formatDouble(g5_v1.simSeconds * 1e3, 3),
              formatPercent(mpe(g5_v1.simSeconds))});
    t.addRow({"g5 ex5_big v2", formatDouble(g5_v2.simSeconds * 1e3, 3),
              formatPercent(mpe(g5_v2.simSeconds))});
    t.print(std::cout);

    printBanner(std::cout, "Key events (HW PMCs vs g5 statistics)");
    TextTable ev({"event", "HW", "g5 v1", "g5/HW"});
    auto row = [&](const std::string &label, double hw_value,
                   double g5_value) {
        ev.addRow({label, formatDouble(hw_value, 0),
                   formatDouble(g5_value, 0),
                   hw_value > 0 ? formatRatio(g5_value / hw_value)
                                : "-"});
    };
    row("instructions (0x08)", hw.pmcValue(0x08),
        g5_v1.value("system.cpu.committedInsts"));
    row("branch mispredicts (0x10)", hw.pmcValue(0x10),
        g5_v1.value("system.cpu.commit.branchMispredicts"));
    row("L1 ITLB refills (0x02)", hw.pmcValue(0x02),
        g5_v1.value("system.cpu.itb.misses"));
    row("L1D writebacks (0x15)", hw.pmcValue(0x15),
        g5_v1.value("system.cpu.dcache.writebacks::total"));
    row("L1I accesses (0x14)", hw.pmcValue(0x14),
        g5_v1.value("system.cpu.icache.overall_accesses::total"));
    ev.print(std::cout);

    double hw_acc = 1.0 - hw.pmcValue(0x10) /
        std::max(1.0, hw.pmcValue(0x12));
    double g5_acc = 1.0 -
        g5_v1.value("system.cpu.commit.branchMispredicts") /
        std::max(1.0, g5_v1.value("system.cpu.branchPred.lookups"));
    std::cout << "\nBranch prediction accuracy: HW "
              << formatPercent(hw_acc) << ", g5 v1 "
              << formatPercent(g5_acc) << "\n";
    std::cout << "Measured power: " << formatDouble(hw.powerWatts, 3)
              << " W at " << hw.voltage << " V, "
              << formatDouble(hw.temperatureC, 1) << " C\n";
    return 0;
}
