/**
 * @file
 * gemstoned — the long-running campaign service daemon.
 *
 * Listens on a Unix-domain socket (and/or loopback TCP), accepts
 * concurrent campaign requests from gemstonectl clients, runs them on
 * the execution stack and streams incremental results back. All
 * requests share one content-addressed result store, so a repeated
 * request is a cache hit instead of a re-simulation.
 *
 * Usage:
 *   gemstoned --socket PATH [--tcp PORT] [--max-active N]
 *             [--queue-depth N] [--store-capacity N] [--cache PATH]
 *             [--heartbeat SECONDS] [--journal DIR]
 *             [--retain SECONDS]
 *
 * SIGTERM/SIGINT drain gracefully: the daemon stops accepting,
 * finishes and flushes every admitted request, and exits 0. A second
 * signal force-exits immediately.
 */

#include <iostream>
#include <string>

#include "serve/server.hh"
#include "util/logging.hh"
#include "util/signals.hh"

using namespace gemstone;

namespace {

void
usage()
{
    std::cout <<
        "usage: gemstoned [options]\n"
        "  --socket PATH        Unix-domain socket to listen on\n"
        "  --tcp PORT           also listen on 127.0.0.1:PORT\n"
        "                       (0 picks an ephemeral port)\n"
        "  --max-active N       campaigns running concurrently "
        "(default 2)\n"
        "  --queue-depth N      admitted requests allowed to wait "
        "(default 8);\n"
        "                       beyond that submits are rejected "
        "(queue_full)\n"
        "  --store-capacity N   in-memory LRU bound of the shared "
        "result\n"
        "                       store (default 65536 entries)\n"
        "  --cache PATH         flock-guarded shared CSV tier: "
        "results\n"
        "                       persist across restarts and are "
        "shared with\n"
        "                       concurrent gemstone_tool --workers "
        "runs\n"
        "  --heartbeat SECONDS  progress heartbeat period "
        "(default 1.0)\n"
        "  --journal DIR        durable-request journal directory: "
        "durable\n"
        "                       campaigns survive a daemon crash and "
        "restart\n"
        "                       (resumed from per-request "
        "checkpoints)\n"
        "  --retain SECONDS     keep finished unclaimed durable "
        "results\n"
        "                       this long for a late attach "
        "(default 3600)\n"
        "\n"
        "SIGTERM/SIGINT drain gracefully (exit 0); a second signal\n"
        "forces immediate exit.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    serve::Server::Config config;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--socket") {
            config.socketPath = next();
        } else if (arg == "--tcp") {
            config.tcpPort = std::stoi(next());
            if (config.tcpPort < 0 || config.tcpPort > 65535)
                fatal("--tcp must be in [0, 65535]");
        } else if (arg == "--max-active") {
            int value = std::stoi(next());
            if (value < 1)
                fatal("--max-active must be >= 1");
            config.maxActive = static_cast<unsigned>(value);
        } else if (arg == "--queue-depth") {
            int value = std::stoi(next());
            if (value < 0)
                fatal("--queue-depth must be >= 0");
            config.queueDepth = static_cast<unsigned>(value);
        } else if (arg == "--store-capacity") {
            long value = std::stol(next());
            if (value < 1)
                fatal("--store-capacity must be >= 1");
            config.storeCapacity = static_cast<std::size_t>(value);
        } else if (arg == "--cache") {
            config.sharedTierPath = next();
        } else if (arg == "--heartbeat") {
            config.heartbeatSeconds = std::stod(next());
            if (config.heartbeatSeconds <= 0.0)
                fatal("--heartbeat must be > 0");
        } else if (arg == "--journal") {
            config.journalDir = next();
        } else if (arg == "--retain") {
            config.retainFinishedSeconds = std::stod(next());
            if (config.retainFinishedSeconds < 0.0)
                fatal("--retain must be >= 0");
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option '", arg, "'");
        }
    }
    if (config.socketPath.empty() && config.tcpPort < 0) {
        usage();
        fatal("gemstoned needs --socket and/or --tcp");
    }

    // First SIGTERM/SIGINT -> graceful drain (the loop finishes and
    // flushes every admitted request, then run() returns Ok and the
    // daemon exits 0); a second signal force-exits.
    installSignalCancellation(config.drain);

    // A fatal() deep in a request (e.g. a spec naming a frequency
    // with no operating point) must not take the daemon down: throw
    // FatalError instead, which the request thread reports back to
    // its client as an error summary.
    setFatalThrows(true);

    serve::Server server(config);
    Status started = server.start();
    if (!started.ok())
        fatal("gemstoned: ", started.toString());

    if (!config.journalDir.empty())
        inform("gemstoned: journaling durable requests under ",
               config.journalDir);
    if (!config.socketPath.empty())
        inform("gemstoned: listening on ", config.socketPath);
    if (server.boundTcpPort() >= 0)
        inform("gemstoned: listening on 127.0.0.1:",
               server.boundTcpPort());

    Status ran = server.run();
    if (!ran.ok())
        fatal("gemstoned: ", ran.toString());
    return 0;
}
