/**
 * @file
 * The GemStone command-line tool: the automated flow of Fig. 1.
 *
 * Runs hardware characterisation, g5 simulation, collation, the
 * Section IV error analyses, power modelling and the Section VI
 * evaluations for one cluster, and writes the full artefact set
 * (report + CSV datasets) to a directory.
 *
 * Usage:
 *   gemstone_tool [--cluster a15|a7] [--g5-version 1|2]
 *                 [--freq MHZ] [--no-power] [--out DIR]
 *                 [--jobs N] [--workers N] [--cache PATH]
 *                 [--cache-capacity N] [--deadline SECONDS]
 *
 * Two subcommands front the campaign service (src/serve/):
 *
 *   gemstone_tool campaign ...   one-shot campaign, collated dataset
 *                                CSV to --out/stdout — the reference
 *                                bytes a daemon-served request must
 *                                reproduce exactly
 *   gemstone_tool ctl ...        gemstonectl: submit/stats/status
 *                                against a running gemstoned over
 *                                its socket, streaming results
 *
 * SIGINT/SIGTERM request a graceful stop: the run unwinds at the
 * next cooperative poll site, the result store is still saved, and
 * the tool exits with code 130. A second signal aborts immediately.
 * An overrun --deadline exits with code 124.
 */

#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "exec/resultstore.hh"
#include "exec/threadpool.hh"
#include "gemstone/report.hh"
#include "serve/client.hh"
#include "serve/service.hh"
#include "util/cancellation.hh"
#include "util/logging.hh"
#include "util/signals.hh"
#include "util/strutil.hh"

using namespace gemstone;

namespace {

void
usage()
{
    std::cout <<
        "usage: gemstone_tool [options]\n"
        "  --cluster a15|a7   cluster to validate (default a15)\n"
        "  --g5-version 1|2   simulator release under test "
        "(default 1)\n"
        "  --freq MHZ         analysis frequency (default 1000)\n"
        "  --no-power         skip power modelling and Fig. 7/8\n"
        "  --no-csv           write only the text report\n"
        "  --out DIR          output directory "
        "(default gemstone-report)\n"
        "  --jobs N           worker threads for campaigns; 0 means "
        "all cores\n"
        "                     (default 1; results are identical at "
        "any N)\n"
        "  --workers N        crash-isolated worker processes "
        "prewarming the\n"
        "                     result store; 0 means all cores "
        "(default 1:\n"
        "                     in-process only; results are identical "
        "at any N)\n"
        "  --cache PATH       result-store CSV: reuse results from "
        "PATH if it\n"
        "                     exists, save the updated store back on "
        "exit.\n"
        "                     With --workers > 1 the file becomes a "
        "shared\n"
        "                     cache tier: concurrent tools share it "
        "live under\n"
        "                     file locking instead of load/save "
        "snapshots\n"
        "  --cache-capacity N in-memory LRU bound of the result "
        "store\n"
        "                     (default 65536 entries)\n"
        "  --deadline SECONDS wall-clock budget for the whole run; "
        "overrun\n"
        "                     exits with code 124 (default: "
        "unlimited)\n"
        "\n"
        "SIGINT/SIGTERM stop the run gracefully (exit code 130); a\n"
        "second signal forces immediate exit.\n"
        "\n"
        "Subcommands (see --help of each):\n"
        "  gemstone_tool campaign ...   one-shot campaign -> dataset "
        "CSV\n"
        "  gemstone_tool ctl ...        gemstonectl: talk to a "
        "running\n"
        "                               gemstoned daemon\n";
}

/** Save the result store and print its statistics. */
void
saveStore(const std::shared_ptr<exec::ResultStore> &store,
          const std::string &cache_path)
{
    if (!store)
        return;
    exec::ResultStore::Stats stats = store->stats();
    if (store->hasSharedTier()) {
        // Every insert was already published to the shared tier
        // under its file lock; rewriting the file here would race
        // concurrent tools for no benefit.
        std::cout << "shared result cache " << cache_path << ": "
                  << store->size() << " entries (" << stats.hits
                  << " hits, " << stats.sharedHits
                  << " from other processes, " << stats.misses
                  << " misses, " << stats.insertions << " new, "
                  << stats.evictions << " evicted)\n";
        return;
    }
    Status saved = store->saveCsv(cache_path);
    if (!saved.ok())
        warn("could not save result store to ", cache_path, ": ",
             saved.toString());
    std::cout << "result store " << cache_path << ": "
              << store->size() << " entries (" << stats.hits
              << " hits, " << stats.misses << " misses, "
              << stats.insertions << " new, " << stats.evictions
              << " evicted)\n";
}

/** Write text to a file, or stdout when the path is "-" or empty. */
int
writeOutput(const std::string &path, const std::string &text)
{
    if (path.empty() || path == "-") {
        std::cout << text;
        return 0;
    }
    std::ofstream out(path, std::ios::binary);
    out << text;
    out.flush();
    if (!out) {
        std::cerr << "cannot write " << path << "\n";
        return 1;
    }
    return 0;
}

/**
 * Shared campaign-spec flags of `campaign` and `ctl submit`; true
 * when the flag was consumed. @p next pulls the flag's value.
 */
bool
parseSpecFlag(const std::string &arg,
              const std::function<std::string()> &next,
              serve::CampaignSpec &spec)
{
    if (arg == "--cluster") {
        std::string value = next();
        if (value == "a15") {
            spec.cluster = hwsim::CpuCluster::BigA15;
        } else if (value == "a7") {
            spec.cluster = hwsim::CpuCluster::LittleA7;
        } else {
            fatal("unknown cluster '", value, "'");
        }
    } else if (arg == "--g5-version") {
        spec.g5Version = std::stoi(next());
    } else if (arg == "--freq") {
        spec.freqsMhz.push_back(std::stod(next()));
    } else if (arg == "--repeats") {
        spec.repeats = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--seed") {
        spec.seed = std::stoull(next());
    } else if (arg == "--board-variation") {
        spec.boardVariation = std::stod(next());
    } else if (arg == "--quorum") {
        spec.quorum = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--max-attempts") {
        spec.maxAttempts = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--jobs") {
        int jobs = std::stoi(next());
        if (jobs < 0)
            fatal("--jobs must be >= 0");
        spec.jobs = jobs == 0 ? exec::ThreadPool::defaultThreadCount()
                              : static_cast<unsigned>(jobs);
    } else if (arg == "--max-points") {
        spec.maxPoints = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--deadline") {
        spec.deadlineSeconds = std::stod(next());
        if (spec.deadlineSeconds < 0.0)
            fatal("--deadline must be >= 0");
    } else if (arg == "--tag") {
        spec.tag = next();
    } else if (arg == "--opp-grid") {
        spec.oppGrid = true;
    } else {
        return false;
    }
    return true;
}

const char kSpecFlagsHelp[] =
    "  --cluster a15|a7     cluster to validate (default a15)\n"
    "  --g5-version 1|2     simulator release under test (default 1)\n"
    "  --freq MHZ           add a DVFS point (repeatable; default: "
    "the\n"
    "                       cluster's paper frequencies)\n"
    "  --repeats N          timing repeats per measurement "
    "(default 5)\n"
    "  --seed N             master noise seed\n"
    "  --board-variation X  board-to-board coefficient spread\n"
    "  --quorum N           non-outlier repeats per point "
    "(default 3)\n"
    "  --max-attempts N     attempt budget per point (default 8)\n"
    "  --jobs N             campaign worker threads; 0 = all cores\n"
    "  --max-points N       truncate the campaign (0 = all points)\n"
    "  --deadline SECONDS   wall-clock budget (0 = unlimited)\n"
    "  --tag STR            label echoed in daemon logs\n"
    "  --opp-grid           batched base runs for OPP sweeps (one\n"
    "                       instruction stream feeds every config;\n"
    "                       byte-identical results, faster)\n";

/** `gemstone_tool campaign`: one-shot run -> dataset CSV. */
int
campaignMain(int argc, char **argv)
{
    serve::CampaignSpec spec;
    std::string out_path;
    std::string cache_path;
    std::size_t cache_capacity = 65536;
    bool quiet = false;

    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (parseSpecFlag(arg, next, spec)) {
            continue;
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--cache") {
            cache_path = next();
        } else if (arg == "--cache-capacity") {
            long value = std::stol(next());
            if (value < 1)
                fatal("--cache-capacity must be >= 1");
            cache_capacity = static_cast<std::size_t>(value);
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: gemstone_tool campaign [options]\n"
                << kSpecFlagsHelp
                << "  --out FILE           dataset CSV destination "
                   "(default stdout)\n"
                   "  --cache PATH         result-store CSV "
                   "(load/save)\n"
                   "  --cache-capacity N   in-memory LRU bound\n"
                   "  --quiet              no per-point progress on "
                   "stderr\n";
            return 0;
        } else {
            fatal("unknown option '", arg,
                  "' (see gemstone_tool campaign --help)");
        }
    }

    std::string invalid = serve::validateCampaignSpec(spec);
    if (!invalid.empty())
        fatal("invalid campaign: ", invalid);

    CancellationToken cancel;
    installSignalCancellation(cancel);

    auto store = std::make_shared<exec::ResultStore>(cache_capacity);
    if (!cache_path.empty()) {
        std::size_t loaded = store->loadCsv(cache_path);
        if (loaded > 0 && !quiet)
            std::cerr << "loaded " << loaded
                      << " cached results from " << cache_path
                      << "\n";
    }

    serve::CampaignOutcome outcome = serve::runCampaign(
        spec, store,
        quiet ? core::CampaignConfig::PointSink()
              : [](const core::CampaignPoint &point, std::size_t index,
                   std::size_t total) {
                    std::cerr << "point " << (index + 1) << "/"
                              << total << " " << point.workload << "@"
                              << formatDouble(point.freqMhz, 0) << " "
                              << core::pointStatusTag(point.status)
                              << "\n";
                },
        cancel);

    if (!cache_path.empty())
        saveStore(store, cache_path);
    for (const std::string &warning : outcome.warnings)
        std::cerr << "warning: " << warning << "\n";

    switch (outcome.outcome) {
      case serve::RequestOutcome::Ok: {
        return writeOutput(out_path, outcome.datasetCsv);
      }
      case serve::RequestOutcome::Cancelled:
        std::cerr << "campaign interrupted\n";
        return kExitCancelled;
      case serve::RequestOutcome::Deadline:
        std::cerr << "campaign deadline exceeded\n";
        return kExitDeadline;
      case serve::RequestOutcome::Error:
        std::cerr << "campaign failed: " << outcome.error << "\n";
        return 1;
    }
    return 1;
}

/**
 * Parse a spec-list file for `ctl submit-batch`: one campaign per
 * line, written with the same flags `submit` takes (plus --durable),
 * applied over the command line's shared spec as defaults. Blank
 * lines and lines starting with '#' are skipped.
 */
std::vector<serve::CampaignSpec>
loadSpecList(const std::string &path, const serve::CampaignSpec &base)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read spec list ", path);
    std::vector<serve::CampaignSpec> specs;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        std::istringstream tokens(line);
        std::vector<std::string> words;
        std::string word;
        while (tokens >> word)
            words.push_back(word);
        if (words.empty() || words[0][0] == '#')
            continue;
        serve::CampaignSpec spec = base;
        for (std::size_t i = 0; i < words.size(); ++i) {
            const std::string &arg = words[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= words.size()) {
                    fatal(path, ":", line_no, ": missing value for ",
                          arg);
                }
                return words[++i];
            };
            if (arg == "--durable") {
                spec.durable = true;
            } else if (!parseSpecFlag(arg, next, spec)) {
                fatal(path, ":", line_no, ": unknown spec flag '",
                      arg, "'");
            }
        }
        std::string invalid = serve::validateCampaignSpec(spec);
        if (!invalid.empty())
            fatal(path, ":", line_no, ": invalid campaign: ", invalid);
        specs.push_back(std::move(spec));
    }
    if (specs.empty())
        fatal("spec list ", path, " has no campaigns");
    return specs;
}

/** `gemstone_tool ctl` (gemstonectl): talk to a gemstoned daemon. */
int
ctlMain(int argc, char **argv)
{
    std::string socket_path;
    std::string host = "127.0.0.1";
    int tcp_port = -1;
    std::string command;
    serve::CampaignSpec spec;
    std::string out_path;
    bool quiet = false;
    std::uint64_t cancel_id = 0;
    std::string attach_token;
    std::string token_file;
    std::string spec_file;
    std::string out_dir;
    double io_timeout = 30.0;
    int retries = -1;  // -1 = default: 8 for durable streams

    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--socket") {
            socket_path = next();
        } else if (arg == "--tcp") {
            tcp_port = std::stoi(next());
        } else if (arg == "--host") {
            host = next();
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--request") {
            cancel_id = std::stoull(next());
        } else if (arg == "--durable") {
            spec.durable = true;
        } else if (arg == "--token") {
            attach_token = next();
        } else if (arg == "--token-file") {
            token_file = next();
        } else if (arg == "--spec-file") {
            spec_file = next();
        } else if (arg == "--out-dir") {
            out_dir = next();
        } else if (arg == "--timeout") {
            io_timeout = std::stod(next());
            if (io_timeout < 0.0)
                fatal("--timeout must be >= 0");
        } else if (arg == "--retries") {
            retries = std::stoi(next());
            if (retries < 0)
                fatal("--retries must be >= 0");
        } else if (parseSpecFlag(arg, next, spec)) {
            continue;
        } else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: gemstone_tool ctl [--socket PATH | --tcp "
                   "PORT [--host IP]]\n"
                   "                         submit|submit-batch|"
                   "attach|stats|status|cancel\n"
                   "                         [options]\n"
                   "\n"
                   "submit streams a campaign and writes the "
                   "collated dataset CSV\n"
                   "to --out (default stdout); its options:\n"
                << kSpecFlagsHelp
                << "  --out FILE           dataset CSV destination\n"
                   "  --quiet              no progress on stderr\n"
                   "  --durable            survive disconnects and "
                   "daemon restarts:\n"
                   "                       the daemon detaches (not "
                   "cancels) on\n"
                   "                       disconnect and journals "
                   "the request;\n"
                   "                       the client auto-reconnects "
                   "and re-attaches\n"
                   "  --token-file FILE    write the resume token "
                   "here once accepted\n"
                   "  --retries N          reconnect attempts per "
                   "outage (default 8\n"
                   "                       for durable streams, 0 "
                   "otherwise)\n"
                   "\n"
                   "submit-batch pipelines every campaign of "
                   "--spec-file FILE (one\n"
                   "spec per line, same flags as submit plus "
                   "--durable; command-line\n"
                   "spec flags are shared defaults) over this one "
                   "connection and\n"
                   "demultiplexes the streams; each dataset CSV goes "
                   "to\n"
                   "--out-dir DIR/batch-<i>.csv (default stdout, "
                   "concatenated in\n"
                   "spec order).\n"
                   "\n"
                   "attach re-binds to a request by resume token "
                   "(--token STR or\n"
                   "--token-file FILE), replays its settled points "
                   "and streams to\n"
                   "the summary; same output options as submit.\n"
                   "\n"
                   "cancel needs --request ID.\n"
                   "\n"
                   "stats/status wait at most --timeout SECONDS "
                   "(default 30,\n"
                   "0 = forever) for the reply.\n"
                   "\n"
                   "exit codes: 0 ok, 2 rejected by admission "
                   "control,\n"
                   "124 deadline, 130 cancelled, 1 transport/protocol "
                   "error\n";
            return 0;
        } else if (!arg.empty() && arg[0] != '-' && command.empty()) {
            command = arg;
        } else {
            fatal("unknown option '", arg,
                  "' (see gemstone_tool ctl --help)");
        }
    }
    if (command.empty()) {
        fatal("ctl needs a command: submit, submit-batch, attach, "
              "stats, status or cancel");
    }
    if (socket_path.empty() && tcp_port < 0)
        fatal("ctl needs --socket or --tcp");

    serve::Client client;
    client.setIoTimeout(io_timeout);
    Status connected = socket_path.empty()
        ? client.connectTcp(host, tcp_port)
        : client.connectUnix(socket_path);
    if (!connected.ok()) {
        std::cerr << "gemstonectl: " << connected.toString() << "\n";
        return 1;
    }
    // A transport failure that was a timeout maps to the repo-wide
    // deadline exit code, so scripts can tell "daemon wedged" from
    // "protocol broke".
    auto transportExit = [](const Status &status) {
        return status.code() == StatusCode::DeadlineExceeded
            ? kExitDeadline
            : 1;
    };

    if (command == "stats") {
        serve::DaemonStats stats;
        Status status = client.queryStats(stats);
        if (!status.ok()) {
            std::cerr << "gemstonectl: " << status.toString() << "\n";
            return transportExit(status);
        }
        std::cout << "connections: " << stats.connectionsOpen
                  << " open / " << stats.connectionsTotal
                  << " total\n"
                  << "requests: " << stats.requestsAccepted
                  << " accepted, " << stats.requestsServed
                  << " served, " << stats.requestsCancelled
                  << " cancelled, " << stats.requestsFailed
                  << " failed, " << stats.requestsRejected
                  << " rejected\n"
                  << "durability: " << stats.requestsRecovered
                  << " recovered at boot, "
                  << stats.requestsReattached << " re-attached\n"
                  << "load: " << stats.requestsActive << " active, "
                  << stats.requestsQueued << " queued"
                  << (stats.draining ? ", draining" : "") << "\n"
                  << "store: " << stats.storeSize << "/"
                  << stats.storeCapacity << " entries, "
                  << stats.storeHits << " hits, " << stats.storeMisses
                  << " misses, " << stats.storeInsertions
                  << " insertions, " << stats.storeEvictions
                  << " evictions, " << stats.storeSharedHits
                  << " shared-tier hits\n"
                  << "predecode: " << stats.predecodeHits
                  << " hits, " << stats.predecodeMisses
                  << " misses, " << stats.predecodeInserts
                  << " inserts\n";
        return 0;
    }
    if (command == "status") {
        std::string text;
        Status status = client.queryStatus(text);
        if (!status.ok()) {
            std::cerr << "gemstonectl: " << status.toString() << "\n";
            return transportExit(status);
        }
        std::cout << text << "\n";
        return 0;
    }
    if (command == "cancel") {
        if (cancel_id == 0)
            fatal("cancel needs --request ID");
        Status status = client.sendCancel(cancel_id);
        if (!status.ok()) {
            std::cerr << "gemstonectl: " << status.toString() << "\n";
            return 1;
        }
        return 0;
    }
    if (command == "submit-batch") {
        if (spec_file.empty())
            fatal("submit-batch needs --spec-file FILE");
        std::vector<serve::CampaignSpec> specs =
            loadSpecList(spec_file, spec);

        serve::Client::ReconnectPolicy policy;
        policy.maxAttempts = retries >= 0
            ? static_cast<unsigned>(retries)
            : 8;  // engages only when every pending spec is durable
        client.setReconnectPolicy(policy);

        serve::Client::BatchCallbacks callbacks;
        if (!quiet) {
            callbacks.onAccepted = [&](std::size_t idx,
                                       const serve::Accepted &a) {
                std::cerr << "spec " << idx << ": accepted as request "
                          << a.requestId << " (token " << a.token
                          << ")\n";
            };
            callbacks.onResumed = [&](std::size_t idx,
                                      const serve::ResumeInfo &info) {
                std::cerr << "spec " << idx << ": re-attached to "
                          << "request " << info.requestId << "\n";
            };
            callbacks.onPoint = [&](std::size_t idx,
                                    const serve::PointUpdate &u) {
                std::cerr << "spec " << idx << ": point "
                          << (u.index + 1) << "/" << u.total << " "
                          << u.workload << "@"
                          << formatDouble(u.freqMhz, 0) << " "
                          << u.statusTag << "\n";
            };
        }

        std::vector<serve::Client::SubmitResult> results;
        Status status = client.submitMany(specs, results, callbacks);
        if (!status.ok()) {
            std::cerr << "gemstonectl: " << status.toString() << "\n";
            return transportExit(status);
        }

        int exit_code = 0;
        auto worsen = [&](int code) {
            exit_code = std::max(exit_code, code);
        };
        for (std::size_t i = 0; i < results.size(); ++i) {
            const serve::Client::SubmitResult &result = results[i];
            if (!result.accepted) {
                std::cerr << "spec " << i << ": rejected ("
                          << serve::rejectReasonTag(
                                 result.rejection.reason)
                          << "): " << result.rejection.message
                          << "\n";
                worsen(2);
                continue;
            }
            for (const std::string &warning : result.summary.warnings)
                std::cerr << "spec " << i << ": warning: " << warning
                          << "\n";
            switch (result.summary.outcome) {
              case serve::RequestOutcome::Ok: {
                std::string path = out_dir.empty()
                    ? ""
                    : out_dir + "/batch-" + std::to_string(i) +
                        ".csv";
                worsen(writeOutput(path,
                                   result.summary.datasetCsv));
                break;
              }
              case serve::RequestOutcome::Cancelled:
                std::cerr << "spec " << i << ": cancelled\n";
                worsen(kExitCancelled);
                break;
              case serve::RequestOutcome::Deadline:
                std::cerr << "spec " << i
                          << ": deadline exceeded\n";
                worsen(kExitDeadline);
                break;
              case serve::RequestOutcome::Error:
                std::cerr << "spec " << i << ": campaign failed: "
                          << result.summary.error << "\n";
                worsen(1);
                break;
            }
        }
        return exit_code;
    }

    if (command != "submit" && command != "attach")
        fatal("unknown ctl command '", command, "'");

    if (command == "attach") {
        if (attach_token.empty() && !token_file.empty()) {
            std::ifstream in(token_file);
            std::getline(in, attach_token);
            if (!in.good() && attach_token.empty())
                fatal("cannot read token from ", token_file);
        }
        if (attach_token.empty())
            fatal("attach needs --token STR or --token-file FILE");
    } else {
        std::string invalid = serve::validateCampaignSpec(spec);
        if (!invalid.empty())
            fatal("invalid campaign: ", invalid);
    }

    // Self-healing: durable submits and attaches reconnect with
    // backoff, re-attach by token, and fall back to an idempotent
    // re-submit; a plain submit keeps single-shot semantics.
    serve::Client::ReconnectPolicy policy;
    bool durable_stream = spec.durable || command == "attach";
    policy.maxAttempts = retries >= 0
        ? static_cast<unsigned>(retries)
        : (durable_stream ? 8 : 0);
    client.setReconnectPolicy(policy);

    // Ctrl-C while streaming: ask the daemon to cancel the request,
    // then keep reading — the daemon answers with a cancelled
    // summary once the campaign drains at a point boundary.
    CancellationToken interrupt;
    installSignalCancellation(interrupt);

    std::uint64_t request_id = 0;
    auto saveToken = [&](const std::string &token) {
        if (token_file.empty() || token.empty())
            return;
        std::ofstream out(token_file, std::ios::trunc);
        out << token << "\n";
        out.flush();
        if (!out)
            std::cerr << "warning: cannot write " << token_file
                      << "\n";
    };
    serve::Client::Callbacks callbacks;
    callbacks.onAccepted = [&](const serve::Accepted &accepted) {
        request_id = accepted.requestId;
        saveToken(accepted.token);
        if (!quiet) {
            std::cerr << "accepted as request " << accepted.requestId
                      << " (token " << accepted.token << ")\n";
        }
    };
    callbacks.onResumed = [&](const serve::ResumeInfo &info) {
        request_id = info.requestId;
        saveToken(info.token);
        if (!quiet) {
            std::cerr << "attached to request " << info.requestId
                      << "; replaying " << info.replayPoints
                      << " settled points\n";
        }
    };
    bool cancel_sent = false;
    callbacks.onPoint = [&](const serve::PointUpdate &update) {
        if (!quiet) {
            std::cerr << "point " << (update.index + 1) << "/"
                      << update.total << " " << update.workload << "@"
                      << formatDouble(update.freqMhz, 0) << " "
                      << update.statusTag << "\n";
        }
        if (interrupt.cancelled() && !cancel_sent && request_id != 0) {
            cancel_sent = true;
            client.sendCancel(request_id);
        }
    };
    callbacks.onProgress = [&](const serve::ProgressUpdate &) {
        if (interrupt.cancelled() && !cancel_sent && request_id != 0) {
            cancel_sent = true;
            client.sendCancel(request_id);
        }
    };

    serve::Client::SubmitResult result;
    Status status = command == "attach"
        ? client.attach(attach_token, result, callbacks)
        : client.submit(spec, result, callbacks);
    if (!status.ok()) {
        std::cerr << "gemstonectl: " << status.toString() << "\n";
        return transportExit(status);
    }
    if (!result.accepted) {
        std::cerr << "gemstonectl: rejected ("
                  << serve::rejectReasonTag(result.rejection.reason)
                  << "): " << result.rejection.message << "\n";
        return 2;
    }
    if (!quiet && result.reconnects > 0) {
        std::cerr << "gemstonectl: stream self-healed "
                  << result.reconnects << " time(s)\n";
    }
    for (const std::string &warning : result.summary.warnings)
        std::cerr << "warning: " << warning << "\n";
    switch (result.summary.outcome) {
      case serve::RequestOutcome::Ok:
        return writeOutput(out_path, result.summary.datasetCsv);
      case serve::RequestOutcome::Cancelled:
        std::cerr << "gemstonectl: request cancelled\n";
        return kExitCancelled;
      case serve::RequestOutcome::Deadline:
        std::cerr << "gemstonectl: request deadline exceeded\n";
        return kExitDeadline;
      case serve::RequestOutcome::Error:
        std::cerr << "gemstonectl: campaign failed: "
                  << result.summary.error << "\n";
        return 1;
    }
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1) {
        std::string sub = argv[1];
        if (sub == "campaign")
            return campaignMain(argc - 2, argv + 2);
        if (sub == "ctl" || sub == "gemstonectl")
            return ctlMain(argc - 2, argv + 2);
    }

    core::RunnerConfig runner_config;
    core::ReportConfig report_config;
    std::string out_dir = "gemstone-report";
    std::string cache_path;
    std::size_t cache_capacity = 65536;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--cluster") {
            std::string value = next();
            if (value == "a15") {
                report_config.cluster = hwsim::CpuCluster::BigA15;
            } else if (value == "a7") {
                report_config.cluster = hwsim::CpuCluster::LittleA7;
            } else {
                fatal("unknown cluster '", value, "'");
            }
        } else if (arg == "--g5-version") {
            runner_config.g5Version = std::stoi(next());
        } else if (arg == "--freq") {
            report_config.analysisFreqMhz = std::stod(next());
        } else if (arg == "--no-power") {
            report_config.includePower = false;
        } else if (arg == "--no-csv") {
            report_config.writeCsv = false;
        } else if (arg == "--out") {
            out_dir = next();
        } else if (arg == "--jobs") {
            int jobs = std::stoi(next());
            if (jobs < 0)
                fatal("--jobs must be >= 0");
            runner_config.jobs =
                jobs == 0 ? exec::ThreadPool::defaultThreadCount()
                          : static_cast<unsigned>(jobs);
        } else if (arg == "--workers") {
            int workers = std::stoi(next());
            if (workers < 0)
                fatal("--workers must be >= 0");
            runner_config.workers = workers == 0
                ? exec::ThreadPool::defaultThreadCount()
                : static_cast<unsigned>(workers);
        } else if (arg == "--cache") {
            cache_path = next();
        } else if (arg == "--cache-capacity") {
            long value = std::stol(next());
            if (value < 1)
                fatal("--cache-capacity must be >= 1");
            cache_capacity = static_cast<std::size_t>(value);
        } else if (arg == "--deadline") {
            runner_config.runDeadlineSeconds = std::stod(next());
            if (runner_config.runDeadlineSeconds < 0.0)
                fatal("--deadline must be >= 0");
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option '", arg, "'");
        }
    }

    installSignalCancellation(runner_config.cancel);

    core::ExperimentRunner runner(runner_config);

    std::shared_ptr<exec::ResultStore> store;
    if (!cache_path.empty()) {
        store = std::make_shared<exec::ResultStore>(cache_capacity);
        if (runner_config.workers > 1) {
            // Multi-process runs share the cache file live: each
            // insert is published under the file lock, and misses
            // absorb what concurrent tools have published.
            Status attached = store->attachSharedTier(cache_path);
            if (!attached.ok()) {
                fatal("cannot attach shared result cache ",
                      cache_path, ": ", attached.toString());
            }
            if (store->size() > 0)
                std::cout << "attached shared result cache "
                          << cache_path << " (" << store->size()
                          << " entries)\n";
        } else {
            std::size_t loaded = store->loadCsv(cache_path);
            if (loaded > 0)
                std::cout << "loaded " << loaded
                          << " cached results from " << cache_path
                          << "\n";
        }
        runner.attachResultStore(store);
    }

    try {
        core::Report report =
            core::generateReport(runner, report_config);

        report.writeText(std::cout);

        std::size_t files = core::writeReportFiles(report, out_dir);
        std::cout << "\nwrote " << files << " artefact files to "
                  << out_dir << "/\n";
    } catch (const DeadlineError &e) {
        saveStore(store, cache_path);
        std::cerr << "gemstone_tool: deadline exceeded: " << e.what()
                  << "\n";
        return kExitDeadline;
    } catch (const CancelledError &e) {
        saveStore(store, cache_path);
        std::cerr << "gemstone_tool: interrupted: " << e.what()
                  << "\n";
        return kExitCancelled;
    }

    saveStore(store, cache_path);
    return 0;
}
