/**
 * @file
 * The GemStone command-line tool: the automated flow of Fig. 1.
 *
 * Runs hardware characterisation, g5 simulation, collation, the
 * Section IV error analyses, power modelling and the Section VI
 * evaluations for one cluster, and writes the full artefact set
 * (report + CSV datasets) to a directory.
 *
 * Usage:
 *   gemstone_tool [--cluster a15|a7] [--g5-version 1|2]
 *                 [--freq MHZ] [--no-power] [--out DIR]
 *                 [--jobs N] [--workers N] [--cache PATH]
 *                 [--deadline SECONDS]
 *
 * SIGINT/SIGTERM request a graceful stop: the run unwinds at the
 * next cooperative poll site, the result store is still saved, and
 * the tool exits with code 130. A second signal aborts immediately.
 * An overrun --deadline exits with code 124.
 */

#include <cstring>
#include <iostream>
#include <memory>

#include "exec/resultstore.hh"
#include "exec/threadpool.hh"
#include "gemstone/report.hh"
#include "util/cancellation.hh"
#include "util/logging.hh"
#include "util/signals.hh"

using namespace gemstone;

namespace {

void
usage()
{
    std::cout <<
        "usage: gemstone_tool [options]\n"
        "  --cluster a15|a7   cluster to validate (default a15)\n"
        "  --g5-version 1|2   simulator release under test "
        "(default 1)\n"
        "  --freq MHZ         analysis frequency (default 1000)\n"
        "  --no-power         skip power modelling and Fig. 7/8\n"
        "  --no-csv           write only the text report\n"
        "  --out DIR          output directory "
        "(default gemstone-report)\n"
        "  --jobs N           worker threads for campaigns; 0 means "
        "all cores\n"
        "                     (default 1; results are identical at "
        "any N)\n"
        "  --workers N        crash-isolated worker processes "
        "prewarming the\n"
        "                     result store; 0 means all cores "
        "(default 1:\n"
        "                     in-process only; results are identical "
        "at any N)\n"
        "  --cache PATH       result-store CSV: reuse results from "
        "PATH if it\n"
        "                     exists, save the updated store back on "
        "exit.\n"
        "                     With --workers > 1 the file becomes a "
        "shared\n"
        "                     cache tier: concurrent tools share it "
        "live under\n"
        "                     file locking instead of load/save "
        "snapshots\n"
        "  --deadline SECONDS wall-clock budget for the whole run; "
        "overrun\n"
        "                     exits with code 124 (default: "
        "unlimited)\n"
        "\n"
        "SIGINT/SIGTERM stop the run gracefully (exit code 130); a\n"
        "second signal forces immediate exit.\n";
}

/** Save the result store and print its statistics. */
void
saveStore(const std::shared_ptr<exec::ResultStore> &store,
          const std::string &cache_path)
{
    if (!store)
        return;
    exec::ResultStore::Stats stats = store->stats();
    if (store->hasSharedTier()) {
        // Every insert was already published to the shared tier
        // under its file lock; rewriting the file here would race
        // concurrent tools for no benefit.
        std::cout << "shared result cache " << cache_path << ": "
                  << store->size() << " entries (" << stats.hits
                  << " hits, " << stats.sharedHits
                  << " from other processes, " << stats.misses
                  << " misses, " << stats.insertions << " new)\n";
        return;
    }
    Status saved = store->saveCsv(cache_path);
    if (!saved.ok())
        warn("could not save result store to ", cache_path, ": ",
             saved.toString());
    std::cout << "result store " << cache_path << ": "
              << store->size() << " entries (" << stats.hits
              << " hits, " << stats.misses << " misses, "
              << stats.insertions << " new)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    core::RunnerConfig runner_config;
    core::ReportConfig report_config;
    std::string out_dir = "gemstone-report";
    std::string cache_path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--cluster") {
            std::string value = next();
            if (value == "a15") {
                report_config.cluster = hwsim::CpuCluster::BigA15;
            } else if (value == "a7") {
                report_config.cluster = hwsim::CpuCluster::LittleA7;
            } else {
                fatal("unknown cluster '", value, "'");
            }
        } else if (arg == "--g5-version") {
            runner_config.g5Version = std::stoi(next());
        } else if (arg == "--freq") {
            report_config.analysisFreqMhz = std::stod(next());
        } else if (arg == "--no-power") {
            report_config.includePower = false;
        } else if (arg == "--no-csv") {
            report_config.writeCsv = false;
        } else if (arg == "--out") {
            out_dir = next();
        } else if (arg == "--jobs") {
            int jobs = std::stoi(next());
            if (jobs < 0)
                fatal("--jobs must be >= 0");
            runner_config.jobs =
                jobs == 0 ? exec::ThreadPool::defaultThreadCount()
                          : static_cast<unsigned>(jobs);
        } else if (arg == "--workers") {
            int workers = std::stoi(next());
            if (workers < 0)
                fatal("--workers must be >= 0");
            runner_config.workers = workers == 0
                ? exec::ThreadPool::defaultThreadCount()
                : static_cast<unsigned>(workers);
        } else if (arg == "--cache") {
            cache_path = next();
        } else if (arg == "--deadline") {
            runner_config.runDeadlineSeconds = std::stod(next());
            if (runner_config.runDeadlineSeconds < 0.0)
                fatal("--deadline must be >= 0");
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option '", arg, "'");
        }
    }

    installSignalCancellation(runner_config.cancel);

    core::ExperimentRunner runner(runner_config);

    std::shared_ptr<exec::ResultStore> store;
    if (!cache_path.empty()) {
        store = std::make_shared<exec::ResultStore>();
        if (runner_config.workers > 1) {
            // Multi-process runs share the cache file live: each
            // insert is published under the file lock, and misses
            // absorb what concurrent tools have published.
            Status attached = store->attachSharedTier(cache_path);
            if (!attached.ok()) {
                fatal("cannot attach shared result cache ",
                      cache_path, ": ", attached.toString());
            }
            if (store->size() > 0)
                std::cout << "attached shared result cache "
                          << cache_path << " (" << store->size()
                          << " entries)\n";
        } else {
            std::size_t loaded = store->loadCsv(cache_path);
            if (loaded > 0)
                std::cout << "loaded " << loaded
                          << " cached results from " << cache_path
                          << "\n";
        }
        runner.attachResultStore(store);
    }

    try {
        core::Report report =
            core::generateReport(runner, report_config);

        report.writeText(std::cout);

        std::size_t files = core::writeReportFiles(report, out_dir);
        std::cout << "\nwrote " << files << " artefact files to "
                  << out_dir << "/\n";
    } catch (const DeadlineError &e) {
        saveStore(store, cache_path);
        std::cerr << "gemstone_tool: deadline exceeded: " << e.what()
                  << "\n";
        return kExitDeadline;
    } catch (const CancelledError &e) {
        saveStore(store, cache_path);
        std::cerr << "gemstone_tool: interrupted: " << e.what()
                  << "\n";
        return kExitCancelled;
    }

    saveStore(store, cache_path);
    return 0;
}
