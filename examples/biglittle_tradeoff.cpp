/**
 * @file
 * big.LITTLE scheduling trade-off study — the motivating use case of
 * the paper's Section VI ("the trade-offs between DVFS levels and
 * different cores ... are important for many investigations").
 *
 * For a set of workloads, this example measures execution time and
 * model-estimated power on every operating point of both clusters,
 * then reports, per workload, the most energy-efficient operating
 * point that still meets a deadline — first using the reference
 * platform, then using the g5 model — and shows where the model's
 * errors would change the scheduling decision.
 */

#include <iostream>

#include "gemstone/runner.hh"
#include "powmon/builder.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace gemstone;

namespace {

struct OperatingPoint
{
    hwsim::CpuCluster cluster;
    double freqMhz;
};

struct Choice
{
    OperatingPoint opp{hwsim::CpuCluster::LittleA7, 0.0};
    double seconds = 0.0;
    double energy = 1e300;
};

std::string
oppName(const OperatingPoint &opp)
{
    return std::string(opp.cluster == hwsim::CpuCluster::LittleA7
                           ? "A7"
                           : "A15") +
        "@" + formatDouble(opp.freqMhz, 0);
}

powmon::PowerModel
buildModel(core::ExperimentRunner &runner, hwsim::CpuCluster cluster,
           const std::string &name)
{
    powmon::PowerModelBuilder builder(
        runner.runPowerCharacterisation(cluster), name);
    powmon::SelectionConfig config;
    config.maxEvents = 6;
    config.requireG5Equivalent = true;
    for (int id : powmon::EventSpecTable::knownBadForG5())
        config.excluded.insert(id);
    config.composites.push_back(
        powmon::EventSpecTable::difference(0x1B, 0x73));
    return builder.build(builder.selectEvents(config).events);
}

} // namespace

int
main()
{
    std::cout
        << "big.LITTLE energy/deadline scheduling study\n"
        << "(picks the lowest-energy operating point that meets a "
           "deadline, on HW vs on the g5 v1 model)\n";

    core::ExperimentRunner runner;

    powmon::PowerModel a7_model =
        buildModel(runner, hwsim::CpuCluster::LittleA7, "a7");
    powmon::PowerModel a15_model =
        buildModel(runner, hwsim::CpuCluster::BigA15, "a15");

    std::vector<OperatingPoint> opps;
    for (double f : core::ExperimentRunner::frequenciesFor(
             hwsim::CpuCluster::LittleA7)) {
        opps.push_back({hwsim::CpuCluster::LittleA7, f});
    }
    for (double f : core::ExperimentRunner::frequenciesFor(
             hwsim::CpuCluster::BigA15)) {
        opps.push_back({hwsim::CpuCluster::BigA15, f});
    }

    const std::vector<std::string> workloads = {
        "mi-crc32",     "mi-fft",          "mi-dijkstra",
        "whetstone",    "parsec-canneal-1", "parsec-dedup-1",
        "mi-qsort",     "dhrystone"};

    printBanner(std::cout, "Best operating point per workload "
                           "(deadline = 1.5x the fastest HW time)");
    TextTable t({"workload", "HW choice", "HW energy (mJ)",
                 "g5 choice", "g5 choice's true energy (mJ)",
                 "agrees?"});

    unsigned disagreements = 0;
    for (const std::string &name : workloads) {
        const workload::Workload &work =
            workload::Suite::byName(name);

        // Gather (time, power) on every OPP for both platforms.
        struct Row
        {
            OperatingPoint opp;
            double hw_seconds;
            double hw_power;
            double g5_seconds;
            double g5_power;
        };
        std::vector<Row> rows;
        double fastest_hw = 1e300;
        for (const OperatingPoint &opp : opps) {
            const powmon::PowerModel &model =
                opp.cluster == hwsim::CpuCluster::LittleA7
                    ? a7_model
                    : a15_model;
            hwsim::HwMeasurement hw = runner.platform().measure(
                work, opp.cluster, opp.freqMhz, 1);
            g5::G5Stats g5 = runner.simulator().run(
                work, core::ExperimentRunner::modelFor(opp.cluster),
                opp.freqMhz);
            Row row{opp, hw.execSeconds, model.estimateHw(hw),
                    g5.simSeconds, model.estimateG5(g5)};
            fastest_hw = std::min(fastest_hw, row.hw_seconds);
            rows.push_back(row);
        }

        double deadline = fastest_hw * 1.5;

        // Pick the lowest-energy OPP meeting the deadline, once with
        // the true platform numbers and once with the model's.
        Choice truth;
        Choice modelled;
        for (const Row &row : rows) {
            double hw_energy = row.hw_power * row.hw_seconds;
            if (row.hw_seconds <= deadline &&
                hw_energy < truth.energy) {
                truth = {row.opp, row.hw_seconds, hw_energy};
            }
            double g5_energy = row.g5_power * row.g5_seconds;
            if (row.g5_seconds <= deadline &&
                g5_energy < modelled.energy) {
                modelled = {row.opp, row.g5_seconds, g5_energy};
            }
        }

        // The model may claim no operating point meets the deadline
        // at all (its execution-time overestimate exceeds 50% for
        // storm-hit workloads) — itself a wrong scheduling outcome.
        bool model_found = modelled.energy < 1e299;

        // What would the model's choice really cost on hardware?
        double modelled_true_energy = 0.0;
        for (const Row &row : rows) {
            if (model_found &&
                row.opp.cluster == modelled.opp.cluster &&
                row.opp.freqMhz == modelled.opp.freqMhz) {
                modelled_true_energy =
                    row.hw_power * row.hw_seconds;
            }
        }

        bool agree = model_found &&
            truth.opp.cluster == modelled.opp.cluster &&
            truth.opp.freqMhz == modelled.opp.freqMhz;
        disagreements += agree ? 0 : 1;
        t.addRow({name, oppName(truth.opp),
                  formatDouble(truth.energy * 1e3, 3),
                  model_found ? oppName(modelled.opp)
                              : "\"deadline unmeetable\"",
                  model_found
                      ? formatDouble(modelled_true_energy * 1e3, 3)
                      : "-",
                  agree ? "yes" : "NO"});
    }
    t.print(std::cout);

    std::cout << "\n" << disagreements << " of " << workloads.size()
              << " scheduling decisions change when made on the "
                 "un-validated model — the paper's argument for "
                 "hardware-validated models in one table.\n";
    return 0;
}
