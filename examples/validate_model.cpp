/**
 * @file
 * "Is my model good enough for my study?" — the use-case check the
 * paper argues every simulator user should run (Sections I and VII).
 *
 * A researcher wants to evaluate an L2-cache change using the
 * `ex5_big` model. Before trusting the simulator, they validate it
 * against the reference platform *for the workloads of their study*
 * and check whether the baseline error would swamp the effect they
 * plan to measure. The example then demonstrates the iterative
 * improvement flow: apply the branch-predictor fix and re-validate.
 */

#include <iostream>

#include "g5/config.hh"
#include "gemstone/runner.hh"
#include "mlstat/descriptive.hh"
#include "uarch/system.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace gemstone;

namespace {

/** Run one workload on a custom g5 configuration. */
double
runSeconds(const workload::Workload &work,
           const uarch::ClusterConfig &base_config, double freq_ghz)
{
    uarch::ClusterConfig config = base_config;
    config.memBytes =
        std::max<std::uint64_t>(work.memBytes, 64 * 1024);
    uarch::ClusterModel cluster(config);
    work.prepareMemory(cluster.memory());
    return cluster.run(work.program, work.numThreads, freq_ghz)
        .seconds;
}

} // namespace

int
main()
{
    // The study: does doubling the L2 from 2 MiB to 4 MiB pay off
    // for these cache-sensitive workloads?
    const std::vector<std::string> study_workloads = {
        "parsec-canneal-1", "parsec-streamcluster-1", "mi-patricia",
        "parsec-bodytrack-1", "mi-fft-inv", "roy-busspeed"};

    std::cout << "Use-case validation: evaluating an L2 upgrade on "
                 "the ex5_big model\n";

    core::ExperimentRunner runner;

    // Step 1: validate the baseline model on the study workloads.
    printBanner(std::cout,
                "Step 1: baseline model error on the study set");
    uarch::ClusterConfig v1 =
        g5::ex5Config(g5::G5Model::Ex5Big, 1);

    TextTable t({"workload", "HW (ms)", "model (ms)", "MPE"});
    std::vector<double> hw_times;
    std::vector<double> model_times;
    for (const std::string &name : study_workloads) {
        const workload::Workload &work =
            workload::Suite::byName(name);
        hwsim::HwMeasurement hw = runner.platform().measure(
            work, hwsim::CpuCluster::BigA15, 1000.0, 1);
        double model_s = runSeconds(work, v1, 1.0);
        hw_times.push_back(hw.execSeconds);
        model_times.push_back(model_s);
        t.addRow({name, formatDouble(hw.execSeconds * 1e3, 3),
                  formatDouble(model_s * 1e3, 3),
                  formatPercent(mlstat::percentError(
                      hw.execSeconds, model_s))});
    }
    t.print(std::cout);
    double baseline_mape =
        mlstat::meanAbsPercentError(hw_times, model_times);
    std::cout << "study-set MAPE: " << formatPercent(baseline_mape)
              << "\n";

    // Step 2: the effect under study, measured on the *model*.
    printBanner(std::cout, "Step 2: the L2 effect measured on the "
                           "baseline and the repaired model");
    uarch::ClusterConfig v1_big_l2 = v1;
    v1_big_l2.l2.sizeBytes = 4 * 1024 * 1024;

    g5::Ex5Fixes fixes;
    fixes.fixBranchPredictor = true;
    uarch::ClusterConfig repaired =
        g5::ex5ConfigWithFixes(g5::G5Model::Ex5Big, fixes);
    uarch::ClusterConfig repaired_big_l2 = repaired;
    repaired_big_l2.l2.sizeBytes = 4 * 1024 * 1024;

    TextTable effect({"workload", "speedup (buggy model)",
                      "speedup (repaired model)"});
    std::vector<double> buggy_speedups;
    std::vector<double> repaired_speedups;
    for (const std::string &name : study_workloads) {
        const workload::Workload &work =
            workload::Suite::byName(name);
        double buggy =
            runSeconds(work, v1, 1.0) /
            runSeconds(work, v1_big_l2, 1.0);
        double fixed =
            runSeconds(work, repaired, 1.0) /
            runSeconds(work, repaired_big_l2, 1.0);
        buggy_speedups.push_back(buggy);
        repaired_speedups.push_back(fixed);
        effect.addRow({name, formatRatio(buggy),
                       formatRatio(fixed)});
    }
    effect.print(std::cout);

    double buggy_mean = mlstat::mean(buggy_speedups);
    double repaired_mean = mlstat::mean(repaired_speedups);
    std::cout << "mean L2-upgrade speedup: "
              << formatRatio(buggy_mean) << " on the buggy model vs "
              << formatRatio(repaired_mean)
              << " on the repaired one\n";

    // Step 3: the verdict a GemStone user would reach.
    printBanner(std::cout, "Step 3: verdict");
    double effect_size = std::fabs(repaired_mean - 1.0);
    std::cout << "Effect under study: "
              << formatPercent(effect_size)
              << " mean speedup. Baseline model error on this "
                 "study set: "
              << formatPercent(baseline_mape) << ".\n";
    if (effect_size < baseline_mape) {
        std::cout
            << "VERDICT: the effect is smaller than the model's "
               "baseline error — conclusions drawn from this model "
               "for this study would rest on modelling noise. "
               "Validate and repair the model (or pick a less "
               "error-prone baseline) before trusting the result — "
               "exactly the use-case check the paper argues every "
               "simulator user should run.\n";
    } else {
        std::cout
            << "VERDICT: the effect exceeds the model's baseline "
               "error; the study's conclusion is credible on this "
               "model.\n";
    }
    std::cout << "Note how the buggy and repaired models can also "
                 "disagree on the effect itself ("
              << formatRatio(buggy_mean) << " vs "
              << formatRatio(repaired_mean)
              << " here): the -51% -> +10% swing of Section VII is "
                 "this disagreement at full scale.\n";
    return 0;
}
