/**
 * @file
 * Resilient campaign: run a fault-injected validation campaign with
 * retry, outlier rejection and checkpoint/resume.
 *
 * The flow:
 *  1. arm the platform's fault injector with the documented lab mix
 *     (hung/crashed runs, thermal episodes, sensor dropouts, PMC
 *     multiplex loss),
 *  2. run the Cortex-A15 validation campaign through CampaignEngine,
 *     checkpointing each finished point to a CSV,
 *  3. run again from the same checkpoint to show the resume path
 *     skipping finished work.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/resilient_campaign [checkpoint.csv]
 */

#include <cstdio>
#include <iostream>

#include "gemstone/campaign.hh"
#include "gemstone/runner.hh"
#include "hwsim/faults.hh"
#include "util/cancellation.hh"
#include "util/signals.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace gemstone;
using namespace gemstone::core;

namespace {

void
summarise(const char *label, const CampaignResult &result)
{
    printBanner(std::cout, label);
    TextTable t({"metric", "value"});
    t.addRow({"points measured",
              std::to_string(result.measuredPoints)});
    t.addRow({"points resumed from checkpoint",
              std::to_string(result.resumedPoints)});
    t.addRow({"points excluded",
              std::to_string(result.excludedPoints)});
    t.addRow({"points cancelled",
              std::to_string(result.cancelledPoints)});
    t.addRow({"attempts spent", std::to_string(result.totalAttempts)});
    t.addRow({"run failures retried",
              std::to_string(result.totalFailures)});
    t.addRow({"outlier repeats rejected",
              std::to_string(result.totalRejected)});
    t.addRow({"backoff ledgered (s)",
              formatDouble(result.backoffSeconds, 2)});
    t.addRow({"collated records",
              std::to_string(result.dataset.records.size())});
    t.addRow({"exec-time MPE",
              formatPercent(result.dataset.execMpe())});
    t.print(std::cout);

    for (const std::string &warning : result.warnings)
        std::cout << "  ! " << warning << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string checkpoint =
        argc > 1 ? argv[1] : "resilient_campaign_checkpoint.csv";

    std::cout << "Resilient Cortex-A15 validation campaign under the "
                 "lab fault mix\n(checkpoint: "
              << checkpoint << ")\n";
    // An existing checkpoint is a killed campaign's progress: the
    // first pass below picks it up rather than starting over, so
    // feel free to kill this program and restart it.

    CampaignConfig policy;
    policy.checkpointPath = checkpoint;

    // Ctrl-C / SIGTERM stop the campaign at the next point boundary;
    // everything finished so far is already in the checkpoint and the
    // next run resumes from it. A second signal kills immediately.
    installSignalCancellation(policy.cancel);

    // First pass: measures every point not already checkpointed.
    ExperimentRunner runner{RunnerConfig{}};
    runner.platform().injectFaults(hwsim::FaultConfig::labMix());
    CampaignEngine engine(runner, policy);
    CampaignResult first =
        engine.runValidation(hwsim::CpuCluster::BigA15);
    summarise("First pass (measures whatever the checkpoint lacks)",
              first);

    if (first.cancelled) {
        std::cout << "\ninterrupted; " << first.cancelledPoints
                  << " points left for the resume — rerun to pick up "
                     "from " << checkpoint << "\n";
        return kExitCancelled;
    }

    // Second pass: the checkpoint makes the whole campaign a resume.
    ExperimentRunner again{RunnerConfig{}};
    again.platform().injectFaults(hwsim::FaultConfig::labMix());
    CampaignEngine resumed(again, policy);
    CampaignResult second =
        resumed.runValidation(hwsim::CpuCluster::BigA15);
    summarise("Second pass (resumed from checkpoint)", second);

    std::remove(checkpoint.c_str());
    return 0;
}
